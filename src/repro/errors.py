"""Exception hierarchy for the repro package.

All package-specific failures derive from :class:`ReproError` so callers
can catch everything from this library with a single except clause.
"""

from __future__ import annotations

import math

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "ToolError",
    "UnsupportedOperationError",
    "ApplicationError",
    "EvaluationError",
    "RunCancelled",
    "CalibrationError",
    "ServiceError",
    "HistoryError",
    "validate_noise",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A platform, tool, or experiment was configured inconsistently."""


class NetworkError(ReproError):
    """A network substrate failure (bad endpoint, link down, overflow)."""


class ToolError(ReproError):
    """A message-passing tool runtime failure (bad rank, bad tag, ...)."""


class UnsupportedOperationError(ToolError):
    """The tool does not provide the requested primitive.

    Mirrors the paper: PVM 3.x provides no global reduction operation,
    so asking the PVM runtime for ``global_sum`` raises this.
    """


class ApplicationError(ReproError):
    """A benchmark application failed (bad input, verification failure)."""


class EvaluationError(ReproError):
    """The evaluation methodology was applied inconsistently."""


class RunCancelled(EvaluationError):
    """A streaming run was cancelled before it covered its grid.

    Raised by :meth:`~repro.core.scheduler.RunHandle.result` after a
    cooperative :meth:`~repro.core.scheduler.RunHandle.cancel`: there
    is no complete :class:`~repro.core.results.ResultSet` to return.
    Every job that finished before the cancel *is* persisted in the
    scheduler's cache, so re-running the same spec over the same cache
    resumes exactly like a killed sweep.
    """


class CalibrationError(ReproError):
    """Calibration data is missing or malformed."""


class ServiceError(ReproError):
    """The evaluation service refused a request or hit a fault.

    Raised by the job registry and run store for unknown runs, illegal
    state-machine transitions and malformed submissions, and by the
    service client when the server answers with an error status — the
    server's message rides along, so remote misuse reads like local
    misuse.
    """


class HistoryError(ReproError):
    """The run-history subsystem refused a request.

    Raised by :class:`~repro.history.store.HistoryStore` and the diff/
    leaderboard/gate layers on malformed exports, unknown or ambiguous
    run references, and schema-version mismatches (a database written
    by a different schema generation is refused, never silently
    reinterpreted).
    """


def validate_noise(value, error_cls, what: str = "noise",
                   allow_zero: bool = True) -> float:
    """Validate a noise amplitude/scale and return it as a float.

    The single source of truth for every layer's noise check — spec,
    job, platform catalog and network model all accept the same range
    (finite, non-negative; models reject zero too since "enabled at
    zero amplitude" is a contradiction) but raise their own layer's
    exception, passed in as ``error_cls``.  NaN is rejected alongside
    infinities: it would also break job equality (NaN != NaN) and
    therefore caching.
    """
    value = float(value)
    bad = not math.isfinite(value) or (value < 0.0 if allow_zero else value <= 0.0)
    if bad:
        bound = ">= 0" if allow_zero else "positive"
        raise error_cls("%s must be finite and %s, got %g" % (what, bound, value))
    return value
