"""Exception hierarchy for the repro package.

All package-specific failures derive from :class:`ReproError` so callers
can catch everything from this library with a single except clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "ToolError",
    "UnsupportedOperationError",
    "ApplicationError",
    "EvaluationError",
    "CalibrationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A platform, tool, or experiment was configured inconsistently."""


class NetworkError(ReproError):
    """A network substrate failure (bad endpoint, link down, overflow)."""


class ToolError(ReproError):
    """A message-passing tool runtime failure (bad rank, bad tag, ...)."""


class UnsupportedOperationError(ToolError):
    """The tool does not provide the requested primitive.

    Mirrors the paper: PVM 3.x provides no global reduction operation,
    so asking the PVM runtime for ``global_sum`` raises this.
    """


class ApplicationError(ReproError):
    """A benchmark application failed (bad input, verification failure)."""


class EvaluationError(ReproError):
    """The evaluation methodology was applied inconsistently."""


class CalibrationError(ReproError):
    """Calibration data is missing or malformed."""
