"""Simulation processes.

A process wraps a Python generator.  Each value the generator yields
must be an :class:`~repro.sim.events.Event`; the process suspends until
that event fires and is resumed with the event's value (or with its
exception raised at the ``yield`` statement, for failed events).

A :class:`Process` is itself an event: it fires when the generator
returns, with the generator's return value, so processes can wait on
each other (``yield other_process``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, Initialize, Interruption, PENDING

__all__ = ["Process"]


class Process(Event):
    """An event-yielding generator driven by the environment."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError("process requires a generator, got %r" % (generator,))
        super(Process, self).__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = getattr(generator, "__name__", str(generator))
        Initialize(env, self)

    def __repr__(self) -> str:
        return "<Process(%s) at 0x%x>" % (self.name, id(self))

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.sim.events.Interrupt` into the process."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_proc = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed: mark the failure as handled and
                    # re-raise it inside the generator so user code can
                    # catch it.
                    event.defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, exc.__traceback__)
            except StopIteration as stop:
                # Generator finished: the process event succeeds.
                if not self.triggered:
                    self._ok = True
                    self._value = getattr(stop, "value", None)
                    env.schedule(self)
                break
            except BaseException as exc:
                # Generator died: the process event fails.
                if not self.triggered:
                    self._ok = False
                    self._value = exc
                    env.schedule(self)
                    break
                raise

            if next_event is None or not isinstance(next_event, Event):
                error = RuntimeError(
                    "process %r yielded a non-event: %r" % (self.name, next_event)
                )
                try:
                    self._generator.throw(RuntimeError, error)
                except StopIteration:
                    pass
                except RuntimeError:
                    pass
                if not self.triggered:
                    self._ok = False
                    self._value = error
                    self._defused = False
                    env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Event is pending or triggered-but-unprocessed: wait.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: feed its outcome straight back in.
            event = next_event

        env._active_proc = None
