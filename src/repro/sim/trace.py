"""Lightweight structured tracing for simulation runs.

Substrates call :meth:`Tracer.record` with a kind string and arbitrary
fields; tests and benches inspect the recorded stream.  Tracing is off
by default (a disabled tracer records nothing) so the hot path stays a
single attribute check.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


class TraceRecord(object):
    """A single trace entry: time, kind, and free-form fields."""

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: Dict[str, Any]) -> None:
        self.time = time
        self.kind = kind
        self.fields = fields

    def __repr__(self) -> str:
        inner = ", ".join("%s=%r" % item for item in sorted(self.fields.items()))
        return "TraceRecord(t=%.6f, %s, %s)" % (self.time, self.kind, inner)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer(object):
    """Collects :class:`TraceRecord` entries for a simulation run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append an entry (no-op when disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, kind, fields))

    def clear(self) -> None:
        self._records = []

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in time order."""
        return [record for record in self._records if record.kind == kind]

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All records satisfying ``predicate``, in time order."""
        return [record for record in self._records if predicate(record)]

    def total(self, kind: str, field: str) -> float:
        """Sum of ``field`` over all records of ``kind``."""
        return float(sum(record[field] for record in self.of_kind(kind)))


class NullTracer(Tracer):
    """A tracer that never records; used as the default."""

    def __init__(self) -> None:
        super(NullTracer, self).__init__(enabled=False)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        return None
