"""Core event types for the discrete-event simulation kernel.

The kernel follows the classic generator-based design (popularized by
SimPy): an :class:`Event` is a one-shot occurrence that carries a value
or an exception, and simulation processes are Python generators that
``yield`` events to suspend until those events fire.

Events go through three states:

* *pending* — created but not yet triggered,
* *triggered* — a value/exception has been set and the event is queued,
* *processed* — the kernel has invoked all callbacks.

Only the kernel (:class:`repro.sim.kernel.Environment`) moves events
from triggered to processed; user code triggers events with
:meth:`Event.succeed` or :meth:`Event.fail`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "PENDING",
    "Priority",
    "Event",
    "Timeout",
    "TimeoutUntil",
    "Initialize",
    "ConditionValue",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interruption",
    "Interrupt",
    "StopSimulation",
]


class _PendingType(object):
    """Sentinel for "no value yet"; distinct from ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Unique sentinel used as the value of untriggered events.
PENDING = _PendingType()


class Priority(object):
    """Scheduling priorities; lower values run earlier at equal times."""

    URGENT = 0
    NORMAL = 1

    __slots__ = ()


class Event(object):
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    env:
        The environment this event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        #: Callables invoked (with this event) when the event is processed.
        #: Set to ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        if self.processed:
            state += ",processed"
        return "<%s (%s) at 0x%x>" % (type(self).__name__, state, id(self))

    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.

        Only meaningful once :attr:`triggered` is true.
        """
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is PENDING:
            raise AttributeError("value of %r is not yet available" % self)
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure has been handled and should not propagate."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("%r has already been triggered" % self)
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on this
        event.  If no process waits on it and it is never defused, the
        environment raises it when the event is processed, so failures
        never pass silently.
        """
        if self.triggered:
            raise RuntimeError("%r has already been triggered" % self)
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception, got %r" % (exception,))
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if self.triggered:
            raise RuntimeError("%r has already been triggered" % self)
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError("negative delay %r" % (delay,))
        # A Timeout is born triggered, and this constructor is the
        # kernel's hottest allocation site: set the Event fields
        # directly instead of dispatching through Event.__init__ and
        # then overwriting half of them.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return "<Timeout(%s) at 0x%x>" % (self.delay, id(self))


class TimeoutUntil(Event):
    """An event that fires at an absolute simulation time.

    The network fast path coalesces many per-frame timeouts into one
    event whose pop time must hit an exact float target: scheduling
    ``at`` directly sidesteps the ``now + (at - now)`` round-trip,
    which is not an identity in floating point.
    """

    __slots__ = ("at",)

    def __init__(self, env: "Environment", at: float, value: Any = None) -> None:  # noqa: F821
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.at = at
        env.schedule_at(self, at)

    def __repr__(self) -> str:
        return "<TimeoutUntil(%s) at 0x%x>" % (self.at, id(self))


class Initialize(Event):
    """Immediately-scheduled event that starts a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:  # noqa: F821
        super(Initialize, self).__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=Priority.URGENT)


class ConditionValue(object):
    """Ordered mapping of the events a condition has collected so far."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]) -> None:
        self.events = list(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        return self.todict() == other

    def __repr__(self) -> str:
        return "<ConditionValue %s>" % (self.todict(),)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [event.value for event in self.events]

    def todict(self) -> dict:
        return {event: event.value for event in self.events}


class Condition(Event):
    """Composite event over multiple sub-events.

    ``evaluate`` receives the full event list and the count of events
    triggered so far and decides whether the condition holds.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super(Condition, self).__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments in one condition")

        if not self._events:
            # An empty condition is trivially met.
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        # Only *processed* events belong to the result.  (Timeouts carry
        # their value from creation, so `triggered` would wrongly include
        # sub-events that have not fired yet.)
        return ConditionValue([event for event in self._events if event.processed])

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            # Any sub-event failure fails the whole condition.
            event.defused = True
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Condition that fires once *all* sub-events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super(AllOf, self).__init__(env, _all_events, events)


class AnyOf(Condition):
    """Condition that fires once *any* sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super(AnyOf, self).__init__(env, _any_events, events)


def _all_events(events: List[Event], count: int) -> bool:
    return count == len(events)


def _any_events(events: List[Event], count: int) -> bool:
    return count > 0 or not events


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Interruption(Event):
    """Immediately-scheduled event that throws :class:`Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:  # noqa: F821
        super(Interruption, self).__init__(process.env)
        if process.triggered:
            raise RuntimeError("cannot interrupt %r: it has terminated" % process)
        if process is process.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        self.callbacks.append(self._interrupt)
        process.env.schedule(self, priority=Priority.URGENT)

    def _interrupt(self, event: Event) -> None:
        if self.process.triggered:
            return  # Process terminated before the interrupt was delivered.
        target = self.process._target
        if target is not None and self.process._resume in target.callbacks:
            target.callbacks.remove(self.process._resume)
        self.process._resume(self)


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation when fired."""
        if event.ok:
            raise cls(event.value)
        raise event.value
