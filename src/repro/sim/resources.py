"""Shared resources for simulation processes.

Three primitives cover everything the substrates need:

* :class:`Resource` — a counted semaphore with a FIFO wait queue; models
  exclusive media (an Ethernet segment, a token) or multi-unit capacity
  (switch ports).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``;
  models mailboxes and daemon input queues.
* :class:`FilterStore` — a store whose ``get`` can wait for an item
  matching a predicate; models tag/source-selective message receipt.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.sim.events import Event

__all__ = ["Request", "Release", "Resource", "StorePut", "StoreGet", "Store", "FilterStore"]


class Request(Event):
    """A pending (or granted) claim on a :class:`Resource`.

    Usable as a context manager so the resource is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super(Request, self).__init__(resource._env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        if not self.triggered:
            self.resource._waiters.remove(self)


class Release(Event):
    """Event that fires immediately once a claim has been returned."""

    __slots__ = ()


class Resource(object):
    """A counted, FIFO-fair resource.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of simultaneous claims allowed (default 1).
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError("capacity must be positive, got %r" % (capacity,))
        self._env = env
        self._capacity = int(capacity)
        self._users: List[Request] = []
        self._waiters: Deque[Request] = deque()
        self._contention_watchers: List[Callable[[Request], None]] = []

    def __repr__(self) -> str:
        return "<Resource capacity=%d users=%d queued=%d>" % (
            self._capacity,
            len(self._users),
            len(self._waiters),
        )

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of claims currently granted."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a free slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        return Request(self)

    def watch_contention(self, callback: Callable[[Request], None]) -> None:
        """Invoke ``callback(request)`` whenever a request must queue.

        This is the hook the network fast path uses to coalesce long
        uncontended holds: the holder sleeps through one closed-form
        timeout and is woken the instant a rival claimant arrives, so
        it can yield the resource exactly where the per-claim path
        would have.  Watchers fire synchronously inside ``request()``.
        """
        self._contention_watchers.append(callback)

    def unwatch_contention(self, callback: Callable[[Request], None]) -> None:
        """Remove a watcher added by :meth:`watch_contention`."""
        try:
            self._contention_watchers.remove(callback)
        except ValueError:
            pass

    def release(self, request: Request) -> Release:
        """Return a previously granted claim.

        Releasing an ungranted (queued) request cancels it instead.
        """
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            request.cancel()
        release = Release(self._env)
        release.succeed()
        return release

    def _do_request(self, request: Request) -> None:
        if len(self._users) < self._capacity:
            self._users.append(request)
            request.succeed()
        else:
            self._waiters.append(request)
            if self._contention_watchers:
                for callback in tuple(self._contention_watchers):
                    callback(request)

    def _grant_next(self) -> None:
        while self._waiters and len(self._users) < self._capacity:
            request = self._waiters.popleft()
            self._users.append(request)
            request.succeed()


class StorePut(Event):
    """Completed immediately: stores here are unbounded."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super(StorePut, self).__init__(store._env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    """Fires with the next item (optionally the next matching item)."""

    __slots__ = ("store", "filter")

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None) -> None:
        super(StoreGet, self).__init__(store._env)
        self.store = store
        self.filter = filter
        store._do_get(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-satisfied get from the wait queue."""
        if not self.triggered:
            try:
                self.store._getters.remove(self)
            except ValueError:
                pass


class Store(object):
    """Unbounded FIFO item store with blocking ``get``."""

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self._env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __repr__(self) -> str:
        return "<%s items=%d getters=%d>" % (
            type(self).__name__,
            len(self._items),
            len(self._getters),
        )

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; never blocks."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Take the oldest item; the event fires when one is available."""
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> None:
        self._items.append(event.item)
        event.succeed()
        self._dispatch()

    def _do_get(self, event: StoreGet) -> None:
        self._getters.append(event)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            getter.succeed(self._items.popleft())


class FilterStore(Store):
    """Store whose ``get`` may wait for an item matching a predicate."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the oldest item for which ``filter(item)`` is true."""
        return StoreGet(self, filter)

    def _dispatch(self) -> None:
        # Repeatedly try to satisfy any waiting getter; stop when a full
        # pass makes no progress.
        progressed = True
        while progressed:
            progressed = False
            for getter in list(self._getters):
                match_index = None
                for index, item in enumerate(self._items):
                    if getter.filter is None or getter.filter(item):
                        match_index = index
                        break
                if match_index is not None:
                    self._getters.remove(getter)
                    item = self._items[match_index]
                    del self._items[match_index]
                    getter.succeed(item)
                    progressed = True
