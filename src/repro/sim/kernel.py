"""The discrete-event scheduler (:class:`Environment`).

The environment owns the event heap and the simulation clock.  Entries
are ordered by ``(time, priority, sequence)`` which makes runs fully
deterministic: two events scheduled for the same instant fire in the
order they were scheduled.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple, Union

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Priority,
    StopSimulation,
    Timeout,
    TimeoutUntil,
)
from repro.sim.process import Process

__all__ = ["Environment", "Infinity"]

#: Convenience alias used for "run forever" bounds.
Infinity = float("inf")

# Pre-bound heap primitives: the run loop touches these once per event,
# so shaving the module-attribute lookups is measurable at the millions
# of events a sweep schedules.
_heappush = heapq.heappush
_heappop = heapq.heappop


class Environment(object):
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock, in seconds.

    Examples
    --------
    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(2.5)
    ...     return "done"
    >>> proc = env.process(hello(env))
    >>> env.run()
    >>> env.now
    2.5
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        # Bound method: schedule() calls this once per event.
        self._eid = count().__next__
        self._active_proc: Optional[Process] = None

    def __repr__(self) -> str:
        return "<Environment now=%g queued=%d>" % (self._now, len(self._queue))

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def timeout_until(self, at: float, value: Any = None) -> TimeoutUntil:
        """Create an event that fires at the absolute time ``at``.

        Unlike ``timeout(at - now)``, the event pops at exactly ``at``:
        there is no float round-trip through a relative delay.  The
        network fast path relies on this to keep coalesced timestamps
        bit-identical to the per-frame accumulation they replace.
        """
        return TimeoutUntil(self, at, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition that fires once all ``events`` fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition that fires once any of ``events`` fires."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        event: Event,
        delay: float = 0.0,
        priority: int = Priority.NORMAL,
    ) -> None:
        """Queue ``event`` to be processed after ``delay`` seconds."""
        _heappush(self._queue, (self._now + delay, priority, self._eid(), event))

    def schedule_at(
        self,
        event: Event,
        at: float,
        priority: int = Priority.NORMAL,
    ) -> None:
        """Queue ``event`` to be processed at the absolute time ``at``."""
        if at < self._now:
            raise ValueError(
                "cannot schedule at %s: it is before the current time %s" % (at, self._now)
            )
        _heappush(self._queue, (at, priority, self._eid(), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return Infinity
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        RuntimeError
            If no events are scheduled ("empty schedule").
        """
        if not self._queue:
            raise RuntimeError("no scheduled events: simulation is exhausted")
        self._now, _, _, event = _heappop(self._queue)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An un-handled failure must not pass silently.
            exc = event._value
            raise exc

    def run(self, until: Optional[Union[float, Event]] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event is processed and return its value.
        """
        stop_at = Infinity
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                stop_at = float(until)
                if stop_at <= self._now:
                    raise ValueError(
                        "until (%s) must be greater than the current time (%s)"
                        % (stop_at, self._now)
                    )

        # The hot loop: step() inlined, with the queue and heappop held
        # in locals.  Per-event peek()/step() calls and their attribute
        # lookups cost more than the heap work itself at the millions
        # of events a sweep processes.
        queue = self._queue
        pop = _heappop
        try:
            while queue and queue[0][0] < stop_at:
                self._now, _, _, event = pop(queue)

                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)

                if not event._ok and not event._defused:
                    # An un-handled failure must not pass silently.
                    raise event._value
        except StopSimulation as exc:
            return exc.args[0]

        if isinstance(until, Event) and not until.triggered:
            raise RuntimeError("no scheduled events left but until event was not triggered")
        if stop_at is not Infinity:
            self._now = stop_at
        return None
