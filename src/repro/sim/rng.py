"""Deterministic named random streams.

Every stochastic element of the simulation (CSMA/CD backoff, Monte
Carlo sampling, workload generation) draws from a *named* stream so
that adding a new consumer never perturbs the draws seen by existing
ones.  Stream seeds are derived stably from ``(root_seed, name)`` via
SHA-256, so results are reproducible across runs and Python versions.

Every stream name in use is registered in :data:`STREAM_NAMES` below.
The registry is what makes "adding a consumer is a deliberate act"
enforceable: the ``determinism.stream-name`` check (``repro check``)
rejects any ``stream(...)``/``numpy_stream(...)`` call whose name is
not registered, so a new consumer shows up here — next to a one-line
description of what it feeds — in the same diff that introduces it.
Per-rank families register once as a ``"prefix*"`` pattern.
:meth:`RandomStreams.stream_names` is the runtime complement: it
shows which registered streams a run actually instantiated.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple

import numpy as np

__all__ = ["derive_seed", "RandomStreams", "STREAM_NAMES"]

#: The documented registry of stream names.  Exact names, or
#: ``"prefix*"`` for per-rank families (``"mc.rank*"`` admits
#: ``"mc.rank0"``, ``"mc.rank1"``, ...).  Checked statically by
#: ``repro check`` (determinism.stream-name); keep each entry's
#: description current — it is the review trail for who draws what.
STREAM_NAMES: Dict[str, str] = {
    "ethernet.backoff": "Ethernet CSMA/CD retransmission backoff noise",
    "fddi.token": "FDDI token-rotation jitter noise",
    "atm.switch": "ATM switch-transit jitter noise",
    "allnode.switch": "Allnode crossbar switch-transit jitter noise",
    "mc.rank*": "per-rank Monte Carlo pi sample coordinates",
    "lu.matrix": "LU factorization input matrix",
    "matmul.a.rank*": "per-rank row blocks of matmul operand A",
    "matmul.b": "shared matmul operand B (every rank re-derives it)",
    "psrs.keys.rank*": "per-rank unsorted key blocks for PSRS sorting",
    "jpeg.image": "synthetic gradient-noise image for JPEG encoding",
    "fft.rows.rank*": "per-rank signal rows for the 2-D FFT",
}


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit seed for stream ``name``."""
    digest = hashlib.sha256(("%d/%s" % (root_seed, name)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class RandomStreams(object):
    """Factory of independent, reproducible random generators.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> backoff = streams.stream("ethernet.backoff")
    >>> samples = streams.numpy_stream("mc.rank0")
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._py_streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def __repr__(self) -> str:
        return "<RandomStreams seed=%d streams=%d>" % (
            self._seed,
            len(self._py_streams) + len(self._np_streams),
        )

    @property
    def seed(self) -> int:
        return self._seed

    def stream_names(self) -> Tuple[str, ...]:
        """Names of every stream instantiated so far, sorted.

        Diagnostic view: e.g. after a noisy run it shows which media
        actually attached (and possibly drew from) their models.
        """
        return tuple(sorted(set(self._py_streams) | set(self._np_streams)))

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the Python stream ``name``."""
        if name not in self._py_streams:
            # The one sanctioned construction site for seeded PRNGs.
            self._py_streams[name] = random.Random(  # repro: allow[determinism.entropy]
                derive_seed(self._seed, name)
            )
        return self._py_streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the numpy stream ``name``.

        The stream is stateful: successive calls continue the sequence.
        """
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(  # repro: allow[determinism.entropy]
                derive_seed(self._seed, name)
            )
        return self._np_streams[name]

    def fresh_numpy_stream(self, name: str) -> np.random.Generator:
        """A *new* generator for ``name``, restarted from its seed.

        Use this when the same data must be re-derivable later (e.g. a
        verifier regenerating the exact keys a rank produced).
        """
        return np.random.default_rng(  # repro: allow[determinism.entropy]
            derive_seed(self._seed, name)
        )
