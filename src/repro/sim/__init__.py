"""Deterministic discrete-event simulation kernel.

This package is the foundation of the reproduction: networks, nodes,
message-passing tool runtimes and applications all execute as generator
processes over this kernel.

Public API
----------
:class:`Environment`
    The scheduler and clock.
:class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`
    Event primitives processes can ``yield``.
:class:`Process`, :class:`Interrupt`
    Process handle and the interrupt exception.
:class:`Resource`, :class:`Store`, :class:`FilterStore`
    Shared-resource primitives.
:class:`RandomStreams`
    Named deterministic random streams.
:class:`Tracer`
    Structured run tracing.
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    PENDING,
    Priority,
    Timeout,
    TimeoutUntil,
)
from repro.sim.kernel import Environment, Infinity
from repro.sim.process import Process
from repro.sim.resources import FilterStore, Request, Resource, Store
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Environment",
    "Event",
    "FilterStore",
    "Infinity",
    "Interrupt",
    "NullTracer",
    "PENDING",
    "Priority",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "Store",
    "Timeout",
    "TimeoutUntil",
    "TraceRecord",
    "Tracer",
    "derive_seed",
]
