"""Analytic batch engine: closed-form sweeps without the event kernel.

The paper's evaluation grids are dominated by uncontended,
deterministic timings whose answers have closed forms.  This package
evaluates those jobs as vectorized timing models — numpy over the
whole message-size axis at once — reproducing the event kernel's
left-to-right float accumulation so the results are bit-identical,
and falls back to the event kernel wherever contention or noise makes
simulation necessary:

* :mod:`repro.analytic.models` — the vectorized per-medium / per-tool
  timeline models, derived from the same ``FrameFormat`` closed forms
  the bulk fast path uses;
* :mod:`repro.analytic.planner` — decides which jobs are
  analytic-eligible (noise=0, uncontended traffic pattern, modeled
  tool and medium) and partitions job streams;
* :mod:`repro.analytic.curves` — the curve-level cache
  ``(platform, tool, kind, processors) -> timing curve`` layered above
  the job-level :class:`~repro.core.cache.ResultCache`;
* :mod:`repro.analytic.engine` — the :class:`AnalyticEngine` the
  scheduler consults when running with ``engine="analytic"`` or
  ``engine="auto"``.
"""

from repro.analytic.curves import CurveCache
from repro.analytic.engine import AnalyticEngine
from repro.analytic.planner import is_eligible, partition, why_ineligible

__all__ = [
    "AnalyticEngine",
    "CurveCache",
    "is_eligible",
    "partition",
    "why_ineligible",
]
