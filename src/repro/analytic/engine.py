"""The analytic engine: batch evaluation of eligible jobs.

Glue between the planner (eligibility), the models (vectorized
timelines) and the curve cache: a batch of jobs is grouped by curve,
each curve's missing size points are evaluated in one vectorized call,
and every job is answered from its curve.  The scheduler talks to this
class only; telemetry marks the results ``engine="analytic"``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analytic import models, planner
from repro.analytic.curves import CurveCache, curve_key
from repro.core.jobs import MeasurementJob
from repro.errors import EvaluationError

__all__ = ["AnalyticEngine"]


class AnalyticEngine(object):
    """Answers analytic-eligible jobs from vectorized closed forms."""

    def __init__(self, curves: Optional[CurveCache] = None) -> None:
        self.curves = curves if curves is not None else CurveCache()

    def __repr__(self) -> str:
        return "<AnalyticEngine %r>" % (self.curves,)

    def eligible(self, job: MeasurementJob) -> bool:
        return planner.is_eligible(job)

    def why_ineligible(self, job: MeasurementJob) -> Optional[str]:
        return planner.why_ineligible(job)

    def compute(self, job: MeasurementJob) -> Optional[float]:
        """One job's sample (seconds, or None for "Not Available")."""
        return self.compute_many([job])[job]

    def compute_many(
        self, jobs: Iterable[MeasurementJob]
    ) -> Dict[MeasurementJob, Optional[float]]:
        """Samples for a batch of eligible jobs, one model call per curve."""
        jobs = list(jobs)
        by_curve: Dict[tuple, List[int]] = {}
        sizes: Dict[MeasurementJob, int] = {}
        for job in jobs:
            reason = planner.why_ineligible(job)
            if reason is not None:
                raise EvaluationError(
                    "job %s is not analytic-eligible: %s" % (job.label(), reason)
                )
            size = job.params_dict()[planner.size_param(job.kind)]
            sizes[job] = size
            by_curve.setdefault(curve_key(job), []).append(size)
        results: Dict[MeasurementJob, Optional[float]] = {}
        points: Dict[tuple, Dict[int, Optional[float]]] = {}
        for key, wanted in by_curve.items():
            known, missing = self.curves.lookup(key, wanted)
            if missing:
                platform, tool, kind, processors = key
                values = models.evaluate_curve(platform, tool, kind, processors, missing)
                self.curves.extend(key, missing, values)
                known.update(zip(missing, values))
            points[key] = known
        for job in jobs:
            results[job] = points[curve_key(job)][sizes[job]]
        return results
