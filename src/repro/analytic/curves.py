"""The curve-level cache above the job-level :class:`ResultCache`.

A *curve* is one configuration's timing function over its size axis:
``(platform, tool, kind, processors) -> {size: seconds}``.  Analytic
jobs that land on a known curve are answered from memory; new size
points on a known curve extend it with one vectorized evaluation.  The
key deliberately excludes ``seed``: eligible jobs are deterministic
(noise=0 draws nothing from the platform's seeded streams), so every
seed sits on the same curve — which is exactly what makes whole-grid
re-sweeps with fresh seeds near-free.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["CurveCache", "curve_key"]

#: A curve's identity: (platform, tool, kind, processors).
CurveKey = Tuple[str, str, str, int]


def curve_key(job) -> CurveKey:
    """The curve a :class:`MeasurementJob` samples."""
    return (job.platform, job.tool, job.kind, job.processors)


class CurveCache(object):
    """Thread-safe accumulation of evaluated curve points.

    ``hits``/``misses`` count size points served from / absent from
    cached curves; ``evaluations`` counts vectorized model calls (one
    per curve with any missing points in a batch).
    """

    def __init__(self) -> None:
        self._curves: Dict[CurveKey, Dict[int, Optional[float]]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evaluations = 0  # guarded-by: _lock

    def __repr__(self) -> str:
        with self._lock:
            return "<CurveCache curves=%d hits=%d misses=%d>" % (
                len(self._curves), self.hits, self.misses,
            )

    def lookup(self, key: CurveKey, sizes: Sequence[int]) -> Tuple[Dict[int, Optional[float]], List[int]]:
        """Split ``sizes`` into known points and missing ones.

        Returns ``(known, missing)`` and updates the hit/miss counters;
        ``missing`` preserves first-seen order without duplicates.
        """
        with self._lock:
            curve = self._curves.get(key, {})
            known: Dict[int, Optional[float]] = {}
            missing: List[int] = []
            for size in sizes:
                if size in curve:
                    known[size] = curve[size]
                elif size not in known and size not in missing:
                    missing.append(size)
            self.hits += len(known)
            self.misses += len(missing)
            return known, missing

    def extend(self, key: CurveKey, sizes: Sequence[int], values: Sequence[Optional[float]]) -> None:
        """Record freshly evaluated points for one curve."""
        with self._lock:
            curve = self._curves.setdefault(key, {})
            for size, value in zip(sizes, values):
                curve[size] = value
            self.evaluations += 1

    def curve(self, key: CurveKey) -> Dict[int, Optional[float]]:
        """Snapshot of one curve's accumulated points."""
        with self._lock:
            return dict(self._curves.get(key, {}))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "curves": len(self._curves),
                "points": sum(len(c) for c in self._curves.values()),
                "hits": self.hits,
                "misses": self.misses,
                "evaluations": self.evaluations,
            }
