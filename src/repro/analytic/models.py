"""Vectorized closed-form timeline models, bit-identical to the kernel.

Each model replays the event kernel's timeline for one job kind as
numpy arithmetic over the whole message-size axis at once.  The
discipline that makes the results *bit-identical* rather than merely
close: every float operation the kernel performs on the simulation
clock is mirrored here as the same IEEE-754 double operation, in the
same left-to-right order, starting from the same absolute time.
Masked updates (``np.where(active, t + step, t)``) keep per-lane
operation sequences exact when lanes need different numbers of frames,
windows or fragments; joins between concurrent processes become
``np.maximum``, which is valid precisely because the planner only
admits *uncontended* traffic patterns — every rendezvous in an
admitted job is a pure max of two known completion times, never a
queueing delay.

The models only cover what the planner admits (see
:mod:`repro.analytic.planner`): deterministic (noise=0) runs whose
wire, CPU and daemon activity never contends.  The equivalence suite
in ``tests/analytic/`` asserts ``float(model) == execute_job(job)``
bitwise across the admitted grid.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.hardware.catalog import build_platform
from repro.hardware.specs import REFERENCE_SPEC

# Single source of truth for the transports' wire constants: drift
# between model and kernel would silently break bit-identity, so the
# module-private values are imported rather than redeclared.
from repro.net.transport import _ACK_BYTES as _TCP_ACK_BYTES
from repro.tools.express import _ACK_BYTES as _EXPRESS_ACK_BYTES
from repro.tools.registry import create_tool

__all__ = ["AnalyticModel", "get_model", "evaluate_curve"]


def _size_array(sizes: Sequence[int]) -> np.ndarray:
    return np.asarray(list(sizes), dtype=np.int64)


def _frame_count(n: np.ndarray, payload: int) -> np.ndarray:
    """Vector :meth:`FrameFormat.frame_count` (min 1, ceiling division)."""
    return np.where(n <= 0, 1, -(-n // payload))


def _total_wire_bytes(n: np.ndarray, payload: int, overhead: int, min_wire: int) -> np.ndarray:
    """Vector :meth:`FrameFormat.total_wire_bytes` (exact integer form)."""
    frames = _frame_count(n, payload)
    last_payload = np.where(n <= 0, 0, n - (frames - 1) * payload)
    full_wire = max(payload + overhead, min_wire)
    last_wire = np.maximum(last_payload + overhead, min_wire)
    return np.where(n <= 0, max(overhead, min_wire), (frames - 1) * full_wire + last_wire)


class _EthernetModel(object):
    """Uncontended :meth:`Ethernet.transfer`: the coalesced frame path.

    The kernel accumulates the hold target frame by frame from the
    claim instant and schedules it absolutely (``timeout_until``), so
    the model repeats the same per-frame additions per lane.
    """

    def __init__(self, net) -> None:
        fmt = net.frame_format
        self._payload = fmt.payload_bytes
        self._overhead = fmt.overhead_bytes
        self._min_wire = fmt.min_wire_bytes
        self._rate = net.rate_bps
        self._prop = net.propagation_seconds
        self._full_seconds = net.frame_seconds(fmt.payload_bytes)

    def transfer(self, t: np.ndarray, n: np.ndarray) -> np.ndarray:
        frames = _frame_count(n, self._payload)
        last_payload = np.where(n <= 0, 0, n - (frames - 1) * self._payload)
        last_wire = np.maximum(last_payload + self._overhead, self._min_wire)
        last_seconds = last_wire * 8.0 / self._rate
        # One strictly-sequential accumulate replaces a Python-level
        # per-frame loop.  Row 0 is the claim instant; each later row
        # is that frame's hold (full frames, then the short last frame,
        # then 0.0 padding past a lane's frame count).  ``accumulate``
        # applies ``+`` left to right, reproducing the kernel's
        # frame-by-frame float accumulation bit for bit — and the
        # padding is exact, because ``x + 0.0 == x`` bitwise for the
        # non-negative times on this clock.
        t = np.asarray(t, dtype=np.float64)
        total = int(frames.max())
        shape = np.broadcast_shapes(t.shape, frames.shape)
        index = np.arange(total).reshape((total,) + (1,) * len(shape))
        steps = np.where(
            index < frames - 1,
            self._full_seconds,
            np.where(index == frames - 1, last_seconds, 0.0),
        )
        rows = np.empty((total + 1,) + shape, dtype=np.float64)
        rows[0] = t
        rows[1:] = steps
        target = np.add.accumulate(rows, axis=0)[-1]
        return target + self._prop


class _FddiModel(object):
    """Uncontended :meth:`FddiRing.transfer`: token wait, stream, hop."""

    def __init__(self, net) -> None:
        fmt = net.frame_format
        self._payload = fmt.payload_bytes
        self._overhead = fmt.overhead_bytes
        self._min_wire = fmt.min_wire_bytes
        self._rate = net.rate_bps
        self._token = net.token_latency_seconds
        self._prop = net.propagation_seconds

    def transfer(self, t: np.ndarray, n: np.ndarray) -> np.ndarray:
        busy = _total_wire_bytes(n, self._payload, self._overhead, self._min_wire) * 8.0 / self._rate
        t = t + self._token
        t = t + busy
        return t + self._prop


class _AtmModel(object):
    """Uncontended :meth:`AtmLan.transfer` (LAN and WAN constants)."""

    _CELL_BYTES = 53
    _CELL_PAYLOAD = 48
    _AAL5_TRAILER = 8

    def __init__(self, net) -> None:
        self._line_rate = net.line_rate_bps
        self._tail = net.switch_latency_seconds + net.propagation_seconds

    def transfer(self, t: np.ndarray, n: np.ndarray) -> np.ndarray:
        total = np.maximum(n, 0) + self._AAL5_TRAILER
        cells = (total + self._CELL_PAYLOAD - 1) // self._CELL_PAYLOAD
        stream = cells * self._CELL_BYTES * 8.0 / self._line_rate
        t = t + stream
        return t + self._tail


class _AllnodeModel(object):
    """Uncontended :meth:`AllnodeSwitch.transfer`."""

    def __init__(self, net) -> None:
        fmt = net.frame_format
        self._payload = fmt.payload_bytes
        self._overhead = fmt.overhead_bytes
        self._min_wire = fmt.min_wire_bytes
        self._rate = net.rate_bps
        self._tail = net.switch_latency_seconds + net.propagation_seconds

    def transfer(self, t: np.ndarray, n: np.ndarray) -> np.ndarray:
        stream = _total_wire_bytes(n, self._payload, self._overhead, self._min_wire) * 8.0 / self._rate
        t = t + stream
        return t + self._tail


_MEDIUM_MODELS = {
    "ethernet": _EthernetModel,
    "fddi": _FddiModel,
    "atm-lan": _AtmModel,
    "atm-wan": _AtmModel,
    "allnode": _AllnodeModel,
}


def _binomial_children(relative: int, size: int) -> List[int]:
    """Children of ``relative`` in the collectives' binomial tree."""
    mask = 1
    while mask < size:
        if relative & mask:
            break
        mask <<= 1
    mask >>= 1
    children = []
    while mask > 0:
        if relative + mask < size:
            children.append(relative + mask)
        mask >>= 1
    return children


class AnalyticModel(object):
    """Closed-form timelines for one ``(platform, tool, processors)``.

    A throwaway platform/tool pair is built once to read the calibrated
    constants (network rates, profile costs, node speeds); after that
    every evaluation is pure numpy.
    """

    def __init__(self, platform_name: str, tool_name: str, processors: int) -> None:
        platform = build_platform(platform_name, processors=processors, seed=0)
        tool = create_tool(tool_name, platform)
        net = platform.network
        try:
            medium_model = _MEDIUM_MODELS[net.kind]
        except KeyError:
            raise EvaluationError("no analytic wire model for %r medium" % net.kind)
        self.platform_name = platform_name
        self.tool_name = tool_name
        self.processors = int(processors)
        self.network_kind = net.kind
        self.profile = tool.profile
        self._medium = medium_model(net)
        spec = platform.node_spec
        self._mips = spec.mips
        self._quantum = platform.node(0).quantum_seconds
        self._software_factor = REFERENCE_SPEC.mips / spec.mips
        self._send_fixed = self.profile.send_fixed + net.host_fixed_seconds
        self._send_per_byte = self.profile.pack_per_byte + net.host_per_byte_seconds
        self._recv_fixed = self.profile.recv_fixed + net.host_fixed_seconds
        self._recv_per_byte = self.profile.unpack_per_byte + net.host_per_byte_seconds

    def __repr__(self) -> str:
        return "<AnalyticModel %s@%s/%d>" % (
            self.tool_name, self.platform_name, self.processors,
        )

    # ------------------------------------------------------------------
    # Kernel building blocks
    # ------------------------------------------------------------------

    def _send_cost(self, n: np.ndarray) -> np.ndarray:
        """:meth:`ToolRuntime.send_side_cost` (reference seconds)."""
        return self._send_fixed + self._send_per_byte * n

    def _recv_cost(self, n: np.ndarray) -> np.ndarray:
        """:meth:`ToolRuntime.recv_side_cost` (reference seconds)."""
        return self._recv_fixed + self._recv_per_byte * n

    def _cpu(self, t: np.ndarray, seconds) -> np.ndarray:
        """:meth:`Node.use_cpu` on an idle CPU: the exact quantum loop."""
        t = np.array(t, dtype=np.float64)
        remaining = np.empty_like(t)
        remaining[...] = seconds
        while True:
            running = remaining > 0.0
            if not running.any():
                break
            timeslice = np.minimum(remaining, self._quantum)
            t = np.where(running, t + timeslice, t)
            remaining = np.where(running, remaining - timeslice, remaining)
        return t

    def _software(self, t: np.ndarray, reference_seconds) -> np.ndarray:
        """:meth:`ToolRuntime.software`: reference-scaled CPU time."""
        return self._cpu(t, np.asarray(reference_seconds) * self._software_factor)

    def _tcp_transfer(self, t: np.ndarray, n: np.ndarray) -> np.ndarray:
        """:meth:`TcpTransport.transfer`: windows with per-window acks."""
        window = self.profile.tcp_window_bytes
        ack_turnaround = self.profile.ack_turnaround
        empty = n <= 0
        out = np.array(t, dtype=np.float64)
        t_empty = self._medium.transfer(out, np.zeros_like(n)) if empty.any() else None
        remaining = np.where(empty, 0, n)
        while True:
            active = remaining > 0
            if not active.any():
                break
            chunk = np.minimum(remaining, window)
            out = np.where(active, self._medium.transfer(out, chunk), out)
            remaining = np.where(active, remaining - chunk, remaining)
            more = remaining > 0
            if more.any():
                out = np.where(more, out + ack_turnaround, out)
                out = np.where(
                    more,
                    self._medium.transfer(out, np.full_like(n, _TCP_ACK_BYTES)),
                    out,
                )
        if t_empty is not None:
            out = np.where(empty, t_empty, out)
        return out

    def _express_send(self, t: np.ndarray, n: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`ExpressTool.send_path`.

        Returns ``(sender_done, delivered)``: when the sender's final
        ack lands, and when the last data fragment reached the
        receiver's mailbox.  The per-fragment handshake is charged on
        the *receiver's* CPU, which is idle for every admitted pattern
        (the receiver is blocked in its mailbox get).
        """
        profile = self.profile
        t = np.array(t, dtype=np.float64)
        remaining = np.maximum(n, 0)
        delivered = np.zeros_like(t)
        pending = np.ones(t.shape, dtype=bool)
        first = True
        while first or pending.any():
            first = False
            fragment = np.minimum(remaining, profile.fragment_bytes)
            t = np.where(pending, self._medium.transfer(t, fragment), t)
            remaining = np.where(pending, remaining - fragment, remaining)
            final = pending & (remaining == 0)
            delivered = np.where(final, t, delivered)
            t = np.where(pending, self._software(t, profile.handshake_seconds), t)
            t = np.where(
                pending,
                self._medium.transfer(t, np.full_like(n, _EXPRESS_ACK_BYTES)),
                t,
            )
            pending = pending & ~final
        return t, delivered

    def _ipc_cost(self, n: np.ndarray) -> np.ndarray:
        """PVM's process<->daemon IPC hand-off cost (reference seconds)."""
        return self.profile.daemon_ipc_fixed + self.profile.daemon_ipc_per_byte * n

    def _daemon_hop(self, t: np.ndarray, n: np.ndarray) -> np.ndarray:
        """:meth:`PvmTool._daemon_hop`: the three-stage store-and-forward.

        The pipeline recurrence per fragment ``i``::

            copy_done_i  = cpu(copy_done_{i-1}, copy_cost_i)     # src daemon
            wire_start_i = max(copy_done_i, wire_done_{i-1})
            wire_done_i  = transfer(wire_start_i) [+ ack stall if not last]
            drain_done_i = cpu(max(wire_done_i, drain_done_{i-1}), copy_cost_i)

        The hop completes when the destination daemon drains the last
        fragment (the other stages always finish no later).  The
        congestion retransmit branch never fires for admitted jobs:
        it requires another transmitter queued on the source's medium.
        """
        profile = self.profile
        remaining = np.maximum(n, 0)
        count = _frame_count(n, profile.daemon_fragment_bytes)
        copy_done = np.array(t, dtype=np.float64)
        wire_done = np.full(t.shape, -np.inf)
        drain_done = np.full(t.shape, -np.inf)
        for index in range(int(count.max())):
            active = index < count
            fragment = np.minimum(remaining, profile.daemon_fragment_bytes)
            copy_cost = profile.daemon_copy_per_byte * fragment
            copy_done = np.where(active, self._software(copy_done, copy_cost), copy_done)
            wire_end = self._medium.transfer(np.maximum(copy_done, wire_done), fragment)
            last = index == count - 1
            wire_done = np.where(
                active,
                np.where(last, wire_end, wire_end + profile.daemon_ack_stall),
                wire_done,
            )
            drain_start = np.maximum(wire_done, drain_done)
            drain_done = np.where(active, self._software(drain_start, copy_cost), drain_done)
            remaining = np.where(active, remaining - fragment, remaining)
        return drain_done

    # ------------------------------------------------------------------
    # Job-kind timelines
    # ------------------------------------------------------------------

    def sendrecv(self, sizes: Sequence[int]) -> np.ndarray:
        """Rank 0's ping-pong round trip (``measure_sendrecv``)."""
        n = _size_array(sizes)
        t = np.zeros(n.shape, dtype=np.float64)
        transport = self.profile.transport
        if transport == "tcp":
            for _leg in range(2):
                t = self._software(t, self._send_cost(n))
                t = self._tcp_transfer(t, n)
                t = self._software(t, self._recv_cost(n))
            return t
        if transport == "stop-and-wait":
            for _leg in range(2):
                t = self._software(t, self._send_cost(n))
                _, delivered = self._express_send(t, n)
                # The sender's process claims the receiver's CPU for the
                # final handshake before the unblocked receiver can post
                # its recv software, so the recv queues behind it.
                t = self._software(delivered, self.profile.handshake_seconds)
                t = self._software(t, self._recv_cost(n))
            return t
        if transport == "daemon":
            for _leg in range(2):
                t = self._software(t, self._send_cost(n))
                t = self._software(t, self._ipc_cost(n))
                t = self._daemon_hop(t, n)
                t = self._software(t, self._ipc_cost(n))
                t = self._software(t, self._recv_cost(n))
            return t
        raise EvaluationError("no analytic sendrecv model for %r transport" % transport)

    def broadcast(self, sizes: Sequence[int]) -> np.ndarray:
        """Completion time of a root-0 broadcast (``measure_broadcast``)."""
        n = _size_array(sizes)
        zeros = np.zeros(n.shape, dtype=np.float64)
        size = self.processors
        algorithm = self.profile.broadcast_algorithm
        if algorithm == "binomial":
            ends = self._binomial_broadcast_ends(n, {0: zeros})
            return self._fold_max(ends)
        if algorithm == "sequential":
            t = zeros
            ends = []
            for _dst in range(1, size):
                t = self._software(t, self._send_cost(n))
                t, delivered = self._express_send(t, n)
                done = self._software(delivered, self.profile.handshake_seconds)
                ends.append(self._software(done, self._recv_cost(n)))
            ends.append(t)
            return self._fold_max(ends)
        if algorithm == "daemon-sequential":
            t = self._software(zeros, self._send_cost(n))
            t = self._software(t, self._ipc_cost(n))
            ends = [t]
            for _dst in range(1, size):
                t = self._daemon_hop(t, n)
                t = self._software(t, self._ipc_cost(n))
                ends.append(self._software(t, self._recv_cost(n)))
            return self._fold_max(ends)
        raise EvaluationError("no analytic broadcast model for %r" % algorithm)

    def global_sum(self, sizes: Sequence[int]) -> Optional[np.ndarray]:
        """Completion time of a global vector sum (``measure_global_sum``).

        ``None`` when the tool has no reduction (PVM's Table 1 entry) —
        the same "Not Available" marker the kernel produces.
        """
        if not self.profile.supports_reduce:
            return None
        vector_ints = _size_array(sizes)
        n = 4 * vector_ints  # np.ones(V, int32).nbytes
        zeros = np.zeros(n.shape, dtype=np.float64)
        size = self.processors
        # _combine's Work(int_ops=V) runs unscaled on the live node.
        combine_seconds = vector_ints.astype(np.float64) / (self._mips * 1e6)
        if self.profile.reduce_algorithm == "binomial":
            # Reduce phase, ranks descending so every receive's delivery
            # time is already known.
            deliveries: Dict[Tuple[int, int], np.ndarray] = {}
            enter: Dict[int, np.ndarray] = {}
            for rank in range(size - 1, -1, -1):
                t = zeros
                mask = 1
                while mask < size:
                    if rank & mask:
                        t = self._software(t, self._send_cost(n))
                        t = self._tcp_transfer(t, n)
                        deliveries[(rank - mask, rank)] = t
                        break
                    partner = rank | mask
                    if partner < size:
                        arrival = deliveries[(rank, partner)]
                        t = self._software(np.maximum(t, arrival), self._recv_cost(n))
                        t = self._cpu(t, combine_seconds)
                    mask <<= 1
                enter[rank] = t
            ends = self._binomial_broadcast_ends(n, {0: enter[0]}, enter=enter)
            return self._fold_max(ends)
        # Linear reduce (Express): admitted for size <= 2 only, where the
        # lone sender keeps wire and root CPU uncontended.
        if size == 1:
            return zeros
        t = self._software(zeros, self._send_cost(n))
        t, delivered = self._express_send(t, n)
        root = self._software(delivered, self.profile.handshake_seconds)
        root = self._software(root, self._recv_cost(n))
        root = self._cpu(root, combine_seconds)
        root = self._software(root, self._send_cost(n))
        root_end, delivered = self._express_send(root, n)
        leaf_end = self._software(delivered, self.profile.handshake_seconds)
        leaf_end = self._software(leaf_end, self._recv_cost(n))
        return np.maximum(root_end, leaf_end)

    def _binomial_broadcast_ends(
        self,
        n: np.ndarray,
        ready: Dict[int, np.ndarray],
        enter: Optional[Dict[int, np.ndarray]] = None,
    ) -> List[np.ndarray]:
        """Per-rank completion times of a root-0 binomial broadcast.

        ``ready[0]`` is the root's start; ``enter`` (for the reduce's
        broadcast phase) is when each rank posts its receive — a message
        arriving earlier waits in the mailbox, so the recv software
        starts at ``max(delivery, enter[rank])``.
        """
        size = self.processors
        ends = []
        for rank in range(size):
            t = ready[rank]
            for child in _binomial_children(rank, size):
                t = self._software(t, self._send_cost(n))
                t = self._tcp_transfer(t, n)
                arrival = t if enter is None else np.maximum(t, enter[child])
                ready[child] = self._software(arrival, self._recv_cost(n))
            ends.append(t)
        return ends

    @staticmethod
    def _fold_max(ends: List[np.ndarray]) -> np.ndarray:
        result = ends[0]
        for t in ends[1:]:
            result = np.maximum(result, t)
        return result

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def curve(self, kind: str, sizes: Sequence[int]) -> List[Optional[float]]:
        """Evaluate one timing curve; a list aligned with ``sizes``.

        Values are Python floats carrying the exact float64 bits the
        event kernel would produce (or ``None`` for "Not Available").
        """
        sizes = list(sizes)
        if not sizes:
            return []
        if kind == "sendrecv":
            values = self.sendrecv(sizes)
        elif kind == "broadcast":
            values = self.broadcast(sizes)
        elif kind == "global_sum":
            values = self.global_sum(sizes)
            if values is None:
                return [None] * len(sizes)
        else:
            raise EvaluationError("no analytic model for job kind %r" % kind)
        return [float(value) for value in values]


_MODEL_CACHE: Dict[Tuple[str, str, int], AnalyticModel] = {}
_MODEL_LOCK = threading.Lock()


def get_model(platform: str, tool: str, processors: int) -> AnalyticModel:
    """The (memoized) model for one platform/tool/processors binding."""
    key = (platform, tool, int(processors))
    with _MODEL_LOCK:
        model = _MODEL_CACHE.get(key)
        if model is None:
            model = AnalyticModel(platform, tool, int(processors))
            _MODEL_CACHE[key] = model
        return model


def evaluate_curve(
    platform: str, tool: str, kind: str, processors: int, sizes: Sequence[int]
) -> List[Optional[float]]:
    """Vectorized samples for ``sizes`` on one configuration curve."""
    return get_model(platform, tool, processors).curve(kind, sizes)
