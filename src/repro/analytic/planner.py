"""Eligibility rules: which jobs the analytic engine may answer.

A job is analytic-eligible only when its event-kernel run is provably
uncontended and deterministic, so the closed-form timeline in
:mod:`repro.analytic.models` is *exact*, not approximate:

* ``noise`` must be 0 — any positive amplitude attaches the medium's
  seeded stochastic model, and stochastic draws have no closed form;
* the kind must have a model (``sendrecv``, ``broadcast``,
  ``global_sum``); ``ring`` is contended by construction (every rank
  transmits at once) and ``application`` runs arbitrary programs;
* the traffic pattern must be uncontended on the job's medium.  On
  switched fabrics (ATM, the Allnode crossbar) concurrent binomial-tree
  transfers always use disjoint port pairs, so any processor count is
  admitted.  On shared media (Ethernet's segment, FDDI's token) two
  concurrent transfers *do* contend, so tree collectives are admitted
  only up to 2 ranks, where no two transfers ever overlap.  Express and
  PVM collectives serialize every transfer through one process chain
  (root loop / daemon walk), so they are uncontended at any size.

Anything ineligible — including malformed jobs whose real error the
event kernel should surface — routes to the event kernel.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.jobs import MeasurementJob
from repro.errors import ConfigurationError
from repro.hardware.catalog import build_platform

__all__ = ["is_eligible", "why_ineligible", "partition", "size_param"]

#: Media whose fabric gives every host a dedicated port pair.
_SWITCHED_KINDS = frozenset({"atm-lan", "atm-wan", "allnode"})

#: Media where any two concurrent transfers contend.
_SHARED_KINDS = frozenset({"ethernet", "fddi"})

#: The single size-axis parameter each modeled kind sweeps.
_SIZE_PARAMS = {"sendrecv": "nbytes", "broadcast": "nbytes", "global_sum": "vector_ints"}

#: Tools with closed-form timeline models.
_MODELED_TOOLS = frozenset({"express", "p4", "pvm", "mpi"})

#: Sizes above this fall back: the per-frame float accumulation that
#: bit-identity requires would cost as much as the kernel's own loop.
_MAX_SIZE = 1 << 24

_platform_cache: Dict[Tuple[str, int], Optional[str]] = {}
_platform_lock = threading.Lock()


def _network_kind(platform: str, processors: int) -> Optional[str]:
    """The platform's medium kind, or None if it cannot be built."""
    key = (platform, processors)
    with _platform_lock:
        if key in _platform_cache:
            return _platform_cache[key]
    try:
        kind = build_platform(platform, processors=processors, seed=0).network.kind
    except ConfigurationError:
        kind = None
    with _platform_lock:
        _platform_cache[key] = kind
    return kind


def size_param(kind: str) -> Optional[str]:
    """The size-axis parameter name for a modeled kind, else None."""
    return _SIZE_PARAMS.get(kind)


def why_ineligible(job: MeasurementJob) -> Optional[str]:
    """Why ``job`` must run on the event kernel; None when eligible."""
    if job.noise:
        return "noise=%g attaches the medium's stochastic model" % job.noise
    param = _SIZE_PARAMS.get(job.kind)
    if param is None:
        if job.kind == "ring":
            return "ring traffic is contended by construction (every rank transmits at once)"
        return "no closed-form model for %r jobs" % job.kind
    if job.tool not in _MODELED_TOOLS:
        return "no closed-form model for tool %r" % job.tool
    params = job.params_dict()
    if set(params) != {param}:
        return "unexpected parameters %r for %r" % (sorted(params), job.kind)
    size = params[param]
    if isinstance(size, bool) or not isinstance(size, int):
        return "%s=%r is not an integer size" % (param, size)
    if size < 0:
        return "%s=%d must surface the kernel's negative-size error" % (param, size)
    if size > _MAX_SIZE:
        return "%s=%d exceeds the analytic size ceiling (%d)" % (param, size, _MAX_SIZE)
    kind = _network_kind(job.platform, job.processors)
    if kind is None:
        return "platform %r with %d processors does not build" % (job.platform, job.processors)
    if job.kind == "sendrecv":
        if job.processors < 2:
            return "sendrecv launches 2 ranks; %d processors must raise" % job.processors
        return None
    if job.kind == "broadcast":
        if job.tool in ("express", "pvm"):
            return None  # one sequential process chain at any size
        return _binomial_rule(job, kind)
    # global_sum
    if job.tool == "pvm":
        return None  # no reduction primitive: "Not Available" at any size
    if job.tool == "express":
        if job.processors <= 2:
            return None  # a lone sender keeps wire and root CPU idle
        return "linear reduce aims %d senders at the root concurrently" % (job.processors - 1)
    # Binomial reduce: only a full (power-of-two) tree serializes each
    # parent's in-port — at other sizes boundary ranks skip receive
    # waves and send early, colliding with a sibling's transfer.
    if job.processors & (job.processors - 1):
        return "binomial reduce with %d ranks sends two siblings at once" % job.processors
    return _binomial_rule(job, kind)


def _binomial_rule(job: MeasurementJob, kind: str) -> Optional[str]:
    if kind in _SWITCHED_KINDS:
        return None  # binomial waves use disjoint port pairs
    if job.processors <= 2:
        return None  # at most one transfer at a time
    return "binomial %s on shared %s contends beyond 2 ranks" % (job.kind, kind)


def is_eligible(job: MeasurementJob) -> bool:
    """Whether the analytic engine reproduces ``job`` bit-identically."""
    return why_ineligible(job) is None


def partition(jobs: Iterable[MeasurementJob]) -> Tuple[List[MeasurementJob], List[MeasurementJob]]:
    """Split a job stream into (analytic, event) lists, order preserved."""
    analytic: List[MeasurementJob] = []
    event: List[MeasurementJob] = []
    for job in jobs:
        (analytic if is_eligible(job) else event).append(job)
    return analytic, event
