"""The pull side: claim tickets, execute, publish, heartbeat.

A :class:`Worker` is what ``repro worker`` runs — one claim loop over
a :class:`~repro.distributed.queue.JobQueue` plus a background
heartbeat thread keeping its leases (and liveness beacon) fresh.
:class:`WorkerPool` runs N workers as in-process threads over one
shared :class:`~repro.core.cache.ResultCache`, which is how the
conformance suite, the reclaim tests and the benchmark stand up a
fleet without subprocess overhead (and how the DiskBackend locks earn
their keep).

Execution goes through :func:`repro.core.executors.execute_job_instrumented`
*via the module*, so the same retry semantics — and the same test
monkeypatches — apply to remote workers as to every local backend.
The shared cache is consulted before simulating: a ticket reclaimed
from a worker that died after its result landed re-runs as a cache
hit, which is what makes at-least-once delivery cost at most one
duplicate simulation per actual mid-simulation death.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Callable, List, Optional

from repro.core import executors as _executors
from repro.core.cache import MISSING, ResultCache
from repro.distributed.queue import Claim, JobQueue
from repro.errors import EvaluationError

__all__ = ["Worker", "WorkerPool"]


class Worker(object):
    """One claim-execute-publish loop over a shared queue.

    Parameters
    ----------
    queue:
        The :class:`JobQueue` to pull from.
    cache:
        The shared (typically disk-backed, sharded) result cache every
        sample is read from and written through.
    worker_id:
        Stable identity for leases/beacons; default is host+pid+nonce.
    poll_interval:
        Sleep between claim attempts when the queue is empty.
    heartbeat_interval:
        Lease-refresh period; defaults to a quarter of the queue's
        lease timeout so a healthy worker can miss several beats
        before anyone may steal its claim.
    max_jobs:
        Stop after this many processed tickets (None = run forever).
    idle_seconds:
        Stop after the queue stayed empty this long (None = wait for
        :meth:`stop`) — how batch deployments drain and exit.
    on_job:
        Optional callable ``(claim, outcome_dict)`` fired after every
        published outcome (progress lines, test hooks).
    """

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.05,
        heartbeat_interval: Optional[float] = None,
        max_jobs: Optional[int] = None,
        idle_seconds: Optional[float] = None,
        on_job: Optional[Callable[[Claim, dict], None]] = None,
    ) -> None:
        if poll_interval <= 0.0:
            raise EvaluationError("poll_interval must be > 0")
        self.queue = queue
        self.cache = cache
        self.worker_id = worker_id or "%s-%d-%s" % (
            os.uname().nodename if hasattr(os, "uname") else "host",
            os.getpid(),
            uuid.uuid4().hex[:6],
        )
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else queue.lease_timeout / 4.0
        )
        self.max_jobs = max_jobs
        self.idle_seconds = idle_seconds
        self.on_job = on_job
        #: Tickets processed / simulations actually run / served from
        #: the shared cache / failures transported — the counters the
        #: reclaim tests and the CI smoke assert on.
        self.processed = 0
        self.simulated = 0
        self.cache_hits = 0
        self.failed = 0
        self._stop = threading.Event()
        self._current_claim: Optional[Claim] = None  # guarded-by: _claim_lock
        self._claim_lock = threading.Lock()

    # -- heartbeat -----------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._claim_lock:
                claim = self._current_claim
            if claim is not None:
                self.queue.heartbeat(claim)
            self.queue.heartbeat_worker(self.worker_id, self.stats())

    # -- execution -----------------------------------------------------

    def _process(self, claim: Claim) -> dict:
        start = time.perf_counter()
        outcome = {
            "ticket": claim.ticket,
            "worker": self.worker_id,
            "value": None,
            "wall_seconds": 0.0,
            "attempts": 1,
            "cache_hit": False,
            "error": None,
        }
        value = self.cache.lookup(claim.job)
        if value is not MISSING:
            # A reclaimed ticket whose first worker died *after* the
            # sample landed — or overlapping sweeps sharing a job —
            # costs a lookup, not a simulation.
            self.cache_hits += 1
            outcome["value"] = value
            outcome["cache_hit"] = True
        else:
            try:
                result = _executors.execute_job_instrumented(
                    claim.job, claim.retries
                )
            except Exception as error:
                # Transport the failure instead of dying: the
                # coordinator re-raises it in the submitting process,
                # where the standard retry/propagation contract
                # applies.  The worker itself stays up for the next
                # ticket.
                self.failed += 1
                outcome["error"] = {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            else:
                self.simulated += 1
                self.cache.store(claim.job, result.value)
                outcome["value"] = result.value
                outcome["attempts"] = result.attempts
        outcome["wall_seconds"] = max(time.perf_counter() - start, 1e-9)
        return outcome

    def run_one(self) -> bool:
        """Claim and process one ticket; False when none is available."""
        claim = self.queue.claim(self.worker_id)
        if claim is None:
            return False
        with self._claim_lock:
            self._current_claim = claim
        try:
            outcome = self._process(claim)
            self.queue.complete(claim, outcome)
        finally:
            with self._claim_lock:
                self._current_claim = None
        self.processed += 1
        if self.on_job is not None:
            self.on_job(claim, outcome)
        return True

    def run(self) -> dict:
        """The worker main loop; returns :meth:`stats` on exit."""
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name="repro-worker-heartbeat-%s" % self.worker_id,
            daemon=True,
        )
        heartbeat.start()
        self.queue.heartbeat_worker(self.worker_id, self.stats())
        idle_since: Optional[float] = None
        try:
            while not self._stop.is_set():
                if self.max_jobs is not None and self.processed >= self.max_jobs:
                    break
                if self.run_one():
                    idle_since = None
                    continue
                # Empty queue: give dead peers' leases back to the
                # pool, tidy abandoned outcomes, then idle briefly.
                self.queue.reclaim_stale()
                self.queue.sweep_outcomes()
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    self.idle_seconds is not None
                    and now - idle_since >= self.idle_seconds
                ):
                    break
                self._stop.wait(self.poll_interval)
        finally:
            self._stop.set()
            heartbeat.join()
            self.queue.heartbeat_worker(self.worker_id, self.stats())
        return self.stats()

    def stop(self) -> None:
        """Ask the loop to exit after the ticket in flight (if any)."""
        self._stop.set()

    def stats(self) -> dict:
        return {
            "processed": self.processed,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "failed": self.failed,
        }


class WorkerPool(object):
    """N workers as in-process threads over one shared cache.

    The thread-based stand-in for a real multi-process fleet: same
    queue protocol, same claim races, same shared-cache traffic —
    minus subprocess startup, which is why the conformance suite uses
    it.  Use as a context manager; :meth:`stop` drains cooperatively.
    """

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        workers: int = 2,
        poll_interval: float = 0.01,
        **worker_kwargs,
    ) -> None:
        if workers < 1:
            raise EvaluationError("workers must be >= 1")
        self.workers: List[Worker] = [
            Worker(
                queue,
                cache,
                worker_id="pool-%02d-%s" % (index, uuid.uuid4().hex[:6]),
                poll_interval=poll_interval,
                **worker_kwargs,
            )
            for index in range(workers)
        ]
        self._threads: List[threading.Thread] = []

    def start(self) -> "WorkerPool":
        self._threads = [
            threading.Thread(
                target=worker.run,
                name="repro-%s" % worker.worker_id,
                daemon=True,
            )
            for worker in self.workers
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        for worker in self.workers:
            worker.stop()
        for thread in self._threads:
            thread.join()
        self._threads = []

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    @property
    def simulated(self) -> int:
        return sum(worker.simulated for worker in self.workers)

    @property
    def cache_hits(self) -> int:
        return sum(worker.cache_hits for worker in self.workers)

    @property
    def processed(self) -> int:
        return sum(worker.processed for worker in self.workers)
