"""The on-disk job queue both sides of the fan-out share.

Everything is a file under one queue directory, so the only transport
workers and coordinator need is a shared filesystem (NFS on a real
cluster, a tmp dir in tests)::

    queue/
      jobs/      <ticket>.json   work nobody has claimed yet
      claims/    <ticket>.json   leased work; mtime is the heartbeat
      outcomes/  <ticket>.json   finished work the coordinator takes
      workers/   <id>.json       worker liveness/stats beacons

Every state transition is a single atomic filesystem operation, which
is the whole concurrency story:

* **enqueue** writes ``jobs/<ticket>.json`` via temp file +
  ``os.replace`` — a worker never sees a torn ticket.
* **claim** is ``os.replace(jobs/T, claims/T)``.  Rename is atomic on
  POSIX, so exactly one of N racing workers wins; the losers get
  ``FileNotFoundError`` and move on.  The claim file *is* the lease,
  and its mtime is refreshed by the worker's heartbeat.
* **complete** atomically publishes ``outcomes/<ticket>.json`` and
  releases the lease.
* **reclaim** moves a claim whose heartbeat went stale back to
  ``jobs/`` — again one atomic rename, so concurrent reclaimers (any
  worker or the coordinator may sweep) cannot duplicate a ticket.

Reclaim gives at-least-once execution: a worker that dies *after*
simulating but *before* completing gets its ticket re-run.  That is
safe by construction — jobs are deterministic and results land in the
content-addressed cache via atomic same-key writes — and the re-run
is usually a cache hit, which the kill-a-worker tests pin.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, NamedTuple, Optional

from repro.core.jobs import MeasurementJob
from repro.errors import EvaluationError

__all__ = ["Claim", "JobQueue"]

_JOBS = "jobs"
_CLAIMS = "claims"
_OUTCOMES = "outcomes"
_WORKERS = "workers"


def _write_json_atomic(path: str, payload: dict) -> None:
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class Claim(NamedTuple):
    """A leased ticket: the job to run and where the lease lives."""

    ticket: str
    job: MeasurementJob
    retries: int
    path: str


class JobQueue(object):
    """Coordinator/worker API over one shared queue directory.

    ``lease_timeout`` is how long a claim may go without a heartbeat
    before any process is allowed to reclaim it; keep it several times
    the worker heartbeat interval so a briefly stalled worker does not
    lose (and then duplicate) work it is still running.
    """

    #: Outcome files nobody took within this many lease timeouts are
    #: litter (their coordinator cancelled or died) and get swept.
    OUTCOME_TTL_LEASES = 10.0

    def __init__(self, root: str, lease_timeout: float = 30.0) -> None:
        if lease_timeout <= 0.0:
            raise EvaluationError("lease_timeout must be > 0")
        self.root = os.fspath(root)
        self.lease_timeout = lease_timeout
        for name in (_JOBS, _CLAIMS, _OUTCOMES, _WORKERS):
            os.makedirs(os.path.join(self.root, name), exist_ok=True)

    def _path(self, kind: str, name: str) -> str:
        return os.path.join(self.root, kind, name + ".json")

    def _tickets(self, kind: str) -> List[str]:
        try:
            names = os.listdir(os.path.join(self.root, kind))
        except OSError:
            return []
        return sorted(
            name[: -len(".json")] for name in names if name.endswith(".json")
        )

    # -- coordinator side ----------------------------------------------

    def enqueue(self, ticket: str, job: MeasurementJob, retries: int = 1) -> None:
        """Publish a ticket for any worker to claim."""
        payload = {"ticket": ticket, "job": job.to_dict(), "retries": retries}
        _write_json_atomic(self._path(_JOBS, ticket), payload)

    def revoke(self, ticket: str) -> bool:
        """Withdraw an *unclaimed* ticket (lease revocation: the
        cancellation primitive).  Returns False when a worker already
        claimed it — that job finishes and persists, matching the
        cooperative-cancel semantics everywhere else in the repo."""
        try:
            os.unlink(self._path(_JOBS, ticket))
            return True
        except OSError:
            return False

    def take_outcome(self, ticket: str) -> Optional[dict]:
        """Consume the ticket's outcome file, or None if not done yet.

        Read-then-unlink, in that order: the unlink only happens after
        a successful parse, so a coordinator killed mid-take leaves
        the outcome for its successor instead of losing it.
        """
        path = self._path(_OUTCOMES, ticket)
        outcome = _read_json(path)
        if outcome is None:
            return None
        try:
            os.unlink(path)
        except OSError:
            pass
        return outcome

    def discard_outcome(self, ticket: str) -> None:
        try:
            os.unlink(self._path(_OUTCOMES, ticket))
        except OSError:
            pass

    # -- worker side ---------------------------------------------------

    def claim(self, worker_id: str) -> Optional[Claim]:
        """Lease the oldest available ticket, or None if the queue is
        drained.  Exactly one of N racing claimants wins any ticket
        (atomic rename); everyone else silently moves to the next."""
        for ticket in self._tickets(_JOBS):
            claim_path = self._path(_CLAIMS, ticket)
            try:
                os.replace(self._path(_JOBS, ticket), claim_path)
            except OSError:
                continue  # lost the race (or a revocation) — next ticket
            payload = _read_json(claim_path)
            if payload is None or "job" not in payload:
                # A torn ticket cannot happen via enqueue (atomic
                # write); treat foreign litter as poison and drop it.
                try:
                    os.unlink(claim_path)
                except OSError:
                    pass
                continue
            try:
                job = MeasurementJob.from_dict(payload["job"])
            except Exception:
                try:
                    os.unlink(claim_path)
                except OSError:
                    pass
                continue
            return Claim(
                ticket=ticket,
                job=job,
                retries=int(payload.get("retries", 1)),
                path=claim_path,
            )
        return None

    def heartbeat(self, claim: Claim) -> None:
        """Refresh the lease (claim-file mtime) so reclaimers know the
        worker holding it is still alive."""
        try:
            os.utime(claim.path)
        except OSError:
            pass  # completed or reclaimed from under us; harmless

    def complete(self, claim: Claim, outcome: dict) -> None:
        """Publish the outcome and release the lease, in that order —
        a worker killed between the two steps leaves a stale claim
        that reclaims into a (cache-hit) re-run, never a lost result."""
        _write_json_atomic(self._path(_OUTCOMES, claim.ticket), outcome)
        try:
            os.unlink(claim.path)
        except OSError:
            pass  # reclaimed from under us; the rerun will cache-hit

    def release(self, claim: Claim) -> None:
        """Hand an unprocessed claim back (worker shutting down)."""
        try:
            os.replace(claim.path, self._path(_JOBS, claim.ticket))
        except OSError:
            pass

    def reclaim_stale(self) -> int:
        """Move claims whose heartbeat stopped back to ``jobs/``.

        Any process may sweep; the rename race resolves to one winner
        per ticket.  Returns how many tickets went back.
        """
        reclaimed = 0
        now = time.time()
        for ticket in self._tickets(_CLAIMS):
            path = self._path(_CLAIMS, ticket)
            try:
                age = now - os.path.getmtime(path)
            except OSError:
                continue  # completed meanwhile
            if age < self.lease_timeout:
                continue
            try:
                os.replace(path, self._path(_JOBS, ticket))
                reclaimed += 1
            except OSError:
                pass  # another reclaimer won, or the worker completed
        return reclaimed

    def sweep_outcomes(self) -> int:
        """Unlink outcome files old enough that no coordinator is
        coming back for them (cancelled or killed runs)."""
        swept = 0
        ttl = self.lease_timeout * self.OUTCOME_TTL_LEASES
        now = time.time()
        for ticket in self._tickets(_OUTCOMES):
            path = self._path(_OUTCOMES, ticket)
            try:
                if now - os.path.getmtime(path) >= ttl:
                    os.unlink(path)
                    swept += 1
            except OSError:
                pass
        return swept

    # -- introspection -------------------------------------------------

    def pending(self) -> List[str]:
        """Tickets nobody has claimed yet."""
        return self._tickets(_JOBS)

    def claimed(self) -> List[str]:
        """Tickets currently under lease."""
        return self._tickets(_CLAIMS)

    def heartbeat_worker(self, worker_id: str, stats: Dict[str, int]) -> None:
        """Publish a liveness/stats beacon for ``repro worker`` fleets
        (purely informational; leases do not depend on it)."""
        payload = {"worker": worker_id, "time": time.time()}
        payload.update(stats)
        _write_json_atomic(self._path(_WORKERS, worker_id), payload)

    def live_workers(self) -> List[dict]:
        """Beacons refreshed within one lease timeout."""
        alive = []
        now = time.time()
        for worker_id in self._tickets(_WORKERS):
            beacon = _read_json(self._path(_WORKERS, worker_id))
            if beacon and now - beacon.get("time", 0.0) < self.lease_timeout:
                alive.append(beacon)
        return alive
