"""Worker-pull distributed execution over a shared filesystem.

The multi-host execution story (ROADMAP item 2): a coordinator
expands an :class:`~repro.core.spec.EvaluationSpec` into
:class:`~repro.core.jobs.MeasurementJob` tickets on an on-disk
:class:`JobQueue`, any number of ``repro worker`` processes *pull*
work from it (atomic ``os.replace`` lease claims, heartbeats,
stale-lease reclaim), execute jobs, and publish samples through the
shared sharded disk cache plus per-ticket outcome files.
:class:`RemoteExecutor` adapts the coordinator side to the standard
``Executor.submit`` protocol, so schedulers, RunHandle streaming,
cancellation and the evaluation service drive remote fleets exactly
like local pools.
"""

from repro.distributed.executor import RemoteExecutor
from repro.distributed.queue import Claim, JobQueue
from repro.distributed.worker import Worker, WorkerPool

__all__ = ["JobQueue", "Claim", "Worker", "WorkerPool", "RemoteExecutor"]
