"""RemoteExecutor: the coordinator side as a standard Executor.

``submit(jobs, retries) -> Iterator[JobOutcome]`` is implemented by
enqueuing tickets onto the shared :class:`JobQueue` through a sliding
admission window and consuming outcome files strictly in enqueue
order.  Because it speaks the same one-method protocol as the local
backends, everything layered on executors — the streaming scheduler,
RunHandle events, cooperative cancellation, the evaluation service —
drives a remote fleet unchanged; the protocol-conformance suite in
``tests/core/test_executor_protocol.py`` passes as-is over in-process
workers.

Cancellation is lease revocation: abandoning the outcome iterator
(generator close, Ctrl-C, ``RunHandle.cancel``) withdraws every
unclaimed ticket in the window.  Claimed tickets finish and persist —
the same in-flight-work-completes semantics as the local backends.
A worker failure surfaces as the original exception type re-raised in
the coordinator (rebuilt from the transported type name + message),
so retry and propagation contracts hold across the process boundary.
"""

from __future__ import annotations

import builtins
import time
import uuid
from collections import deque
from typing import Iterable, Iterator, Optional

from repro.core.executors import Executor, JobOutcome
from repro.core.jobs import MeasurementJob
from repro.distributed.queue import JobQueue
from repro import errors as _errors
from repro.errors import EvaluationError

__all__ = ["RemoteExecutor"]

_NO_MORE_JOBS = object()


def _rebuild_error(info: dict) -> BaseException:
    """The worker's failure as a local exception of the same type.

    Types resolve from builtins first, then :mod:`repro.errors`;
    anything unresolvable degrades to :class:`EvaluationError` with
    the type name preserved in the message.
    """
    name = str(info.get("type") or "Exception")
    message = str(info.get("message") or "")
    exc_type = getattr(builtins, name, None)
    if exc_type is None:
        exc_type = getattr(_errors, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, BaseException):
        try:
            return exc_type(message)
        except Exception:  # exotic constructor signature
            pass
    return EvaluationError("remote worker failed with %s: %s" % (name, message))


class RemoteExecutor(Executor):
    """Execute jobs by publishing them to a worker-pull queue.

    Parameters
    ----------
    queue_dir:
        The shared queue directory ``repro worker`` processes watch.
        May be omitted at construction (capability introspection,
        worker-count validation) but is required by :meth:`submit`.
    max_workers:
        The fleet size this coordinator *assumes* when sizing its
        admission window — enough tickets stay published to keep that
        many workers busy without materializing a huge lazy grid.
        The actual fleet may be larger or smaller; this knob only
        shapes pipelining and backpressure.
    poll_interval:
        Sleep between outcome-directory polls.
    timeout:
        Max seconds to wait for any single outcome (None = forever).
        Guards against a queue nobody is serving.
    lease_timeout:
        Passed to :class:`JobQueue`; also drives the coordinator-side
        stale-lease sweep that runs while it waits, so a dead worker's
        tickets return to the pool even if no healthy worker is idle
        enough to notice.
    """

    name = "remote"
    supports_streaming = True

    #: Tickets kept published beyond one per assumed worker — bounds
    #: how far a lazy job iterable is consumed ahead of consumption.
    window_factor = 2

    def __init__(
        self,
        queue_dir: Optional[str] = None,
        max_workers: int = 2,
        poll_interval: float = 0.01,
        timeout: Optional[float] = None,
        lease_timeout: float = 30.0,
    ) -> None:
        if max_workers < 1:
            raise EvaluationError("max_workers must be >= 1")
        if poll_interval <= 0.0:
            raise EvaluationError("poll_interval must be > 0")
        self.max_workers = max_workers
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.queue: Optional[JobQueue] = (
            JobQueue(queue_dir, lease_timeout=lease_timeout)
            if queue_dir is not None
            else None
        )

    def submit(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        if retries < 1:
            raise EvaluationError("retries must be >= 1")
        if self.queue is None:
            raise EvaluationError(
                "RemoteExecutor needs a queue_dir to submit jobs "
                "(point it at the directory your `repro worker` "
                "processes watch)"
            )
        return self._stream(iter(jobs), retries)

    def _stream(self, jobs: Iterator[MeasurementJob], retries: int) -> Iterator[JobOutcome]:
        queue = self.queue
        assert queue is not None
        # Tickets sort FIFO within a batch; the batch nonce keeps
        # concurrent coordinators sharing one queue out of each
        # other's namespaces.
        batch = uuid.uuid4().hex[:8]
        window = self.max_workers * self.window_factor
        pending: deque = deque()  # tickets enqueued, outcome not yet yielded
        sequence = 0
        try:
            while True:
                while len(pending) < window:
                    job = next(jobs, _NO_MORE_JOBS)
                    if job is _NO_MORE_JOBS:
                        break
                    ticket = "%s-%06d" % (batch, sequence)
                    sequence += 1
                    queue.enqueue(ticket, job, retries)
                    pending.append(ticket)
                if not pending:
                    return
                # Outcomes leave strictly in enqueue order even when a
                # later ticket finishes first — its file just waits.
                outcome = self._await_outcome(queue, pending[0])
                pending.popleft()
                error = outcome.get("error")
                if error:
                    raise _rebuild_error(error)
                yield JobOutcome(
                    outcome.get("value"),
                    float(outcome.get("wall_seconds") or 0.0),
                    int(outcome.get("attempts") or 1),
                )
        finally:
            # Consumer done or walked away (cancel, Ctrl-C, exception):
            # revoke every unclaimed ticket and sweep any outcomes that
            # already landed.  Claimed tickets finish on their workers
            # and persist to the shared cache — cooperative-cancel
            # semantics, remote edition.
            for ticket in pending:
                queue.revoke(ticket)
                queue.discard_outcome(ticket)

    def _await_outcome(self, queue: JobQueue, ticket: str) -> dict:
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        sweep_at = time.monotonic() + queue.lease_timeout
        while True:
            outcome = queue.take_outcome(ticket)
            if outcome is not None:
                return outcome
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise EvaluationError(
                    "no worker completed ticket %s within %.1fs (queue %s; "
                    "%d worker beacon(s) live) — are `repro worker` "
                    "processes running against this queue?"
                    % (
                        ticket,
                        self.timeout,
                        queue.root,
                        len(queue.live_workers()),
                    )
                )
            if now >= sweep_at:
                # The coordinator doubles as a reclaimer so a dead
                # worker's tickets recirculate even when every healthy
                # worker is busy (or gone).
                queue.reclaim_stale()
                sweep_at = now + queue.lease_timeout
            time.sleep(self.poll_interval)
