"""Cost profiles for the three message-passing tool runtimes.

A profile is the *single calibration surface* of the reproduction:
every structural difference the paper attributes to a tool lives here
as an explicit constant.  All times are seconds **on the reference
machine** (SPARCstation IPX — the hosts behind the paper's Table 3);
the runtime scales them to the actual node's speed.

Structural summary (see DESIGN.md section 2):

* **p4** — processes hold direct TCP connections; minimal per-message
  and per-byte software cost; windowed kernel transport; binomial-tree
  broadcast and reduction (``p4_global_op``).
* **PVM** (3.x default route) — messages pass through the per-host
  ``pvmd`` daemons (extra IPC hop and store-and-forward copy each
  side), payloads are XDR-encoded, daemon-to-daemon UDP fragments use
  a stop-and-wait acknowledgement, ``pvm_mcast`` pushes the message
  sequentially through the sender's daemon, and *no global reduction
  exists at all* (Table 1: "Not Available").
* **Express** — a handshaked fragment protocol (small internal packets
  acknowledged stop-and-wait) plus extra buffer copies; broadcast is a
  sequential loop of the same protocol.  The handshake stalls are dead
  time on an idle wire — hence the worst Table 3 columns — but hide
  under contention, which is why Express overtakes PVM on the ring
  benchmark (Figure 3).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["ToolProfile", "P4_PROFILE", "PVM_PROFILE", "EXPRESS_PROFILE", "MPI_PROFILE"]

_TRANSPORTS = ("tcp", "daemon", "stop-and-wait")
_BCAST_ALGORITHMS = ("binomial", "sequential", "daemon-sequential")
_REDUCE_ALGORITHMS = ("binomial", "linear", None)


class ToolProfile(object):
    """Calibration constants and structural switches for one tool."""

    def __init__(
        self,
        name: str,
        display_name: str,
        transport: str,
        send_fixed: float,
        recv_fixed: float,
        pack_per_byte: float,
        unpack_per_byte: float,
        broadcast_algorithm: str,
        reduce_algorithm: str = None,
        tcp_window_bytes: int = 8192,
        ack_turnaround: float = 0.4e-3,
        fragment_bytes: int = 1024,
        handshake_seconds: float = 0.0,
        daemon_ipc_fixed: float = 0.0,
        daemon_ipc_per_byte: float = 0.0,
        daemon_copy_per_byte: float = 0.0,
        daemon_fragment_bytes: int = 4096,
        daemon_ack_stall: float = 0.0,
        daemon_retransmit_stall: float = 0.0,
        daemon_congestion_threshold: int = 2,
    ) -> None:
        if transport not in _TRANSPORTS:
            raise ConfigurationError("unknown transport %r" % (transport,))
        if broadcast_algorithm not in _BCAST_ALGORITHMS:
            raise ConfigurationError("unknown broadcast algorithm %r" % (broadcast_algorithm,))
        if reduce_algorithm not in _REDUCE_ALGORITHMS:
            raise ConfigurationError("unknown reduce algorithm %r" % (reduce_algorithm,))
        if min(send_fixed, recv_fixed, pack_per_byte, unpack_per_byte) < 0:
            raise ConfigurationError("profile costs must be non-negative")
        if tcp_window_bytes <= 0 or fragment_bytes <= 0 or daemon_fragment_bytes <= 0:
            raise ConfigurationError("window and fragment sizes must be positive")

        self.name = name
        self.display_name = display_name
        self.transport = transport
        self.send_fixed = send_fixed
        self.recv_fixed = recv_fixed
        self.pack_per_byte = pack_per_byte
        self.unpack_per_byte = unpack_per_byte
        self.broadcast_algorithm = broadcast_algorithm
        self.reduce_algorithm = reduce_algorithm
        self.tcp_window_bytes = tcp_window_bytes
        self.ack_turnaround = ack_turnaround
        self.fragment_bytes = fragment_bytes
        self.handshake_seconds = handshake_seconds
        self.daemon_ipc_fixed = daemon_ipc_fixed
        self.daemon_ipc_per_byte = daemon_ipc_per_byte
        self.daemon_copy_per_byte = daemon_copy_per_byte
        self.daemon_fragment_bytes = daemon_fragment_bytes
        self.daemon_ack_stall = daemon_ack_stall
        self.daemon_retransmit_stall = daemon_retransmit_stall
        self.daemon_congestion_threshold = daemon_congestion_threshold

    def __repr__(self) -> str:
        return "<ToolProfile %s (%s)>" % (self.name, self.transport)

    @property
    def supports_reduce(self) -> bool:
        """Whether the tool provides any global reduction primitive."""
        return self.reduce_algorithm is not None

    def replace(self, **overrides) -> "ToolProfile":
        """A copy of this profile with some constants overridden.

        This is the hook the ablation benchmarks use (e.g. PVM with
        direct routing, Express with a larger fragment).
        """
        fields = dict(
            name=self.name,
            display_name=self.display_name,
            transport=self.transport,
            send_fixed=self.send_fixed,
            recv_fixed=self.recv_fixed,
            pack_per_byte=self.pack_per_byte,
            unpack_per_byte=self.unpack_per_byte,
            broadcast_algorithm=self.broadcast_algorithm,
            reduce_algorithm=self.reduce_algorithm,
            tcp_window_bytes=self.tcp_window_bytes,
            ack_turnaround=self.ack_turnaround,
            fragment_bytes=self.fragment_bytes,
            handshake_seconds=self.handshake_seconds,
            daemon_ipc_fixed=self.daemon_ipc_fixed,
            daemon_ipc_per_byte=self.daemon_ipc_per_byte,
            daemon_copy_per_byte=self.daemon_copy_per_byte,
            daemon_fragment_bytes=self.daemon_fragment_bytes,
            daemon_ack_stall=self.daemon_ack_stall,
            daemon_retransmit_stall=self.daemon_retransmit_stall,
            daemon_congestion_threshold=self.daemon_congestion_threshold,
        )
        unknown = set(overrides) - set(fields)
        if unknown:
            raise ConfigurationError("unknown profile fields: %s" % ", ".join(sorted(unknown)))
        fields.update(overrides)
        return ToolProfile(**fields)


#: p4 (Argonne National Laboratory) — direct TCP, lean primitives.
P4_PROFILE = ToolProfile(
    name="p4",
    display_name="p4 (Argonne)",
    transport="tcp",
    send_fixed=0.20e-3,
    recv_fixed=0.15e-3,
    pack_per_byte=0.055e-6,
    unpack_per_byte=0.055e-6,
    broadcast_algorithm="binomial",
    reduce_algorithm="binomial",
    tcp_window_bytes=8192,
    ack_turnaround=0.35e-3,
)

#: PVM 3.x (Oak Ridge) — daemon default route, XDR encoding, no reduce.
PVM_PROFILE = ToolProfile(
    name="pvm",
    display_name="PVM (Oak Ridge)",
    transport="daemon",
    send_fixed=0.30e-3,
    recv_fixed=0.25e-3,
    pack_per_byte=0.060e-6,   # XDR encode
    unpack_per_byte=0.060e-6,  # XDR decode
    broadcast_algorithm="daemon-sequential",
    reduce_algorithm=None,
    daemon_ipc_fixed=1.15e-3,
    daemon_ipc_per_byte=0.030e-6,
    daemon_copy_per_byte=0.040e-6,
    daemon_fragment_bytes=4096,
    daemon_ack_stall=1.2e-3,
    # pvmd-to-pvmd traffic is UDP: under multi-sender congestion a
    # fragment is lost and sits out pvmd's coarse retransmit timer.
    daemon_retransmit_stall=5.0e-3,
    daemon_congestion_threshold=2,
)

#: Express (ParaSoft) — handshaked fragments, extra copies.
EXPRESS_PROFILE = ToolProfile(
    name="express",
    display_name="Express (ParaSoft)",
    transport="stop-and-wait",
    send_fixed=0.35e-3,
    recv_fixed=0.35e-3,
    pack_per_byte=0.16e-6,   # extra internal buffer copy
    unpack_per_byte=0.16e-6,
    broadcast_algorithm="sequential",
    reduce_algorithm="linear",
    fragment_bytes=1024,
    handshake_seconds=0.70e-3,
)

#: An MPI-like fourth tool: the paper's "future systems" direction.
#: Structurally p4-like transport with tree collectives and slightly
#: higher fixed costs (richer semantics: communicators, datatypes).
MPI_PROFILE = ToolProfile(
    name="mpi",
    display_name="MPI (MPICH-style)",
    transport="tcp",
    send_fixed=0.26e-3,
    recv_fixed=0.20e-3,
    pack_per_byte=0.060e-6,
    unpack_per_byte=0.060e-6,
    broadcast_algorithm="binomial",
    reduce_algorithm="binomial",
    tcp_window_bytes=8192,
    ack_turnaround=0.35e-3,
)
