"""Abstract tool runtime and the communicator API.

A :class:`ToolRuntime` binds a tool's cost profile to a platform: it
owns one mailbox per node and implements the tool's send path over the
platform's network.  A :class:`Communicator` is the per-rank handle an
application program uses — its interface mirrors the primitive classes
the paper benchmarks at the Tool Performance Level: point-to-point
send/receive, broadcast/multicast, ring communication, global
reduction, plus synchronization (barrier) and process management
(launch).

Application programs are generator functions ``program(comm, *args)``
that ``yield from`` communicator calls, e.g.::

    def worker(comm, n):
        if comm.rank == 0:
            yield from comm.send(1, payload=b"x" * n)
        else:
            msg = yield from comm.recv(src=0)
        return comm.rank
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, ToolError, UnsupportedOperationError
from repro.hardware.node import Node
from repro.hardware.platform import Platform
from repro.hardware.specs import REFERENCE_SPEC
from repro.sim import FilterStore, Process
from repro.tools import collectives
from repro.tools.messages import Message, sizeof
from repro.tools.profiles import ToolProfile

__all__ = ["ToolRuntime", "Communicator"]


class ToolRuntime(object):
    """A message-passing tool instantiated on a platform.

    Subclasses implement :meth:`send_path` (the tool's blocking send
    semantics) and may override :meth:`multicast_path`.
    """

    #: Subclasses set the default cost profile.
    default_profile: Optional[ToolProfile] = None

    def __init__(self, platform: Platform, profile: Optional[ToolProfile] = None) -> None:
        self.platform = platform
        self.env = platform.env
        self.network = platform.network
        self.profile = profile if profile is not None else self.default_profile
        if self.profile is None:
            raise ConfigurationError("%s has no cost profile" % type(self).__name__)
        self.reference = REFERENCE_SPEC
        self.mailboxes = [FilterStore(self.env) for _ in range(platform.node_count)]

    def __repr__(self) -> str:
        return "<%s on %s>" % (type(self).__name__, self.platform.name)

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def software(self, node: Node, seconds: float):
        """Charge reference-calibrated software time on a node (gen.)."""
        yield from node.software_cost(seconds, self.reference)

    def send_side_cost(self, nbytes: int) -> float:
        """Sender software seconds at the reference machine."""
        return (
            self.profile.send_fixed
            + self.network.host_fixed_seconds
            + (self.profile.pack_per_byte + self.network.host_per_byte_seconds) * nbytes
        )

    def recv_side_cost(self, nbytes: int) -> float:
        """Receiver software seconds at the reference machine."""
        return (
            self.profile.recv_fixed
            + self.network.host_fixed_seconds
            + (self.profile.unpack_per_byte + self.network.host_per_byte_seconds) * nbytes
        )

    # ------------------------------------------------------------------
    # Transfer paths
    # ------------------------------------------------------------------

    def send_path(self, msg: Message):
        """Move ``msg`` from its source to its destination (generator).

        Blocking semantics are tool-specific; completion of this
        generator is when the *sender* regains control, which may be
        before the message arrives (PVM) or only after (p4, Express).
        """
        raise NotImplementedError

    def multicast_path(self, msg: Message, dsts: Sequence[int]):
        """Tool-specific one-to-many path; default is sequential sends."""
        for dst in dsts:
            copy = Message(msg.src, dst, msg.tag, msg.nbytes, msg.payload, sent_at=self.env.now)
            yield from self.send_path(copy)

    def deliver(self, msg: Message) -> None:
        """Put ``msg`` into the destination mailbox (arrival instant)."""
        msg.arrived_at = self.env.now
        self.platform.tracer.record(
            self.env.now,
            "tool.deliver",
            tool=self.name,
            src=msg.src,
            dst=msg.dst,
            nbytes=msg.nbytes,
        )
        self.mailboxes[msg.dst].put(msg)

    # ------------------------------------------------------------------
    # Program launch (system management primitives)
    # ------------------------------------------------------------------

    def communicator(self, rank: int, size: Optional[int] = None) -> "Communicator":
        """The communicator for ``rank`` in a ``size``-process program."""
        if size is None:
            size = self.platform.node_count
        return Communicator(self, rank, size)

    def launch(
        self,
        program: Callable,
        nprocs: Optional[int] = None,
        args: Sequence[Any] = (),
    ) -> List[Process]:
        """Start an SPMD program on the first ``nprocs`` nodes."""
        size = nprocs if nprocs is not None else self.platform.node_count
        if not 1 <= size <= self.platform.node_count:
            raise ConfigurationError(
                "cannot launch %d processes on %d nodes" % (size, self.platform.node_count)
            )
        processes = []
        for rank in range(size):
            comm = self.communicator(rank, size)
            processes.append(self.env.process(program(comm, *args)))
        return processes

    def run_spmd(
        self,
        program: Callable,
        nprocs: Optional[int] = None,
        args: Sequence[Any] = (),
    ) -> List[Any]:
        """Launch, run to completion, and return per-rank results."""
        processes = self.launch(program, nprocs, args)
        self.env.run(until=self.env.all_of(processes))
        return [process.value for process in processes]


class Communicator(object):
    """Per-rank handle for one SPMD program."""

    def __init__(self, runtime: ToolRuntime, rank: int, size: int) -> None:
        if not 0 <= rank < size:
            raise ToolError("rank %d out of range for size %d" % (rank, size))
        if size > runtime.platform.node_count:
            raise ToolError(
                "size %d exceeds the %d-node platform" % (size, runtime.platform.node_count)
            )
        self.runtime = runtime
        self.rank = rank
        self.size = size
        self._collective_seq = 0

    def __repr__(self) -> str:
        return "<Communicator rank=%d/%d tool=%s>" % (self.rank, self.size, self.runtime.name)

    @property
    def env(self):
        return self.runtime.env

    @property
    def node(self) -> Node:
        """The node this rank runs on (rank r on node r)."""
        return self.runtime.platform.node(self.rank)

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ToolError("peer rank %d out of range for size %d" % (peer, self.size))
        if peer == self.rank:
            raise ToolError("rank %d cannot message itself" % self.rank)

    def _next_collective_tag(self, kind: str):
        # SPMD programs call collectives in the same order on every
        # rank, so a per-communicator sequence number keeps successive
        # collectives from stealing each other's messages.
        tag = ("__%s__" % kind, self._collective_seq)
        self._collective_seq += 1
        return tag

    # ------------------------------------------------------------------
    # Point-to-point (TPL: Send/Receive)
    # ------------------------------------------------------------------

    def send(self, dst: int, payload: Any = None, nbytes: Optional[int] = None, tag: Any = 0):
        """Send to ``dst`` (generator; tool-specific blocking).

        ``nbytes`` defaults to the estimated wire size of ``payload``.
        """
        self._check_peer(dst)
        if nbytes is None:
            nbytes = sizeof(payload)
        if nbytes < 0:
            raise ToolError("negative message size %d" % nbytes)
        msg = Message(self.rank, dst, tag, nbytes, payload, sent_at=self.env.now)
        yield from self.runtime.software(self.node, self.runtime.send_side_cost(nbytes))
        yield from self.runtime.send_path(msg)
        return msg

    def recv(self, src: Optional[int] = None, tag: Any = None):
        """Receive the next matching message (generator).

        ``src=None`` / ``tag=None`` match anything, mirroring the
        wildcard receives all three tools provide.
        """
        if src is not None:
            self._check_peer(src)
        mailbox = self.runtime.mailboxes[self.rank]
        msg = yield mailbox.get(lambda m: m.matches(src, tag))
        yield from self.runtime.software(self.node, self.runtime.recv_side_cost(msg.nbytes))
        return msg

    def sendrecv(
        self,
        dst: int,
        src: Optional[int] = None,
        payload: Any = None,
        nbytes: Optional[int] = None,
        tag: Any = 0,
    ):
        """Send to ``dst`` then receive from ``src`` (generator)."""
        yield from self.send(dst, payload=payload, nbytes=nbytes, tag=tag)
        msg = yield from self.recv(src=src, tag=tag)
        return msg

    # ------------------------------------------------------------------
    # Group communication (TPL: Broadcast/Multicast, Ring)
    # ------------------------------------------------------------------

    def broadcast(self, root: int, payload: Any = None, nbytes: Optional[int] = None):
        """One-to-all broadcast; returns the payload on every rank."""
        if not 0 <= root < self.size:
            raise ToolError("root %d out of range" % root)
        tag = self._next_collective_tag("bcast")
        if nbytes is None and self.rank == root:
            nbytes = sizeof(payload)
        algorithm = self.runtime.profile.broadcast_algorithm
        if algorithm == "binomial":
            result = yield from collectives.binomial_broadcast(self, root, payload, nbytes, tag)
        elif algorithm == "sequential":
            result = yield from collectives.sequential_broadcast(self, root, payload, nbytes, tag)
        elif algorithm == "daemon-sequential":
            result = yield from collectives.multicast_broadcast(self, root, payload, nbytes, tag)
        else:  # pragma: no cover - profiles validate the algorithm name
            raise ConfigurationError("unknown broadcast algorithm %r" % algorithm)
        return result

    def ring_shift(self, payload: Any = None, nbytes: Optional[int] = None, step: int = 0):
        """Send to the right neighbour, receive from the left.

        All ranks call this together — the paper's "all nodes send and
        receive" ring pattern, built on plain send/recv in all tools.
        """
        if self.size < 2:
            raise ToolError("ring needs at least 2 ranks")
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        tag = ("__ring__", step)
        yield from self.send(right, payload=payload, nbytes=nbytes, tag=tag)
        msg = yield from self.recv(src=left, tag=tag)
        return msg

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    def barrier(self):
        """Block until every rank has entered the barrier (generator)."""
        tag = self._next_collective_tag("barrier")
        yield from collectives.tree_barrier(self, tag)

    # ------------------------------------------------------------------
    # Global operations (TPL: Global Sum)
    # ------------------------------------------------------------------

    def global_sum(self, values):
        """Element-wise global vector sum, result on every rank.

        Raises
        ------
        UnsupportedOperationError
            If the tool has no global reduction (PVM — Table 1 lists
            global sum as "Not Available").
        """
        profile = self.runtime.profile
        if not profile.supports_reduce:
            raise UnsupportedOperationError(
                "%s provides no global reduction primitive" % profile.display_name
            )
        values = np.asarray(values)
        reduce_tag = self._next_collective_tag("reduce")
        if profile.reduce_algorithm == "binomial":
            total = yield from collectives.binomial_reduce(self, 0, values, reduce_tag)
        else:
            total = yield from collectives.linear_reduce(self, 0, values, reduce_tag)
        result = yield from self.broadcast(0, payload=total)
        return result
