"""The p4 runtime model (Argonne National Laboratory).

p4 processes hold direct TCP connections to each other; a send packs
the user buffer (cheaply — no encoding), pushes it through the kernel
TCP path, and the message appears at the peer with no intermediary.
This thin path is why the paper finds p4 fastest in every primitive
class: "the efficient implementation of p4 communication primitives
... add very small amount of overhead to the underlying transport
layer" (Section 3.2.4).
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.platform import Platform
from repro.net.transport import TcpTransport
from repro.tools.base import ToolRuntime
from repro.tools.messages import Message
from repro.tools.profiles import P4_PROFILE, ToolProfile

__all__ = ["P4Tool"]


class P4Tool(ToolRuntime):
    """p4 over direct, windowed TCP connections."""

    default_profile = P4_PROFILE

    def __init__(self, platform: Platform, profile: Optional[ToolProfile] = None) -> None:
        super(P4Tool, self).__init__(platform, profile)
        self.transport = TcpTransport(
            platform.network,
            window_bytes=self.profile.tcp_window_bytes,
            ack_turnaround_seconds=self.profile.ack_turnaround,
        )

    def send_path(self, msg: Message):
        """Push the packed message through the TCP connection.

        ``p4_send`` of a large message blocks while the socket drains,
        so the sender regains control only at delivery.
        """
        yield from self.transport.transfer(msg.src, msg.dst, msg.nbytes)
        self.deliver(msg)
