"""An MPI-like runtime model (extension, not in the paper's data).

The paper closes by pointing at emerging standard systems; MPI
(MPICH's 1994/95 ch_p4 device literally ran *on* p4) is the obvious
fourth tool to push through the same methodology.  We model it as a
direct-TCP tool like p4 with slightly higher fixed costs for its
richer semantics (communicators, datatypes, tag matching), and tree
collectives.  The extension benchmarks evaluate it with the identical
three-level methodology to show the framework is tool-agnostic.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.platform import Platform
from repro.net.transport import TcpTransport
from repro.tools.base import ToolRuntime
from repro.tools.messages import Message
from repro.tools.profiles import MPI_PROFILE, ToolProfile

__all__ = ["MpiTool"]


class MpiTool(ToolRuntime):
    """MPI (MPICH-style) over direct, windowed TCP connections."""

    default_profile = MPI_PROFILE

    def __init__(self, platform: Platform, profile: Optional[ToolProfile] = None) -> None:
        super(MpiTool, self).__init__(platform, profile)
        self.transport = TcpTransport(
            platform.network,
            window_bytes=self.profile.tcp_window_bytes,
            ack_turnaround_seconds=self.profile.ack_turnaround,
        )

    def send_path(self, msg: Message):
        """Push the message through the TCP connection (blocking)."""
        yield from self.transport.transfer(msg.src, msg.dst, msg.nbytes)
        self.deliver(msg)
