"""The PVM 3.x runtime model (Oak Ridge National Laboratory).

PVM's *default route* relays every message through the per-host
``pvmd`` daemons:

1. the sender XDR-encodes into a pack buffer (``pvm_pkint``) and hands
   it to the local daemon over local IPC — ``pvm_send`` then returns;
2. the source daemon forwards to the destination daemon in UDP
   fragments with a stop-and-wait acknowledgement, copying each
   fragment through its buffers (CPU time on the *host*, which is what
   makes daemons a contention point when a node sends and receives at
   once — the ring benchmark's PVM penalty);
3. the destination daemon hands the message to the receiving process
   over local IPC.

``pvm_mcast`` packs once and lets the source daemon walk the
destination list sequentially.  PVM 3.3 (1994/95, as evaluated) has
**no global reduction**: Table 1 lists global sum as "Not Available",
which :class:`~repro.tools.base.Communicator` surfaces as
:class:`~repro.errors.UnsupportedOperationError`.
"""

from __future__ import annotations

from typing import Sequence

from repro.tools.base import ToolRuntime
from repro.tools.messages import Message
from repro.tools.profiles import PVM_PROFILE

__all__ = ["PvmTool"]


class PvmTool(ToolRuntime):
    """PVM with daemon-routed messages."""

    default_profile = PVM_PROFILE

    def send_path(self, msg: Message):
        """Hand the message to the local daemon; forwarding is async."""
        profile = self.profile
        src_node = self.platform.node(msg.src)
        ipc_cost = profile.daemon_ipc_fixed + profile.daemon_ipc_per_byte * msg.nbytes
        yield from self.software(src_node, ipc_cost)
        # pvm_send has returned; the daemons carry on without the caller.
        self.env.process(self._daemon_forward(msg))

    def multicast_path(self, msg: Message, dsts: Sequence[int]):
        """pvm_mcast: one IPC hand-off, then the daemon walks ``dsts``."""
        profile = self.profile
        src_node = self.platform.node(msg.src)
        ipc_cost = profile.daemon_ipc_fixed + profile.daemon_ipc_per_byte * msg.nbytes
        yield from self.software(src_node, ipc_cost)
        self.env.process(self._daemon_multicast(msg, list(dsts)))

    def _daemon_forward(self, msg: Message):
        """Source daemon -> wire -> destination daemon -> process."""
        yield from self._daemon_hop(msg.src, msg.dst, msg.nbytes)
        profile = self.profile
        dst_node = self.platform.node(msg.dst)
        ipc_cost = profile.daemon_ipc_fixed + profile.daemon_ipc_per_byte * msg.nbytes
        yield from self.software(dst_node, ipc_cost)
        self.deliver(msg)

    def _daemon_multicast(self, msg: Message, dsts: Sequence[int]):
        """The source daemon forwards to each destination in turn."""
        profile = self.profile
        for dst in dsts:
            copy = Message(msg.src, dst, msg.tag, msg.nbytes, msg.payload, sent_at=msg.sent_at)
            yield from self._daemon_hop(msg.src, dst, msg.nbytes)
            dst_node = self.platform.node(dst)
            ipc_cost = profile.daemon_ipc_fixed + profile.daemon_ipc_per_byte * msg.nbytes
            yield from self.software(dst_node, ipc_cost)
            self.deliver(copy)

    def _fragments(self, nbytes: int):
        """Fragment sizes for one daemon hop (always at least one)."""
        remaining = max(int(nbytes), 0)
        sizes = []
        first = True
        while first or remaining > 0:
            first = False
            fragment = min(remaining, self.profile.daemon_fragment_bytes)
            sizes.append(fragment)
            remaining -= fragment
        return sizes

    def _daemon_hop(self, src: int, dst: int, nbytes: int):
        """One daemon-to-daemon transfer: a three-stage pipeline.

        The source daemon copies fragment k+1 while the wire carries
        fragment k and the destination daemon drains fragment k-1 —
        real store-and-forward.  On a slow wire (Ethernet) the copies
        hide completely; on a fast wire (ATM) the daemon stages emerge
        as the bottleneck, which is exactly the network-dependent PVM
        penalty visible in Table 3.
        """
        from repro.sim import Store

        profile = self.profile
        src_node = self.platform.node(src)
        dst_node = self.platform.node(dst)
        fragments = self._fragments(nbytes)
        to_wire = Store(self.env)
        to_drain = Store(self.env)

        def copy_in_stage():
            for fragment in fragments:
                yield from self.software(src_node, profile.daemon_copy_per_byte * fragment)
                to_wire.put(fragment)

        def wire_stage():
            for index in range(len(fragments)):
                fragment = yield to_wire.get()
                congested = (
                    profile.daemon_retransmit_stall > 0
                    and self.network.contention(src) >= profile.daemon_congestion_threshold
                )
                yield from self.network.transfer(src, dst, fragment)
                if congested:
                    # UDP fragment lost to multi-sender congestion:
                    # pvmd re-sends it after its retransmit timer.
                    yield self.env.timeout(profile.daemon_retransmit_stall)
                    yield from self.network.transfer(src, dst, fragment)
                if index < len(fragments) - 1:
                    # Stop-and-wait: the daemon acknowledgement must
                    # return before the next fragment leaves.
                    yield self.env.timeout(profile.daemon_ack_stall)
                to_drain.put(fragment)

        def copy_out_stage():
            for _ in range(len(fragments)):
                fragment = yield to_drain.get()
                yield from self.software(dst_node, profile.daemon_copy_per_byte * fragment)

        stages = [
            self.env.process(copy_in_stage()),
            self.env.process(wire_stage()),
            self.env.process(copy_out_stage()),
        ]
        yield self.env.all_of(stages)
