"""The Express runtime model (ParaSoft Corporation).

Express moves data through its own handshaked fragment protocol: the
message is cut into small internal packets, and after each packet the
sender stalls until the receiver's acknowledgement returns.  Combined
with an extra internal buffer copy on each side, this gives Express
the worst send/receive and broadcast columns in the paper.  The same
structure is *good* under bidirectional load: while one fragment
stream stalls in a handshake, the reverse stream uses the wire — which
is how Express overtakes PVM on the ring benchmark ("Express is better
suited for continuous flow of incoming and outgoing data", Section
3.2.3).
"""

from __future__ import annotations

from repro.tools.base import ToolRuntime
from repro.tools.messages import Message
from repro.tools.profiles import EXPRESS_PROFILE

__all__ = ["ExpressTool"]

#: Wire size of an Express fragment acknowledgement.
_ACK_BYTES = 32


class ExpressTool(ToolRuntime):
    """Express with a stop-and-wait fragment protocol."""

    default_profile = EXPRESS_PROFILE

    def send_path(self, msg: Message):
        """Stream fragments stop-and-wait; blocks until the final ack."""
        profile = self.profile
        dst_node = self.platform.node(msg.dst)
        remaining = max(int(msg.nbytes), 0)
        first = True
        while first or remaining > 0:
            first = False
            fragment = min(remaining, profile.fragment_bytes)
            yield from self.network.transfer(msg.src, msg.dst, fragment)
            remaining -= fragment
            if remaining == 0:
                # Last data fragment: the receiver has the message.
                self.deliver(msg)
            # Receiver-side turnaround (its CPU produces the ack), then
            # the ack crosses back over the wire.
            yield from self.software(dst_node, profile.handshake_seconds)
            yield from self.network.transfer(msg.dst, msg.src, _ACK_BYTES)
