"""Tool registry and the paper's Table 1 primitive-name map."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import ConfigurationError
from repro.hardware.platform import Platform
from repro.tools.base import ToolRuntime
from repro.tools.express import ExpressTool
from repro.tools.mpi import MpiTool
from repro.tools.p4 import P4Tool
from repro.tools.profiles import ToolProfile
from repro.tools.pvm import PvmTool

__all__ = ["TOOL_CLASSES", "TOOL_NAMES", "PAPER_TOOL_NAMES", "PRIMITIVE_NAMES", "create_tool"]

TOOL_CLASSES: Dict[str, Type[ToolRuntime]] = {
    "express": ExpressTool,
    "p4": P4Tool,
    "pvm": PvmTool,
    "mpi": MpiTool,
}

#: Every tool this package can instantiate.
TOOL_NAMES = tuple(sorted(TOOL_CLASSES))

#: The three tools the paper evaluates (Table 1 order).
PAPER_TOOL_NAMES = ("express", "p4", "pvm")

#: Table 1 — the primitive each tool exposes per primitive class.
#: ``None`` marks "Not Available".
PRIMITIVE_NAMES = {
    "send/receive": {
        "express": ("exsend", "exreceive"),
        "p4": ("p4_send", "p4_recv"),
        "pvm": ("pvm_send", "pvm_recv"),
    },
    "broadcast/multicast": {
        "express": ("exbroadcast",),
        "p4": ("p4_broadcast",),
        "pvm": ("pvm_mcast",),
    },
    "ring": {
        "express": ("exsend", "exreceive"),
        "p4": ("p4_send", "p4_recv"),
        "pvm": ("pvm_send", "pvm_recv"),
    },
    "global sum": {
        "express": ("excombine",),
        "p4": ("p4_global_op",),
        "pvm": None,
    },
}


def create_tool(
    name: str,
    platform: Platform,
    profile: Optional[ToolProfile] = None,
) -> ToolRuntime:
    """Instantiate a tool runtime by name on ``platform``.

    ``profile`` overrides the tool's default cost profile (used by the
    ablation benchmarks).
    """
    try:
        tool_class = TOOL_CLASSES[name]
    except KeyError:
        raise ConfigurationError(
            "unknown tool %r; available: %s" % (name, ", ".join(TOOL_NAMES))
        )
    return tool_class(platform, profile)
