"""Tool registry and the paper's Table 1 primitive-name map."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import ConfigurationError
from repro.hardware.platform import Platform
from repro.tools.base import ToolRuntime
from repro.tools.express import ExpressTool
from repro.tools.mpi import MpiTool
from repro.tools.p4 import P4Tool
from repro.tools.profiles import ToolProfile
from repro.tools.pvm import PvmTool

__all__ = [
    "TOOL_CLASSES",
    "TOOL_NAMES",
    "PAPER_TOOL_NAMES",
    "PRIMITIVE_NAMES",
    "available_tools",
    "create_tool",
    "register_tool",
]

TOOL_CLASSES: Dict[str, Type[ToolRuntime]] = {
    "express": ExpressTool,
    "p4": P4Tool,
    "pvm": PvmTool,
    "mpi": MpiTool,
}

#: Every tool this package can instantiate.
TOOL_NAMES = tuple(sorted(TOOL_CLASSES))

#: The three tools the paper evaluates (Table 1 order).
PAPER_TOOL_NAMES = ("express", "p4", "pvm")

#: Table 1 — the primitive each tool exposes per primitive class.
#: ``None`` marks "Not Available".
PRIMITIVE_NAMES = {
    "send/receive": {
        "express": ("exsend", "exreceive"),
        "p4": ("p4_send", "p4_recv"),
        "pvm": ("pvm_send", "pvm_recv"),
    },
    "broadcast/multicast": {
        "express": ("exbroadcast",),
        "p4": ("p4_broadcast",),
        "pvm": ("pvm_mcast",),
    },
    "ring": {
        "express": ("exsend", "exreceive"),
        "p4": ("p4_send", "p4_recv"),
        "pvm": ("pvm_send", "pvm_recv"),
    },
    "global sum": {
        "express": ("excombine",),
        "p4": ("p4_global_op",),
        "pvm": None,
    },
}


def available_tools() -> tuple:
    """Tool names in the *live* registry (:data:`TOOL_NAMES` is the
    import-time snapshot; this reflects run-time registrations)."""
    return tuple(sorted(TOOL_CLASSES))


def register_tool(name: str, tool_class: Type[ToolRuntime]) -> None:
    """Register a runtime class so specs and the evaluator accept it.

    Custom tools (the paper's "evaluate any parallel/distributed
    tool") plug in here; pair this with a
    :data:`~repro.core.usability.USABILITY_MATRIX` assessment so the
    ADL level can score the newcomer.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("tool name must be a non-empty string")
    if not (isinstance(tool_class, type) and issubclass(tool_class, ToolRuntime)):
        raise ConfigurationError(
            "tool class for %r must subclass ToolRuntime" % name
        )
    TOOL_CLASSES[name] = tool_class


def create_tool(
    name: str,
    platform: Platform,
    profile: Optional[ToolProfile] = None,
) -> ToolRuntime:
    """Instantiate a tool runtime by name on ``platform``.

    ``profile`` overrides the tool's default cost profile (used by the
    ablation benchmarks).
    """
    try:
        tool_class = TOOL_CLASSES[name]
    except KeyError:
        raise ConfigurationError(
            "unknown tool %r; available: %s" % (name, ", ".join(TOOL_NAMES))
        )
    return tool_class(platform, profile)
