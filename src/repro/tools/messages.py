"""Message envelope and payload size accounting."""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

__all__ = ["Message", "sizeof"]

#: Wire size assumed for Python scalars (C int / double on the wire).
_INT_BYTES = 4
_FLOAT_BYTES = 8


def sizeof(payload: Any) -> int:
    """Estimate the wire size in bytes of a payload object.

    The simulation times transfers by byte count; applications pass
    real data, and this maps it to the bytes the 1995 tools would put
    on the wire (C arrays, not pickled Python objects).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, bool):
        return _INT_BYTES
    if isinstance(payload, int):
        return _INT_BYTES
    if isinstance(payload, float):
        return _FLOAT_BYTES
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple)):
        return sum(sizeof(item) for item in payload)
    if isinstance(payload, dict):
        return sum(sizeof(key) + sizeof(value) for key, value in payload.items())
    raise TypeError("cannot estimate wire size of %r" % type(payload).__name__)


class Message(object):
    """A delivered (or in-flight) message between two ranks."""

    __slots__ = ("src", "dst", "tag", "nbytes", "payload", "sent_at", "arrived_at")

    def __init__(
        self,
        src: int,
        dst: int,
        tag: Any,
        nbytes: int,
        payload: Any = None,
        sent_at: Optional[float] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = int(nbytes)
        self.payload = payload
        self.sent_at = sent_at
        self.arrived_at: Optional[float] = None

    def __repr__(self) -> str:
        return "<Message %d->%d tag=%r nbytes=%d>" % (self.src, self.dst, self.tag, self.nbytes)

    def matches(self, src: Optional[int], tag: Any) -> bool:
        """Does this message satisfy a selective receive?

        ``src=None`` matches any sender; ``tag=None`` matches any tag.
        """
        if src is not None and self.src != src:
            return False
        if tag is not None and self.tag != tag:
            return False
        return True
