"""Collective communication algorithms.

These are the algorithms the 1995 tools actually used, expressed over
the point-to-point layer so their costs are emergent:

* binomial tree (p4's ``p4_broadcast`` / ``p4_global_op``),
* sequential root loop (Express's ``exbroadcast`` over its handshaked
  channel),
* daemon multicast (PVM's ``pvm_mcast``: one hand-off to the local
  daemon, which then walks the destination list),
* tree barrier (gather-to-root + release, all tools).

The paper's observation that "the tool with better snd/rcv performance
does not necessarily imply the better performance for broadcast"
(Section 3.2.2) is exactly the difference between these algorithms.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import ToolError
from repro.hardware.node import Work

__all__ = [
    "binomial_broadcast",
    "sequential_broadcast",
    "multicast_broadcast",
    "binomial_reduce",
    "linear_reduce",
    "tree_barrier",
]


def binomial_broadcast(comm, root: int, payload: Any, nbytes: Optional[int], tag: Any):
    """Binomial-tree broadcast (generator); returns the payload.

    Rank ``r`` (relative to root) receives from ``r - lowbit(r)`` and
    forwards to ``r + m`` for each ``m`` below its low bit.
    """
    size, rank = comm.size, comm.rank
    relative = (rank - root) % size

    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            msg = yield from comm.recv(src=parent, tag=tag)
            payload, nbytes = msg.payload, msg.nbytes
            break
        mask <<= 1

    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            child = (relative + mask + root) % size
            yield from comm.send(child, payload=payload, nbytes=nbytes, tag=tag)
        mask >>= 1
    return payload


def sequential_broadcast(comm, root: int, payload: Any, nbytes: Optional[int], tag: Any):
    """Root sends to every other rank in turn (generator)."""
    if comm.rank == root:
        for dst in range(comm.size):
            if dst != root:
                yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=tag)
        return payload
    msg = yield from comm.recv(src=root, tag=tag)
    return msg.payload


def multicast_broadcast(comm, root: int, payload: Any, nbytes: Optional[int], tag: Any):
    """Broadcast through the tool's one-to-many path (generator).

    The root pays the send-side cost once and hands the message to the
    runtime's :meth:`multicast_path` (for PVM: the local daemon walks
    the destination list); receivers post plain receives.
    """
    runtime = comm.runtime
    if comm.rank == root:
        from repro.tools.messages import Message, sizeof  # local import: avoid cycle

        if nbytes is None:
            nbytes = sizeof(payload)
        dsts = [dst for dst in range(comm.size) if dst != root]
        msg = Message(comm.rank, root, tag, nbytes, payload, sent_at=comm.env.now)
        yield from runtime.software(comm.node, runtime.send_side_cost(nbytes))
        yield from runtime.multicast_path(msg, dsts)
        return payload
    msg = yield from comm.recv(src=root, tag=tag)
    return msg.payload


def _combine(local: np.ndarray, incoming: np.ndarray, comm):
    """Element-wise sum plus the CPU cost of performing it (generator)."""
    local = np.asarray(local)
    incoming = np.asarray(incoming)
    if local.shape != incoming.shape:
        raise ToolError(
            "reduction shape mismatch: %r vs %r" % (local.shape, incoming.shape)
        )
    result = local + incoming
    yield from comm.node.execute(Work(int_ops=float(result.size)))
    return result


def binomial_reduce(comm, root: int, values: np.ndarray, tag: Any):
    """Binomial-tree reduction to ``root`` (generator).

    Returns the reduced vector on root, ``None`` elsewhere.
    """
    size, rank = comm.size, comm.rank
    relative = (rank - root) % size
    local = np.asarray(values)

    mask = 1
    while mask < size:
        if relative & mask:
            parent = (relative - mask + root) % size
            yield from comm.send(parent, payload=local, tag=tag)
            return None
        partner = relative | mask
        if partner < size:
            msg = yield from comm.recv(src=(partner + root) % size, tag=tag)
            local = yield from _combine(local, msg.payload, comm)
        mask <<= 1
    return local


def linear_reduce(comm, root: int, values: np.ndarray, tag: Any):
    """Root gathers from every rank in turn and combines (generator)."""
    local = np.asarray(values)
    if comm.rank != root:
        yield from comm.send(root, payload=local, tag=tag)
        return None
    for src in range(comm.size):
        if src == root:
            continue
        msg = yield from comm.recv(src=src, tag=tag)
        local = yield from _combine(local, msg.payload, comm)
    return local


def tree_barrier(comm, tag: Any):
    """Gather-to-rank-0 then release broadcast, both binomial (gen.)."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    gather_tag = (tag, "gather")
    release_tag = (tag, "release")

    # Gather phase: binomial fan-in of empty messages to rank 0.
    mask = 1
    while mask < size:
        if rank & mask:
            yield from comm.send(rank - mask, nbytes=0, tag=gather_tag)
            break
        partner = rank | mask
        if partner < size:
            yield from comm.recv(src=partner, tag=gather_tag)
        mask <<= 1

    # Release phase: binomial fan-out of empty messages from rank 0.
    yield from binomial_broadcast(comm, 0, None, 0, release_tag)
