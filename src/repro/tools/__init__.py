"""Message-passing tool runtime models (Express, p4, PVM, +MPI).

Each runtime implements the same :class:`Communicator` API over a
platform, with the tool's documented transport structure and a
calibrated cost profile.  See DESIGN.md section 2 for the structural
differences and ``repro.tools.profiles`` for the constants.
"""

from repro.tools import collectives  # noqa: F401  (re-exported module)
from repro.tools.base import Communicator, ToolRuntime
from repro.tools.express import ExpressTool
from repro.tools.messages import Message, sizeof
from repro.tools.mpi import MpiTool
from repro.tools.p4 import P4Tool
from repro.tools.profiles import (
    EXPRESS_PROFILE,
    MPI_PROFILE,
    P4_PROFILE,
    PVM_PROFILE,
    ToolProfile,
)
from repro.tools.pvm import PvmTool
from repro.tools.registry import (
    PAPER_TOOL_NAMES,
    PRIMITIVE_NAMES,
    TOOL_CLASSES,
    TOOL_NAMES,
    create_tool,
)

__all__ = [
    "Communicator",
    "EXPRESS_PROFILE",
    "ExpressTool",
    "MPI_PROFILE",
    "Message",
    "MpiTool",
    "P4Tool",
    "P4_PROFILE",
    "PAPER_TOOL_NAMES",
    "PRIMITIVE_NAMES",
    "PVM_PROFILE",
    "PvmTool",
    "TOOL_CLASSES",
    "TOOL_NAMES",
    "ToolProfile",
    "ToolRuntime",
    "collectives",
    "create_tool",
    "sizeof",
]
