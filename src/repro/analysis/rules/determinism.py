"""Determinism rules: simulation code owns no clock and no dice.

Bit-reproducibility is the repo's core contract — the golden
fixtures, the analytic engine's conditional bit-identity and the
content-addressed cache all depend on a job ``(kind, tool, platform,
params, seed, noise)`` always producing the same sample.  That only
holds if the simulation-adjacent trees (``sim``, ``net``, ``tools``,
``analytic``, ``apps``) draw every random number from a named
:class:`~repro.sim.rng.RandomStreams` stream and read time only from
``Environment.now``:

* :class:`WallClockRule` — no ``time.time()`` / ``time.monotonic()``
  / ``datetime.now()`` and friends inside the scoped trees (host
  wall-clock leaking into simulated timestamps is the classic
  irreproducibility bug).
* :class:`EntropyRule` — no ``random.*`` / ``numpy.random.*`` /
  ``os.urandom`` / ``uuid`` / ``secrets`` calls there either; seeded
  draws come from ``RandomStreams`` streams.
* :class:`StreamNameRule` — stream names handed to
  ``RandomStreams.stream(...)`` must be static strings drawn from the
  documented registry (:data:`repro.sim.rng.STREAM_NAMES`), so adding
  a consumer is a deliberate, reviewed act that cannot silently
  perturb existing streams.
* :class:`KeyOrderingRule` — cache-key construction (any function
  named like a key/hash builder, anywhere in the tree) must not
  depend on dict iteration order: ``json.dumps`` needs
  ``sort_keys=True`` and ``.items()``/``.keys()``/``.values()``
  iteration needs a ``sorted(...)`` wrapper.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = [
    "SCOPED_DIRS",
    "WallClockRule",
    "EntropyRule",
    "StreamNameRule",
    "KeyOrderingRule",
    "DETERMINISM_RULES",
]

#: Directory names whose files must be deterministic.  Matched against
#: path components, so the rules fire identically on the real
#: ``src/repro/sim/...`` tree and on test fixture trees that mirror
#: the layout.
SCOPED_DIRS = frozenset({"sim", "net", "tools", "analytic", "apps"})

#: Wall-clock and sleep entry points (dotted names after alias
#: resolution).  ``datetime.datetime.now`` covers ``datetime.now(tz)``
#: too — any host-clock read is banned, zone-aware or not.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Entropy entry points: exact dotted names and banned prefixes.
_ENTROPY_EXACT = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})
_ENTROPY_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: The RandomStreams factory methods whose first argument is a stream
#: name.
_STREAM_METHODS = frozenset({"stream", "numpy_stream", "fresh_numpy_stream"})


def in_scope(module: SourceModule) -> bool:
    """Whether the module lives in a determinism-scoped tree."""
    parts = module.path.replace("\\", "/").split("/")
    return any(part in SCOPED_DIRS for part in parts[:-1])


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """alias -> canonical dotted prefix, for every import in the file.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from time
    import monotonic as clock`` maps ``clock`` to ``time.monotonic``.
    Collected over the whole tree (function-local imports included) —
    one namespace is an over-approximation, which for a *banned-call*
    rule errs on the side of flagging.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = (
                    "%s.%s" % (node.module, name.name)
                )
    return aliases


def dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical dotted name a call target resolves to, if static."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


class WallClockRule(Rule):
    id = "determinism.wall-clock"
    description = ("simulation trees (%s) must read time from "
                   "Environment.now, never the host clock"
                   % "|".join(sorted(SCOPED_DIRS)))
    hint = ("use Environment.now for simulated time; if this is genuinely "
            "host-side instrumentation, move it out of the simulation tree "
            "or add '# repro: allow[determinism.wall-clock]' with a reason")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not in_scope(module):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _WALL_CLOCK:
                yield self.finding(
                    module, node,
                    "%s() is host wall-clock inside a deterministic tree"
                    % name,
                )


class EntropyRule(Rule):
    id = "determinism.entropy"
    description = ("simulation trees (%s) must draw randomness from named "
                   "RandomStreams streams, never ambient entropy"
                   % "|".join(sorted(SCOPED_DIRS)))
    hint = ("draw from RandomStreams.stream(name)/numpy_stream(name) with "
            "a name registered in repro.sim.rng.STREAM_NAMES")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not in_scope(module):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name is None:
                continue
            if name in _ENTROPY_EXACT or name.startswith(_ENTROPY_PREFIXES):
                yield self.finding(
                    module, node,
                    "%s() is ambient entropy inside a deterministic tree"
                    % name,
                )


def _static_prefix(node: ast.AST) -> Tuple[Optional[str], bool]:
    """``(prefix, exact)`` of a stream-name expression, if static.

    A plain string constant is exact.  ``"mc.rank%d" % rank`` and
    f-strings with a literal head yield the prefix before the first
    interpolation.  Anything else returns ``(None, False)``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.left.value, str)
    ):
        return node.left.value.split("%", 1)[0], False
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, False
    return None, False


class StreamNameRule(Rule):
    id = "determinism.stream-name"
    description = ("RandomStreams stream names must be static strings from "
                   "the documented registry in repro.sim.rng.STREAM_NAMES")
    hint = ("register the stream (name, or 'prefix*' for per-rank "
            "families) in repro.sim.rng.STREAM_NAMES with a one-line "
            "description of its consumer")

    def _registry(self) -> Tuple[Set[str], Tuple[str, ...]]:
        from repro.sim.rng import STREAM_NAMES

        exact = {name for name in STREAM_NAMES if not name.endswith("*")}
        patterns = tuple(
            name[:-1] for name in STREAM_NAMES if name.endswith("*")
        )
        return exact, patterns

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not in_scope(module):
            return
        exact, patterns = self._registry()
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _STREAM_METHODS
            ):
                continue
            name_arg: Optional[ast.AST] = None
            if node.args:
                name_arg = node.args[0]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "name":
                        name_arg = keyword.value
            if name_arg is None:
                continue
            prefix, is_exact = _static_prefix(name_arg)
            if prefix is None:
                yield self.finding(
                    module, node,
                    "stream name passed to %s() is not a static string — "
                    "reviewers cannot tell which stream this draws from"
                    % node.func.attr,
                )
                continue
            if is_exact:
                known = prefix in exact or any(
                    prefix.startswith(pattern) for pattern in patterns
                )
            else:
                known = any(prefix.startswith(pattern) for pattern in patterns)
            if not known:
                yield self.finding(
                    module, node,
                    "stream name %r is not in the STREAM_NAMES registry "
                    "(repro.sim.rng)" % (
                        prefix if is_exact else prefix + "<dynamic>"),
                )


class KeyOrderingRule(Rule):
    id = "determinism.key-ordering"
    description = ("key/hash-building functions must not depend on dict "
                   "iteration order (sort_keys=True, sorted(...) wrappers)")
    hint = ("pass sort_keys=True to json.dumps, or wrap dict iteration in "
            "sorted(...) — cache keys and content hashes must be "
            "insertion-order independent")

    _VIEW_METHODS = frozenset({"items", "keys", "values"})

    def _key_functions(self, module: SourceModule) -> Iterator[ast.AST]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                lowered = node.name.lower()
                if "key" in lowered or "hash" in lowered:
                    yield node

    def check(self, module: SourceModule) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        for function in self._key_functions(module):
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(function):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func, aliases)
                if name == "json.dumps":
                    sorts = any(
                        keyword.arg == "sort_keys"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                        for keyword in node.keywords
                    )
                    if not sorts:
                        yield self.finding(
                            module, node,
                            "json.dumps without sort_keys=True in key/hash "
                            "builder %r depends on dict insertion order"
                            % function.name,
                        )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._VIEW_METHODS
                    and not node.args and not node.keywords
                ):
                    parent = parents.get(node)
                    wrapped = (
                        isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Name)
                        and parent.func.id == "sorted"
                    )
                    if not wrapped:
                        yield self.finding(
                            module, node,
                            ".%s() iteration in key/hash builder %r is "
                            "dict-order dependent (wrap in sorted(...))"
                            % (node.func.attr, function.name),
                        )


DETERMINISM_RULES = [
    WallClockRule(),
    EntropyRule(),
    StreamNameRule(),
    KeyOrderingRule(),
]
