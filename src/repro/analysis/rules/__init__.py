"""The invariant rule packs the engine runs.

Each module contributes one pack (a list of
:class:`~repro.analysis.engine.Rule` instances):

* :mod:`repro.analysis.rules.determinism` — simulation code draws
  entropy and time only through the sanctioned seams.
* :mod:`repro.analysis.rules.locking` — ``# guarded-by:`` annotated
  fields are touched only under their lock.
* :mod:`repro.analysis.rules.schema` — serialization registries and
  round-trips stay in sync with their dataclasses.
"""
