"""Schema-drift rules: serialization stays in sync with the classes.

The cache keys, the service's SSE protocol and the golden fixtures
all ride on hand-written ``to_dict``/``from_dict`` pairs and one
event-type registry.  Each is trivially easy to forget when adding a
field or an event class — and the failure mode is silent (a field
that never round-trips, an event the service cannot stream).  This
pack pins them:

* :class:`EventRegistryRule` — every ``RunEvent`` subclass defined in
  a module that owns an ``EVENT_TYPES`` registry must be enrolled in
  it (and the registry must not enroll ghosts).
* :class:`DictRoundTripRule` — every field of a dataclass that
  defines both ``to_dict`` and ``from_dict`` must be mentioned by
  both (a field can opt out with a trailing ``# schema: external``
  comment when it is carried out-of-band, e.g. a telemetry record's
  ``job`` travelling as the mapping key).
* :class:`CacheKeyFieldsRule` — the keys ``MeasurementJob.to_dict``
  writes (the content-address payload of the result cache) must be
  exactly the dataclass's fields: a field missing from the dict means
  two distinct jobs share a cache entry; a ghost key means the
  address changes without the job changing.  Conditional writes (the
  documented noise-elision: ``noise`` serialized only when nonzero)
  count — presence in the serializer is what is checked, not
  unconditional presence in every payload.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = [
    "EventRegistryRule",
    "DictRoundTripRule",
    "CacheKeyFieldsRule",
    "SCHEMA_RULES",
]

#: ``# schema: external`` on a field line: the field is carried
#: out-of-band (e.g. as the mapping key its record is stored under)
#: and is exempt from the round-trip checks.
_EXTERNAL_RE = re.compile(r"#\s*schema:\s*external\b")


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(
    module: SourceModule, cls: ast.ClassDef,
) -> Tuple[List[Tuple[str, int]], Set[str]]:
    """``(declared fields with lines, externally-carried fields)``.

    Fields are the class-level annotated assignments (dataclass
    semantics); plain ``name = value`` class attributes (like the
    events' ``type`` tags) are not fields.  ``ClassVar`` annotations
    are skipped too.
    """
    fields: List[Tuple[str, int]] = []
    external: Set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)):
            continue
        annotation = ast.dump(item.annotation)
        if "ClassVar" in annotation:
            continue
        name = item.target.id
        fields.append((name, item.lineno))
        if _EXTERNAL_RE.search(module.line_comment(item.lineno)):
            external.add(name)
    return fields, external


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and item.name == name:
            return item
    return None


def _mentioned_names(function: ast.AST) -> Set[str]:
    """Every way a field can be referenced inside a serializer: string
    keys, keyword-argument names, and attribute accesses."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg:
            names.add(node.arg)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


class EventRegistryRule(Rule):
    id = "schema.event-registry"
    description = ("every RunEvent subclass must be enrolled in the "
                   "EVENT_TYPES registry its module defines (the service's "
                   "SSE protocol streams only enrolled types)")
    hint = ("add the event class to the EVENT_TYPES registry tuple — an "
            "unenrolled event cannot cross the service boundary")

    def _registry_classes(
        self, tree: ast.Module,
    ) -> Optional[Tuple[ast.AST, Set[str]]]:
        """The ``EVENT_TYPES`` assignment and the class names it
        enrolls, or None when the module has no registry."""
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "EVENT_TYPES"
                for target in node.targets
            )):
                continue
            names: Set[str] = set()
            if isinstance(node.value, ast.DictComp):
                for comp in node.value.generators:
                    if isinstance(comp.iter, (ast.Tuple, ast.List)):
                        names.update(
                            elt.id for elt in comp.iter.elts
                            if isinstance(elt, ast.Name)
                        )
            elif isinstance(node.value, ast.Dict):
                names.update(
                    value.id for value in node.value.values
                    if isinstance(value, ast.Name)
                )
            return node, names
        return None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        registry = self._registry_classes(module.tree)
        if registry is None:
            return
        node, enrolled = registry
        event_classes: Dict[str, ast.ClassDef] = {}
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef) and any(
                isinstance(base, ast.Name) and base.id == "RunEvent"
                for base in cls.bases
            ):
                event_classes[cls.name] = cls
        for name in sorted(set(event_classes) - enrolled):
            yield self.finding(
                module, event_classes[name],
                "event class %s subclasses RunEvent but is not enrolled "
                "in EVENT_TYPES" % name,
            )
        for name in sorted(enrolled - set(event_classes)):
            yield self.finding(
                module, node,
                "EVENT_TYPES enrolls %r which is not a RunEvent subclass "
                "in this module" % name,
                hint="remove the ghost entry (or define the event class)",
            )


class DictRoundTripRule(Rule):
    id = "schema.dict-round-trip"
    description = ("every field of a dataclass with to_dict/from_dict must "
                   "be handled by both (fields carried out-of-band opt out "
                   "with '# schema: external')")
    hint = ("serialize the field in to_dict and rebuild it in from_dict — "
            "a field handled by one side only silently fails to round-trip")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not (isinstance(cls, ast.ClassDef) and _is_dataclass(cls)):
                continue
            to_dict = _method(cls, "to_dict")
            from_dict = _method(cls, "from_dict")
            if to_dict is None or from_dict is None:
                continue
            fields, external = _dataclass_fields(module, cls)
            sides = (("to_dict", _mentioned_names(to_dict)),
                     ("from_dict", _mentioned_names(from_dict)))
            for name, lineno in fields:
                if name in external:
                    continue
                for side, mentioned in sides:
                    if name not in mentioned:
                        yield self.finding(
                            module, lineno,
                            "%s.%s is never handled by %s()"
                            % (cls.name, name, side),
                        )


class CacheKeyFieldsRule(Rule):
    id = "schema.cache-key-fields"
    description = ("MeasurementJob.to_dict (the cache-key payload) must "
                   "write exactly the dataclass's fields, modulo the "
                   "documented elision of falsy defaults")
    hint = ("the job's to_dict IS its content address: a missing field "
            "aliases distinct jobs onto one cache entry, a ghost key "
            "retires every existing entry")

    def _written_keys(self, function: ast.AST) -> Set[str]:
        """String keys the serializer writes: dict-literal keys plus
        ``data["key"] = ...`` subscript assignments."""
        keys: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Dict):
                keys.update(
                    key.value for key in node.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
        return keys

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not (isinstance(cls, ast.ClassDef) and cls.name == "MeasurementJob"):
                continue
            to_dict = _method(cls, "to_dict")
            if to_dict is None:
                continue
            fields, external = _dataclass_fields(module, cls)
            field_names = {name for name, _ in fields} - external
            written = self._written_keys(to_dict)
            lines = dict(fields)
            for name in sorted(field_names - written):
                yield self.finding(
                    module, lines[name],
                    "MeasurementJob.%s never reaches to_dict — two jobs "
                    "differing only in %s would share a cache key"
                    % (name, name),
                )
            for name in sorted(written - field_names):
                yield self.finding(
                    module, to_dict,
                    "MeasurementJob.to_dict writes key %r which is not a "
                    "field — the cache address varies independently of "
                    "the job" % name,
                )


SCHEMA_RULES = [EventRegistryRule(), DictRoundTripRule(), CacheKeyFieldsRule()]
