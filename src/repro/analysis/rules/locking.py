"""Lock-discipline rules: guarded fields are touched under their lock.

PRs 6 and 7 each shipped a race fix found by hand (unlocked
``MemoryBackend`` dict mutations, ``DiskBackend`` memo races); this
pack makes the discipline mechanical.  A class declares which lock
guards a field with a trailing annotation comment on the line that
initializes it::

    class ResultCache:
        def __init__(self):
            self._lock = threading.RLock()
            self.hits = 0        # guarded-by: _lock
            self._keys = {}      # guarded-by: _lock

:class:`GuardedFieldRule` then reports every read or write of an
annotated field outside a ``with self._lock:`` block, in any method
of the class.  Two escapes exist, both deliberate conventions:

* Methods whose name ends in ``_locked`` are assumed to be called
  with the lock already held (the repo-wide naming convention for
  lock-internal helpers, e.g. ``JobRegistry._start_locked``).
* ``__init__`` (and ``__new__``/``__post_init__``) are exempt:
  construction happens before the object is shared.

:class:`UnknownGuardRule` keeps the annotations honest — naming a
guard attribute the class never creates is itself a finding, so a
renamed lock cannot silently disable its checks.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.engine import Finding, Rule, SourceModule

__all__ = ["GuardedFieldRule", "UnknownGuardRule", "LOCKING_RULES"]

#: ``# guarded-by: _lock`` on a field's initializing line.
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")

#: Methods exempt from the discipline: the object is not yet shared.
_CONSTRUCTION = frozenset({"__init__", "__new__", "__post_init__"})


def _self_attr(node: ast.AST) -> str:
    """``self.X`` -> ``"X"``, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _class_guards(
    module: SourceModule, cls: ast.ClassDef,
) -> Tuple[Dict[str, str], Set[str], Dict[str, int]]:
    """``(field -> guard, fields assigned in __init__, field -> line)``.

    Guard annotations are read from the raw source line of each
    ``self.X = ...`` statement in ``__init__`` (``ast`` drops
    comments, so the engine keeps the lines around).
    """
    guards: Dict[str, str] = {}
    assigned: Set[str] = set()
    lines: Dict[str, int] = {}
    for item in cls.body:
        if not (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name in _CONSTRUCTION
        ):
            continue
        for node in ast.walk(item):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                field = _self_attr(target)
                if not field:
                    continue
                assigned.add(field)
                match = _GUARDED_RE.search(module.line_comment(target.lineno))
                if match:
                    guards[field] = match.group(1)
                    lines[field] = target.lineno
    return guards, assigned, lines


def _held_by(node: ast.With, guards_values: Set[str]) -> Set[str]:
    """Guard attributes a ``with`` statement acquires."""
    held: Set[str] = set()
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr in guards_values:
            held.add(attr)
    return held


class GuardedFieldRule(Rule):
    id = "locking.guarded-field"
    description = ("fields annotated '# guarded-by: <lock>' may only be "
                   "touched inside 'with self.<lock>:' blocks (methods "
                   "named *_locked are assumed to hold it)")
    hint = ("wrap the access in 'with self.<lock>:', move it into a "
            "*_locked helper called under the lock, or suppress with "
            "'# repro: allow[locking.guarded-field]' and a reason")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guards, _, _ = _class_guards(module, cls)
            if not guards:
                continue
            guard_attrs = set(guards.values())
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _CONSTRUCTION or method.name.endswith("_locked"):
                    continue
                yield from self._check_method(
                    module, cls, method, guards, guard_attrs
                )

    def _check_method(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        method: ast.AST,
        guards: Dict[str, str],
        guard_attrs: Set[str],
    ) -> Iterator[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST, held: Set[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                held = held | _held_by(node, guard_attrs)
            else:
                field = _self_attr(node)
                if field in guards and guards[field] not in held:
                    findings.append(self.finding(
                        module, node,
                        "%s.%s touches self.%s outside 'with self.%s:' "
                        "(declared guarded-by %s)"
                        % (cls.name, method.name, field, guards[field],
                           guards[field]),
                    ))
                    return  # one finding per access expression
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for child in ast.iter_child_nodes(method):
            visit(child, set())
        # De-duplicate per line: `self.hits += 1` visits the attribute
        # as both load and store context through one source access.
        seen: Set[Tuple[int, str]] = set()
        for finding in findings:
            key = (finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                yield finding


class UnknownGuardRule(Rule):
    id = "locking.unknown-guard"
    description = ("'# guarded-by: <lock>' must name a lock attribute the "
                   "class actually creates in __init__")
    hint = ("fix the guard name in the annotation (a stale name silently "
            "disables the lock-discipline check for that field)")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guards, assigned, lines = _class_guards(module, cls)
            for field, guard in sorted(guards.items()):
                if guard not in assigned:
                    yield self.finding(
                        module, lines[field],
                        "%s.%s is declared guarded-by %r but the class "
                        "never assigns self.%s"
                        % (cls.name, field, guard, guard),
                    )


LOCKING_RULES = [GuardedFieldRule(), UnknownGuardRule()]
