"""Invariant-enforcing static analysis over the repro source tree.

The repo rests on three load-bearing invariants that used to live
only as prose in ROADMAP.md:

1. **Determinism** — all randomness in the simulation-adjacent trees
   flows through named :class:`~repro.sim.rng.RandomStreams` streams
   and all time through ``Environment.now``, never ``random.*`` /
   ``time.time()`` / ``datetime.now()``.
2. **Lock discipline** — shared mutable state is declared with a
   ``# guarded-by: _lock`` annotation and touched only inside
   ``with self._lock:`` blocks.
3. **Schema coherence** — event registries, ``to_dict``/``from_dict``
   round-trips and cache-key field lists stay in sync with the
   dataclasses the golden fixtures depend on.

This package turns those rules into executable checks (stdlib ``ast``
only): :mod:`repro.analysis.engine` is the rule framework, the
:mod:`repro.analysis.rules` packs implement the invariants, and
``repro check [PATHS]`` / ``scripts/run_checks.py`` drive them (CI's
``static-smoke`` job runs them hard-fail over ``src/``).

Violations that are *deliberate* (e.g. the :mod:`repro.sim.rng`
implementation itself constructing ``random.Random``) carry a
``# repro: allow[rule-id]`` suppression comment on the offending
line; suppressions that stop matching anything are themselves
reported, so stale exemptions cannot accumulate.
"""

from repro.analysis.engine import (
    CheckReport,
    Finding,
    Rule,
    SourceModule,
    all_rules,
    findings_to_json,
    iter_python_files,
    run_checks,
    select_rules,
)

__all__ = [
    "CheckReport",
    "Finding",
    "Rule",
    "SourceModule",
    "all_rules",
    "findings_to_json",
    "iter_python_files",
    "run_checks",
    "select_rules",
]
