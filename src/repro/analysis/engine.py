"""The rule framework: file walker, findings, suppressions.

A :class:`Rule` inspects one parsed module at a time and yields
:class:`Finding` records (file, line, message, fix hint).  The engine
owns everything around that: walking the requested paths, parsing each
file once into a shared :class:`SourceModule`, honoring
``# repro: allow[rule-id]`` suppression comments, and reporting
suppressions that no longer suppress anything (a stale exemption is
itself a finding — otherwise allow-comments would outlive the code
they excused).

Rules are pure syntax analysis over the stdlib ``ast`` — no imports
of the checked code, no execution — so the checker runs identically
on the real tree and on the known-bad fixture snippets in the tests.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError

__all__ = [
    "Finding",
    "Rule",
    "SourceModule",
    "CheckReport",
    "all_rules",
    "select_rules",
    "iter_python_files",
    "run_checks",
    "findings_to_json",
]

#: ``# repro: allow[rule-id]`` (comma-separated ids allowed) — the
#: one sanctioned way to mark a deliberate violation in place.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

#: Rule id for a suppression comment that matched no finding.
UNUSED_SUPPRESSION = "engine.unused-suppression"

#: Rule id for a file the parser rejects (reported, never raised).
SYNTAX_ERROR = "engine.syntax-error"


@dataclass(frozen=True)
class Finding:
    """One violation: where it is, which rule, and how to fix it."""

    rule: str
    path: str
    line: int
    message: str
    hint: Optional[str] = None

    def render(self) -> str:
        text = "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)
        if self.hint:
            text += "\n    hint: %s" % self.hint
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


class SourceModule(object):
    """One parsed file, shared by every rule that inspects it.

    ``path`` is the display path (as given/walked, so findings print
    paths the caller can click); ``lines`` is the raw source split
    for comment scanning (``ast`` drops comments).
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.comments = self._extract_comments(text)

    @staticmethod
    def _extract_comments(text: str) -> Dict[int, str]:
        """line -> comment text, via ``tokenize`` so a string literal
        that merely *mentions* ``# repro: allow[...]`` (e.g. a rule's
        own hint text) is never mistaken for an annotation."""
        comments: Dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(text).readline):
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass  # ast.parse accepted the file; keep what we got
        return comments

    def line_comment(self, lineno: int) -> str:
        """The comment on source line ``lineno`` (1-based), ``""``
        when there is none — annotation scans never raise."""
        return self.comments.get(lineno, "")

    def suppressions(self) -> Dict[int, Set[str]]:
        """line -> rule ids allowed on that line."""
        allowed: Dict[int, Set[str]] = {}
        for lineno, comment in self.comments.items():
            match = _ALLOW_RE.search(comment)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                allowed[lineno] = {part for part in ids if part}
        return allowed


class Rule(object):
    """One invariant: yields findings for a module that violates it.

    Subclasses set ``id`` (stable, ``pack.name`` shaped — the handle
    for ``--rule`` filters and ``allow[...]`` comments), a one-line
    ``description`` and a generic ``hint`` (per-finding hints may
    override it).
    """

    id = "rule"
    description = ""
    hint: Optional[str] = None

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node_or_line, message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(
            rule=self.id, path=module.path, line=int(line),
            message=message, hint=hint if hint is not None else self.hint,
        )


@dataclass
class CheckReport:
    """What one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings


def all_rules() -> List[Rule]:
    """Every registered rule, packs in documented order.

    Imported lazily so the engine module stays importable from the
    rule packs themselves without a cycle.
    """
    from repro.analysis.rules.determinism import DETERMINISM_RULES
    from repro.analysis.rules.locking import LOCKING_RULES
    from repro.analysis.rules.schema import SCHEMA_RULES

    return [*DETERMINISM_RULES, *LOCKING_RULES, *SCHEMA_RULES]


def select_rules(selectors: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve ``--rule`` selectors: exact ids or pack prefixes.

    ``None``/empty selects everything.  ``"determinism"`` selects the
    whole determinism pack; ``"determinism.wall-clock"`` one rule.  An
    unknown selector raises :class:`EvaluationError` naming what is
    available — a typo'd filter must never silently check nothing.
    """
    rules = all_rules()
    if not selectors:
        return rules
    selected: List[Rule] = []
    seen: Set[str] = set()
    for selector in selectors:
        matched = [
            rule for rule in rules
            if rule.id == selector or rule.id.startswith(selector + ".")
        ]
        if not matched:
            raise EvaluationError(
                "unknown rule %r; available: %s"
                % (selector, ", ".join(rule.id for rule in rules))
            )
        for rule in matched:
            if rule.id not in seen:
                seen.add(rule.id)
                selected.append(rule)
    return selected


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, sorted, each one once.

    Directories are walked recursively; ``__pycache__`` and hidden
    directories are skipped.  A path that exists but is neither a
    ``.py`` file nor a directory is ignored; a path that does not
    exist raises — a typo'd target must not report a clean run.
    """
    seen: Set[str] = set()
    collected: List[str] = []
    for path in paths:
        if not os.path.exists(path):
            raise EvaluationError("no such file or directory: %s" % path)
        if os.path.isfile(path):
            candidates = [path] if path.endswith(".py") else []
        else:
            candidates = []
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames
                    if name != "__pycache__" and not name.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        candidates.append(os.path.join(root, name))
        for candidate in candidates:
            marker = os.path.realpath(candidate)
            if marker not in seen:
                seen.add(marker)
                collected.append(candidate)
    return iter(sorted(collected))


def run_checks(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None,
) -> CheckReport:
    """Run ``rules`` (default: all) over every python file in ``paths``.

    Suppression comments are honored per (line, rule id); allow
    comments naming one of the *selected* rules that suppressed
    nothing become :data:`UNUSED_SUPPRESSION` findings.  Suppressions
    for rules outside the selection are left alone, so a ``--rule``
    bisection never misreports another pack's exemptions as stale.
    Unparseable files become :data:`SYNTAX_ERROR` findings.
    """
    if rules is None:
        rules = all_rules()
    selected_ids = {rule.id for rule in rules}
    report = CheckReport(rules_run=tuple(rule.id for rule in rules))
    for path in iter_python_files(paths):
        report.files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            module = SourceModule(path, text)
        except (OSError, SyntaxError, ValueError) as error:
            report.findings.append(Finding(
                rule=SYNTAX_ERROR, path=path,
                line=getattr(error, "lineno", None) or 1,
                message="cannot parse: %s" % error, hint=None,
            ))
            continue
        allowed = module.suppressions()
        used: Set[Tuple[int, str]] = set()
        for rule in rules:
            for finding in rule.check(module):
                ids_here = allowed.get(finding.line, set())
                if finding.rule in ids_here:
                    used.add((finding.line, finding.rule))
                else:
                    report.findings.append(finding)
        for line, ids in sorted(allowed.items()):
            for rule_id in sorted(ids & selected_ids):
                if (line, rule_id) not in used:
                    report.findings.append(Finding(
                        rule=UNUSED_SUPPRESSION, path=path, line=line,
                        message="suppression allow[%s] matches no finding"
                                % rule_id,
                        hint="delete the stale # repro: allow[...] comment "
                             "(or fix its rule id)",
                    ))
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def findings_to_json(report: CheckReport) -> str:
    """The machine-readable report CI consumes (stable schema)."""
    return json.dumps(
        {
            "version": 1,
            "files_checked": report.files_checked,
            "rules_run": list(report.rules_run),
            "clean": report.clean,
            "findings": [finding.to_dict() for finding in report.findings],
        },
        indent=2,
        sort_keys=True,
    )
