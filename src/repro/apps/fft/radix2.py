"""Radix-2 Cooley-Tukey FFT, written out rather than delegated.

The iterative in-place algorithm: bit-reversal permutation followed by
log2(n) butterfly stages.  Kept honest (it is verified against
``numpy.fft`` in the tests) because its operation count — the classic
``5 n log2 n`` real flops — is what the simulation charges nodes for.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fft1d", "ifft1d", "fft2d", "ifft2d", "fft_flops", "fft2d_flops"]


def _bit_reverse_indices(n: int) -> np.ndarray:
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    bits = n.bit_length() - 1
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def _check_power_of_two(n: int) -> None:
    if n < 1 or n & (n - 1):
        raise ValueError("length must be a power of two, got %d" % n)


def fft1d(signal: np.ndarray) -> np.ndarray:
    """Forward FFT of a 1-D complex array (power-of-two length)."""
    data = np.asarray(signal, dtype=np.complex128)
    n = data.shape[-1]
    _check_power_of_two(n)
    if n == 1:
        return data.copy()
    output = data[..., _bit_reverse_indices(n)].copy()
    half = 1
    while half < n:
        twiddle = np.exp(-2j * np.pi * np.arange(half) / (2.0 * half))
        output = output.reshape(output.shape[:-1] + (-1, 2 * half))
        even = output[..., :half]
        odd = output[..., half:] * twiddle
        output[..., :half], output[..., half:] = even + odd, even - odd
        output = output.reshape(output.shape[:-2] + (n,))
        half *= 2
    return output


def ifft1d(spectrum: np.ndarray) -> np.ndarray:
    """Inverse FFT of a 1-D complex array."""
    data = np.asarray(spectrum, dtype=np.complex128)
    n = data.shape[-1]
    return np.conj(fft1d(np.conj(data))) / n


def fft2d(image: np.ndarray) -> np.ndarray:
    """2-D FFT: 1-D FFTs over rows, then over columns."""
    data = np.asarray(image, dtype=np.complex128)
    if data.ndim != 2:
        raise ValueError("fft2d expects a 2-D array")
    after_rows = fft1d(data)
    return fft1d(after_rows.T).T


def ifft2d(spectrum: np.ndarray) -> np.ndarray:
    """Inverse 2-D FFT."""
    data = np.asarray(spectrum, dtype=np.complex128)
    rows, cols = data.shape
    return np.conj(fft2d(np.conj(data))) / (rows * cols)


def fft_flops(n: int) -> float:
    """Real flops of one length-``n`` radix-2 FFT (5 n log2 n)."""
    _check_power_of_two(n)
    return 5.0 * n * (n.bit_length() - 1)


def fft2d_flops(rows: int, cols: int) -> float:
    """Real flops of a full 2-D FFT (row pass + column pass)."""
    return rows * fft_flops(cols) + cols * fft_flops(rows)
