"""Parallel 2-D FFT with a distributed transpose.

Section 3.3: "To compute the FFT in two dimensions ... compute a one
dimensional FFT for each of the rows and each of the columns ... a
distributed 2D-FFT involves transfer of large amount of data between
processors."  The classic decomposition: each rank owns a band of
rows (generated in place, as FFT benchmarks do), runs 1-D FFTs over
its rows, all ranks exchange blocks in an all-to-all transpose, and a
second 1-D pass over the received rows completes the column
transforms.  The result stays distributed: rank ``k`` ends up holding
columns band ``k`` of the spectrum, stored as rows.  The transpose is
the communication-intensive phase that makes this a tool benchmark.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import ParallelApplication, split_evenly
from repro.apps.fft.radix2 import fft1d, fft_flops
from repro.hardware.node import Work
from repro.sim import RandomStreams

__all__ = ["FftWorkload", "ParallelFft2d"]

_TRANSPOSE_TAG = "fft.transpose"


class FftWorkload(object):
    """A complex field of ``size`` x ``size``, generated band-wise."""

    def __init__(self, size: int, rng: RandomStreams) -> None:
        self.size = int(size)
        self.rng = rng

    def row_bounds(self, processors: int) -> List[tuple]:
        chunks = split_evenly(self.size, processors)
        bounds = []
        row = 0
        for chunk in chunks:
            bounds.append((row, row + chunk))
            row += chunk
        return bounds

    def rows_for_rank(self, rank: int, processors: int) -> np.ndarray:
        """The row band rank ``rank`` generates (deterministic)."""
        top, bottom = self.row_bounds(processors)[rank]
        stream = self.rng.fresh_numpy_stream("fft.rows.rank%d" % rank)
        shape = (bottom - top, self.size)
        real = stream.normal(0.0, 1.0, size=shape)
        imag = stream.normal(0.0, 1.0, size=shape)
        return (real + 1j * imag).astype(np.complex128)

    def full_field(self, processors: int) -> np.ndarray:
        """The whole field as the ranks generated it (for checking)."""
        return np.vstack([self.rows_for_rank(r, processors) for r in range(processors)])

    def __repr__(self) -> str:
        return "<FftWorkload %dx%d>" % (self.size, self.size)


class ParallelFft2d(ParallelApplication):
    """The paper's 2D-FFT benchmark (Numerical Algorithms class)."""

    name = "fft2d"
    paper_class = "Numerical Algorithms"

    def __init__(self, size: int = 256) -> None:
        if size < 2 or size & (size - 1):
            raise ValueError("size must be a power of two >= 2")
        self.size = size

    def make_workload(self, rng: RandomStreams) -> FftWorkload:
        return FftWorkload(self.size, rng)

    def program(self, comm, workload: FftWorkload):
        n = workload.size
        bounds = workload.row_bounds(comm.size)
        local = workload.rows_for_rank(comm.rank, comm.size).copy()

        # Row-pass FFT over the local band.
        yield from comm.node.execute(Work(flops=local.shape[0] * fft_flops(n)))
        local = fft1d(local)

        if comm.size > 1:
            local = yield from self._transpose(comm, local, bounds)
        else:
            local = local.T.copy()

        # Column-pass FFT (columns now stored as local rows).
        yield from comm.node.execute(Work(flops=local.shape[0] * fft_flops(n)))
        local = fft1d(local)

        # Result stays distributed: rank k holds spectrum columns band
        # k, stored as rows.
        return {"columns_band": local, "bounds": bounds[comm.rank]}

    def _transpose(self, comm, local, bounds):
        """Exchange blocks so each rank holds its column band as rows."""
        my_cols = slice(bounds[comm.rank][0], bounds[comm.rank][1])
        blocks = {comm.rank: local[:, my_cols]}
        for step in range(1, comm.size):
            dst = (comm.rank + step) % comm.size
            dst_cols = slice(bounds[dst][0], bounds[dst][1])
            yield from comm.send(dst, payload=local[:, dst_cols].copy(), tag=_TRANSPOSE_TAG)
        for _ in range(1, comm.size):
            msg = yield from comm.recv(tag=_TRANSPOSE_TAG)
            blocks[msg.src] = msg.payload
        stacked = np.vstack([blocks[rank] for rank in range(comm.size)])
        # Local reshuffle of the block is memory-bound work.
        yield from comm.node.execute(Work(mem_bytes=float(stacked.nbytes)))
        return stacked.T.copy()

    def verify(self, workload: FftWorkload, results: List[dict]) -> None:
        processors = len(results)
        expected = np.fft.fft2(workload.full_field(processors))
        reassembled = np.empty((workload.size, workload.size), dtype=np.complex128)
        for result in results:
            top, bottom = result["bounds"]
            # Rank's rows are spectrum columns top:bottom.
            reassembled[:, top:bottom] = result["columns_band"].T
        error = np.max(np.abs(reassembled - expected)) / np.max(np.abs(expected))
        self._require(error < 1e-8, "spectrum error %.2e too large" % error)
