"""fft application package."""
