"""Extension numerical applications (Table 2 entries beyond the four
the paper's figures use)."""

from repro.apps.linalg.lu import LuDecomposition, LuWorkload
from repro.apps.linalg.matmul import MatmulWorkload, MatrixMultiply

__all__ = ["LuDecomposition", "LuWorkload", "MatmulWorkload", "MatrixMultiply"]
