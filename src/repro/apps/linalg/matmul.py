"""Distributed matrix multiplication (Table 2, Numerical Algorithms).

Row-striped ``C = A @ B``: each rank generates its band of ``A``
locally, rank 0 broadcasts ``B`` (a genuine use of the tool's
broadcast primitive at the application level), every rank multiplies
its band, and the product stays distributed.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import ParallelApplication, split_evenly
from repro.hardware.node import Work
from repro.sim import RandomStreams

__all__ = ["MatmulWorkload", "MatrixMultiply"]


class MatmulWorkload(object):
    """Operand matrices, generated deterministically per rank."""

    def __init__(self, n: int, rng: RandomStreams) -> None:
        self.n = int(n)
        self.rng = rng

    def row_bounds(self, processors: int) -> List[tuple]:
        chunks = split_evenly(self.n, processors)
        bounds, row = [], 0
        for chunk in chunks:
            bounds.append((row, row + chunk))
            row += chunk
        return bounds

    def a_band(self, rank: int, processors: int) -> np.ndarray:
        top, bottom = self.row_bounds(processors)[rank]
        stream = self.rng.fresh_numpy_stream("matmul.a.rank%d" % rank)
        return stream.normal(0.0, 1.0, size=(bottom - top, self.n))

    def b_matrix(self) -> np.ndarray:
        stream = self.rng.fresh_numpy_stream("matmul.b")
        return stream.normal(0.0, 1.0, size=(self.n, self.n))

    def full_a(self, processors: int) -> np.ndarray:
        return np.vstack([self.a_band(r, processors) for r in range(processors)])

    def __repr__(self) -> str:
        return "<MatmulWorkload n=%d>" % self.n


class MatrixMultiply(ParallelApplication):
    """Row-striped dense matrix multiplication."""

    name = "matmul"
    paper_class = "Numerical Algorithms"

    def __init__(self, n: int = 192) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n

    def make_workload(self, rng: RandomStreams) -> MatmulWorkload:
        return MatmulWorkload(self.n, rng)

    def program(self, comm, workload: MatmulWorkload):
        n = workload.n
        band = workload.a_band(comm.rank, comm.size)

        # Rank 0 broadcasts B with the tool's broadcast primitive.
        b_matrix = workload.b_matrix() if comm.rank == 0 else None
        if comm.size > 1:
            b_matrix = yield from comm.broadcast(0, payload=b_matrix)

        # Local band product: 2 * rows * n * n flops.
        yield from comm.node.execute(Work(flops=2.0 * band.shape[0] * n * n))
        product = band @ b_matrix
        return {"band": product, "bounds": workload.row_bounds(comm.size)[comm.rank]}

    def verify(self, workload: MatmulWorkload, results) -> None:
        processors = len(results)
        expected = workload.full_a(processors) @ workload.b_matrix()
        for result in results:
            top, bottom = result["bounds"]
            self._require(
                np.allclose(result["band"], expected[top:bottom], atol=1e-8),
                "band rows %d:%d wrong" % (top, bottom),
            )
