"""Distributed LU decomposition (Table 2, Numerical Algorithms).

Row-cyclic Gaussian elimination: row ``i`` lives on rank ``i % P``.
At step ``k`` the owner broadcasts the pivot row; every rank updates
its rows below ``k``.  The matrix is made diagonally dominant so the
factorization is stable without pivoting, the standard benchmark
formulation (pivot search would add a second broadcast per step, not
change the communication pattern).

This is the most latency-sensitive application in the suite: ``n``
broadcasts of shrinking rows, so fixed per-message costs — where the
tools differ most — dominate at scale.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import ParallelApplication
from repro.hardware.node import Work
from repro.sim import RandomStreams

__all__ = ["LuWorkload", "LuDecomposition"]


class LuWorkload(object):
    """A diagonally dominant system matrix."""

    def __init__(self, n: int, rng: RandomStreams) -> None:
        self.n = int(n)
        self.rng = rng

    def matrix(self) -> np.ndarray:
        stream = self.rng.fresh_numpy_stream("lu.matrix")
        a = stream.normal(0.0, 1.0, size=(self.n, self.n))
        # Diagonal dominance keeps elimination stable unpivoted.
        a[np.diag_indices(self.n)] += self.n
        return a

    def __repr__(self) -> str:
        return "<LuWorkload n=%d>" % self.n


class LuDecomposition(ParallelApplication):
    """Row-cyclic unpivoted LU factorization."""

    name = "lu"
    paper_class = "Numerical Algorithms"

    def __init__(self, n: int = 128) -> None:
        if n < 2:
            raise ValueError("n must be at least 2")
        self.n = n

    def make_workload(self, rng: RandomStreams) -> LuWorkload:
        return LuWorkload(self.n, rng)

    def program(self, comm, workload: LuWorkload):
        n = workload.n
        size = comm.size
        matrix = workload.matrix()
        # Row-cyclic ownership: this rank's working copy of its rows.
        mine = {i: matrix[i].copy() for i in range(comm.rank, n, size)}

        for k in range(n - 1):
            owner = k % size
            if comm.rank == owner:
                pivot_row = mine[k]
                if size > 1:
                    yield from comm.broadcast(owner, payload=pivot_row[k:].copy())
            else:
                tail = yield from comm.broadcast(owner, payload=None)
                pivot_row = np.zeros(n)
                pivot_row[k:] = tail

            # Update this rank's rows below k: one divide + an axpy of
            # length (n - k - 1) per row.
            updates = [i for i in mine if i > k]
            width = n - k - 1
            if updates:
                yield from comm.node.execute(
                    Work(flops=float(len(updates)) * (2.0 * width + 1.0))
                )
            pivot = pivot_row[k]
            for i in updates:
                row = mine[i]
                factor = row[k] / pivot
                row[k] = factor          # store L in place
                row[k + 1:] -= factor * pivot_row[k + 1:]

        return {"rows": mine}

    def verify(self, workload: LuWorkload, results) -> None:
        n = workload.n
        combined = np.zeros((n, n))
        for result in results:
            for index, row in result["rows"].items():
                combined[index] = row
        lower = np.tril(combined, k=-1) + np.eye(n)
        upper = np.triu(combined)
        original = workload.matrix()
        error = np.max(np.abs(lower @ upper - original)) / np.max(np.abs(original))
        self._require(error < 1e-8, "LU residual %.2e too large" % error)
