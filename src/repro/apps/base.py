"""Common infrastructure for the SU PDABS benchmark applications.

Every application provides a *real* algorithm (actual numerics on
actual data, verified against references) plus a parallel driver that
runs it over a tool's :class:`~repro.tools.base.Communicator`.  The
computation's cost is charged to the executing node through explicit
operation counts (:class:`~repro.hardware.node.Work`), so application-
level timings have the right compute/communication balance while
outputs stay checkable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ApplicationError
from repro.hardware.platform import Platform
from repro.sim import RandomStreams
from repro.tools.base import ToolRuntime

__all__ = ["AppRun", "ParallelApplication", "split_evenly"]


def split_evenly(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` contiguous chunks covering ``total`` items.

    Matches the paper's JPEG partitioning: "divided into N equal
    parts ... except for the one portion which can be slightly larger
    than the rest".
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, extra = divmod(total, parts)
    return [base + (1 if index < extra else 0) for index in range(parts)]


class AppRun(object):
    """Outcome of one parallel application execution."""

    def __init__(
        self,
        app_name: str,
        tool_name: str,
        platform_name: str,
        processors: int,
        elapsed_seconds: float,
        output: Any,
        rank_outputs: Optional[List[Any]] = None,
        stats: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.app_name = app_name
        self.tool_name = tool_name
        self.platform_name = platform_name
        self.processors = processors
        self.elapsed_seconds = elapsed_seconds
        self.output = output
        self.rank_outputs = list(rank_outputs) if rank_outputs is not None else [output]
        self.stats = dict(stats or {})

    def __repr__(self) -> str:
        return "<AppRun %s/%s on %s P=%d: %.4fs>" % (
            self.app_name,
            self.tool_name,
            self.platform_name,
            self.processors,
            self.elapsed_seconds,
        )


class ParallelApplication(object):
    """Base class for SU PDABS applications.

    Subclasses define:

    * :attr:`name` and :attr:`paper_class` (Table 2 column),
    * :meth:`make_workload` — deterministic input generation,
    * :meth:`program` — the per-rank generator (host-node or SPMD),
    * :meth:`verify` — correctness check of the parallel output.
    """

    #: Short identifier, e.g. ``"jpeg"``.
    name = "abstract"
    #: Table 2 application class.
    paper_class = "unclassified"

    def make_workload(self, rng: RandomStreams) -> Any:
        """Build the application input (deterministic given ``rng``)."""
        raise NotImplementedError

    def program(self, comm, workload: Any):
        """The per-rank generator run under a tool (SPMD entry point)."""
        raise NotImplementedError

    def verify(self, workload: Any, results: List[Any]) -> None:
        """Raise :class:`ApplicationError` if the run's output is wrong.

        ``results`` is the per-rank return list; host-node applications
        look at ``results[0]``, distributed-result applications (PSRS,
        FFT) check all ranks.
        """
        raise NotImplementedError

    def run(
        self,
        tool: ToolRuntime,
        processors: Optional[int] = None,
        workload: Any = None,
        check: bool = True,
    ) -> AppRun:
        """Execute the application under ``tool`` and time it.

        The elapsed time is the simulated makespan: from launch to the
        moment the last rank finishes (the host rank holds the final
        result).
        """
        platform = tool.platform
        if processors is None:
            processors = platform.node_count
        if workload is None:
            workload = self.make_workload(platform.rng)

        start = platform.env.now
        stats_before = (
            platform.network.stats.messages,
            platform.network.stats.payload_bytes,
            platform.network.stats.wire_bytes,
        )
        results = tool.run_spmd(self.program, nprocs=processors, args=(workload,))
        elapsed = platform.env.now - start

        if check:
            self.verify(workload, results)
        stats_after = platform.network.stats
        return AppRun(
            app_name=self.name,
            tool_name=tool.name,
            platform_name=platform.name,
            processors=processors,
            elapsed_seconds=elapsed,
            output=results[0],
            rank_outputs=results,
            stats={
                "network_messages": stats_after.messages - stats_before[0],
                "network_payload_bytes": stats_after.payload_bytes - stats_before[1],
                "network_wire_bytes": stats_after.wire_bytes - stats_before[2],
            },
        )

    def _require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ApplicationError("%s: %s" % (self.name, message))
