"""The SU PDABS suite: Table 2 and the implemented-application registry.

Table 2 of the paper lists the full Syracuse parallel/distributed
application benchmark suite by class; the paper's experiments (and
this reproduction's Figures 5-8) use one representative per class:
JPEG Compression, 2D-FFT, Monte Carlo Integration and Parallel
Sorting (PSRS).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.base import ParallelApplication
from repro.apps.fft.parallel import ParallelFft2d
from repro.apps.jpeg.parallel import JpegCompression
from repro.apps.linalg.lu import LuDecomposition
from repro.apps.linalg.matmul import MatrixMultiply
from repro.apps.montecarlo.parallel import MonteCarloIntegration
from repro.apps.sorting.parallel import PsrsSort

__all__ = [
    "SU_PDABS_TABLE",
    "BENCHMARKED_APPS",
    "EXTENSION_APPS",
    "APPLICATION_CLASSES",
    "create_application",
    "application_names",
]

#: Table 2 — the full SU PDABS catalog, by application class.
SU_PDABS_TABLE: Dict[str, List[str]] = {
    "Numerical Algorithms": [
        "Fast Fourier Transform",
        "LU Decomposition",
        "Linear Equation Solver",
        "Matrix Multiplication",
    ],
    "Signal/Image Processing": [
        "JPEG Compression",
        "Hough Transform",
        "Ray Tracing",
        "Data Compression",
        "Cryptology",
    ],
    "Simulation/Optimization": [
        "N-body Simulation",
        "Monte Carlo Integration",
        "Traveling Salesman",
        "Branch and Bound",
    ],
    "Utilities": [
        "ADA Compiler",
        "Parallel Sorting",
        "Parallel Search",
        "Distributed Spell Checker",
        "Distributed Make",
    ],
}

#: The four applications the paper benchmarks (Section 2.2: "we have
#: chosen JPEG Compression, Fast Fourier Transform (FFT), Monte Carlo
#: Integration and Parallel sorting").
_PAPER_FACTORIES = {
    "jpeg": JpegCompression,
    "fft2d": ParallelFft2d,
    "montecarlo": MonteCarloIntegration,
    "psrs": PsrsSort,
}

#: Further Table 2 entries implemented beyond the paper's figures.
_EXTENSION_FACTORIES = {
    "matmul": MatrixMultiply,
    "lu": LuDecomposition,
}

_FACTORIES = dict(_PAPER_FACTORIES, **_EXTENSION_FACTORIES)

BENCHMARKED_APPS = tuple(sorted(_PAPER_FACTORIES))
EXTENSION_APPS = tuple(sorted(_EXTENSION_FACTORIES))

#: app name -> Table 2 class.
APPLICATION_CLASSES = {
    name: factory().paper_class for name, factory in _FACTORIES.items()
}


def application_names() -> List[str]:
    """Names accepted by :func:`create_application`."""
    return list(BENCHMARKED_APPS)


def create_application(name: str, **params) -> ParallelApplication:
    """Instantiate a benchmark application by name.

    Keyword parameters configure the workload size, e.g.
    ``create_application("fft2d", size=64)``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            "unknown application %r; available: %s" % (name, ", ".join(BENCHMARKED_APPS))
        )
    return factory(**params)
