"""SU PDABS benchmark applications (real algorithms, simulated time)."""

from repro.apps.base import AppRun, ParallelApplication, split_evenly
from repro.apps.fft.parallel import FftWorkload, ParallelFft2d
from repro.apps.jpeg.parallel import JpegCompression, JpegWorkload
from repro.apps.linalg import LuDecomposition, MatrixMultiply
from repro.apps.montecarlo.parallel import MonteCarloIntegration, MonteCarloWorkload
from repro.apps.sorting.parallel import PsrsSort, SortWorkload
from repro.apps.suite import (
    APPLICATION_CLASSES,
    BENCHMARKED_APPS,
    EXTENSION_APPS,
    SU_PDABS_TABLE,
    application_names,
    create_application,
)

__all__ = [
    "APPLICATION_CLASSES",
    "AppRun",
    "BENCHMARKED_APPS",
    "EXTENSION_APPS",
    "FftWorkload",
    "JpegCompression",
    "JpegWorkload",
    "LuDecomposition",
    "MatrixMultiply",
    "MonteCarloIntegration",
    "MonteCarloWorkload",
    "ParallelApplication",
    "ParallelFft2d",
    "PsrsSort",
    "SU_PDABS_TABLE",
    "SortWorkload",
    "application_names",
    "create_application",
    "split_evenly",
]
