"""A real baseline-JPEG-style grayscale codec.

The full pipeline the paper's JPEG application exercises: level shift,
8x8 blocking, DCT, quantization (standard luminance table scaled by a
quality factor), zig-zag scan, DC differential coding and AC run-length
coding with a bit-accurate size model.  The decoder inverts every step,
so compression quality is measured end to end (PSNR).

Entropy coding uses the JPEG magnitude-category size model (4-bit
run/size tokens plus magnitude bits) rather than a full Huffman table;
the byte counts it produces are within a few percent of baseline JPEG
for typical images, which is all the communication model needs.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.apps.jpeg.dct import BLOCK, FLOPS_PER_BLOCK_DCT, forward_dct, inverse_dct
from repro.errors import ApplicationError
from repro.hardware.node import Work

__all__ = [
    "STANDARD_LUMINANCE_TABLE",
    "quantization_table",
    "zigzag_order",
    "encode_blocks",
    "decode_blocks",
    "compress_strip",
    "decompress_strip",
    "compression_work",
    "decompression_work",
    "psnr",
]

#: The standard JPEG (Annex K) luminance quantization table.
STANDARD_LUMINANCE_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quantization_table(quality: int) -> np.ndarray:
    """The luminance table scaled by an IJG-style quality factor."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100, got %r" % (quality,))
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((STANDARD_LUMINANCE_TABLE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def zigzag_order() -> List[Tuple[int, int]]:
    """The 64 (row, col) positions of the JPEG zig-zag scan."""
    order = []
    for s in range(2 * BLOCK - 1):
        diagonal = [(i, s - i) for i in range(BLOCK) if 0 <= s - i < BLOCK]
        if s % 2 == 0:
            diagonal.reverse()
        order.extend(diagonal)
    return order


_ZIGZAG = zigzag_order()


def _magnitude_bits(value: int) -> int:
    """JPEG magnitude category: bits needed for |value|."""
    return int(value).bit_length() if value else 0


def encode_blocks(strip: np.ndarray, quality: int = 75):
    """Compress one image strip (height divisible by 8).

    Returns ``(tokens, nbits)``: the token stream needed to decode and
    the bit-accurate compressed size.
    """
    height, width = strip.shape
    if height % BLOCK or width % BLOCK:
        raise ApplicationError("strip dimensions must be multiples of 8")
    table = quantization_table(quality)
    tokens = []
    nbits = 0
    previous_dc = 0
    shifted = strip.astype(np.float64) - 128.0
    for by in range(0, height, BLOCK):
        for bx in range(0, width, BLOCK):
            block = shifted[by:by + BLOCK, bx:bx + BLOCK]
            coefficients = np.round(forward_dct(block) / table).astype(np.int32)
            scan = [int(coefficients[i, j]) for i, j in _ZIGZAG]

            dc_diff = scan[0] - previous_dc
            previous_dc = scan[0]
            nbits += 4 + _magnitude_bits(dc_diff)

            ac_pairs = []
            run = 0
            for value in scan[1:]:
                if value == 0:
                    run += 1
                    continue
                while run > 15:
                    ac_pairs.append((15, 0))  # ZRL
                    nbits += 8
                    run -= 16
                ac_pairs.append((run, value))
                nbits += 8 + _magnitude_bits(value)
                run = 0
            nbits += 4  # EOB
            tokens.append((dc_diff, ac_pairs))
    return tokens, nbits


def decode_blocks(tokens, shape: Tuple[int, int], quality: int = 75) -> np.ndarray:
    """Reconstruct a strip from its token stream."""
    height, width = shape
    table = quantization_table(quality)
    strip = np.empty((height, width), dtype=np.float64)
    blocks_per_row = width // BLOCK
    previous_dc = 0
    for index, (dc_diff, ac_pairs) in enumerate(tokens):
        scan = [0] * (BLOCK * BLOCK)
        previous_dc += dc_diff
        scan[0] = previous_dc
        position = 1
        for run, value in ac_pairs:
            position += run
            if value != 0:
                scan[position] = value
                position += 1
        coefficients = np.zeros((BLOCK, BLOCK))
        for value, (i, j) in zip(scan, _ZIGZAG):
            coefficients[i, j] = value
        block = inverse_dct(coefficients * table) + 128.0
        by = (index // blocks_per_row) * BLOCK
        bx = (index % blocks_per_row) * BLOCK
        strip[by:by + BLOCK, bx:bx + BLOCK] = block
    return np.clip(strip, 0.0, 255.0)


def compress_strip(strip: np.ndarray, quality: int = 75):
    """Compress a strip; returns ``(tokens, compressed_bytes)``."""
    tokens, nbits = encode_blocks(strip, quality)
    return tokens, (nbits + 7) // 8


def decompress_strip(tokens, shape: Tuple[int, int], quality: int = 75) -> np.ndarray:
    """Inverse of :func:`compress_strip`."""
    return decode_blocks(tokens, shape, quality)


# ----------------------------------------------------------------------
# Cost model: honest operation counts for the simulated nodes
# ----------------------------------------------------------------------

#: Integer ops per pixel for level shift, zig-zag and run-length steps.
_INT_OPS_PER_PIXEL = 6
#: Flops per pixel for quantization (divide + round).
_QUANT_FLOPS_PER_PIXEL = 2


def compression_work(pixels: int) -> Work:
    """The Work one node performs compressing ``pixels`` pixels."""
    blocks = pixels / float(BLOCK * BLOCK)
    return Work(
        flops=blocks * FLOPS_PER_BLOCK_DCT + pixels * _QUANT_FLOPS_PER_PIXEL,
        int_ops=pixels * _INT_OPS_PER_PIXEL,
        mem_bytes=pixels * 2.0,
    )


def decompression_work(pixels: int) -> Work:
    """The Work one node performs decompressing ``pixels`` pixels."""
    return compression_work(pixels)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak 255)."""
    mse = float(np.mean((original.astype(np.float64) - reconstructed) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * math.log10(255.0 ** 2 / mse)
