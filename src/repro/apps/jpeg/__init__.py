"""jpeg application package."""
