"""8x8 type-II discrete cosine transform (the JPEG core).

The orthonormal DCT-II basis matrix ``C`` satisfies ``C @ C.T = I``;
forward block transform is ``C @ B @ C.T`` and the inverse is
``C.T @ B @ C``.  Implemented with explicit matrices so the operation
counts charged to the simulated nodes are honest: two 8x8 matrix
multiplies per block, 2 * 8 * 8 * (8 multiplies + 7 adds) ~ 2048 flops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BLOCK", "dct_matrix", "forward_dct", "inverse_dct", "FLOPS_PER_BLOCK_DCT"]

#: JPEG block edge length.
BLOCK = 8

#: Floating-point operations for one 8x8 forward (or inverse) DCT:
#: two matrix products of 8x8 matrices at 2*8^3 flops each.
FLOPS_PER_BLOCK_DCT = 2 * 2 * BLOCK ** 3


def dct_matrix() -> np.ndarray:
    """The orthonormal 8x8 DCT-II basis matrix."""
    n = np.arange(BLOCK)
    k = n.reshape(-1, 1)
    basis = np.cos((2 * n + 1) * k * np.pi / (2.0 * BLOCK)) * np.sqrt(2.0 / BLOCK)
    basis[0, :] /= np.sqrt(2.0)
    return basis


_DCT = dct_matrix()
_DCT_T = _DCT.T.copy()


def forward_dct(block: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of one 8x8 block (float64 in, float64 out)."""
    if block.shape != (BLOCK, BLOCK):
        raise ValueError("expected an 8x8 block, got %r" % (block.shape,))
    return _DCT @ block @ _DCT_T


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of one 8x8 coefficient block."""
    if coefficients.shape != (BLOCK, BLOCK):
        raise ValueError("expected an 8x8 block, got %r" % (coefficients.shape,))
    return _DCT_T @ coefficients @ _DCT
