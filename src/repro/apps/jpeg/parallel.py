"""Parallel JPEG compression (host-node model, as in the paper).

Three phases, exactly as Section 3.3 describes: the host distributes
horizontal image strips (keeping one for itself), every processor
compresses its strip — "It also processes its portion of the image" —
and the host collects the compressed streams.  Distribution and
collection move bulk data; computation is communication-free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.base import ParallelApplication, split_evenly
from repro.apps.jpeg.codec import (
    compress_strip,
    compression_work,
    decompress_strip,
    psnr,
)
from repro.sim import RandomStreams

__all__ = ["JpegWorkload", "JpegCompression"]

_DISTRIBUTE_TAG = "jpeg.strip"
_COLLECT_TAG = "jpeg.result"


class JpegWorkload(object):
    """A synthetic grayscale image plus codec parameters."""

    def __init__(self, image: np.ndarray, quality: int = 75) -> None:
        self.image = image
        self.quality = quality

    @property
    def shape(self):
        return self.image.shape

    def __repr__(self) -> str:
        return "<JpegWorkload %dx%d q=%d>" % (
            self.image.shape[0],
            self.image.shape[1],
            self.quality,
        )


def synthetic_image(rng: RandomStreams, height: int = 768, width: int = 768) -> np.ndarray:
    """A deterministic photographic-statistics test image."""
    from repro.workloads.images import gradient_noise_image

    return gradient_noise_image(rng.fresh_numpy_stream("jpeg.image"), height, width)


class JpegCompression(ParallelApplication):
    """The paper's JPEG Compression benchmark (Signal/Image class)."""

    name = "jpeg"
    paper_class = "Signal/Image Processing"

    def __init__(self, height: int = 768, width: int = 768, quality: int = 75) -> None:
        if height % 8 or width % 8:
            raise ValueError("image dimensions must be multiples of 8")
        self.height = height
        self.width = width
        self.quality = quality

    def make_workload(self, rng: RandomStreams) -> JpegWorkload:
        return JpegWorkload(synthetic_image(rng, self.height, self.width), self.quality)

    def _strip_bounds(self, height: int, processors: int):
        """Row ranges per rank; strip heights are multiples of 8."""
        block_rows = height // 8
        chunks = split_evenly(block_rows, processors)
        bounds = []
        row = 0
        for chunk in chunks:
            bounds.append((row * 8, (row + chunk) * 8))
            row += chunk
        return bounds

    def program(self, comm, workload: JpegWorkload):
        image = workload.image
        quality = workload.quality
        bounds = self._strip_bounds(image.shape[0], comm.size)

        if comm.rank == 0:
            # Distribution phase: strips to every node (host keeps 0).
            for rank in range(1, comm.size):
                top, bottom = bounds[rank]
                yield from comm.send(
                    rank, payload=image[top:bottom], tag=_DISTRIBUTE_TAG
                )
            # Computation phase: the host processes its own portion.
            top, bottom = bounds[0]
            strip = image[top:bottom]
            yield from comm.node.execute(compression_work(strip.size))
            tokens, nbytes = compress_strip(strip, quality)
            pieces = {0: (tokens, nbytes, (strip.shape[0], strip.shape[1]))}
            # Collection phase: compressed streams come back (any order).
            for _ in range(1, comm.size):
                msg = yield from comm.recv(tag=_COLLECT_TAG)
                pieces[msg.src] = msg.payload
            ordered = [pieces[rank] for rank in range(comm.size)]
            total_bytes = sum(piece[1] for piece in ordered)
            return {
                "pieces": ordered,
                "compressed_bytes": total_bytes,
                "original_bytes": int(image.size),
                "bounds": bounds,
                "quality": quality,
            }

        msg = yield from comm.recv(src=0, tag=_DISTRIBUTE_TAG)
        strip = msg.payload
        yield from comm.node.execute(compression_work(strip.size))
        tokens, nbytes = compress_strip(strip, quality)
        # Send tokens for verifiability; charge wire size of the
        # *compressed* stream, which is what the tools transmitted.
        yield from comm.send(
            0,
            payload=(tokens, nbytes, (strip.shape[0], strip.shape[1])),
            nbytes=nbytes,
            tag=_COLLECT_TAG,
        )
        return None

    def verify(self, workload: JpegWorkload, results) -> None:
        output = results[0]
        self._require(output is not None, "host produced no output")
        image = workload.image
        total = output["compressed_bytes"]
        ratio = image.size / float(total)
        self._require(ratio > 2.0, "compression ratio %.2f is implausibly low" % ratio)

        # Decode every strip and check end-to-end quality.
        reconstructed = np.empty_like(image, dtype=np.float64)
        for (top, bottom), (tokens, _, shape) in zip(output["bounds"], output["pieces"]):
            reconstructed[top:bottom] = decompress_strip(tokens, shape, output["quality"])
        quality_db = psnr(image, reconstructed)
        self._require(quality_db > 28.0, "PSNR %.1f dB below threshold" % quality_db)
