"""Monte Carlo definite integration (the real numerics).

Section 3.3: "generate random points between the integration interval
and calculate the function values at these points and the mean of
these function values gives the value of the definite integral."
Sampling is chunked so memory stays bounded and operation counts can
be charged incrementally.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from repro.hardware.node import Work

__all__ = [
    "INTEGRANDS",
    "sample_sum",
    "estimate",
    "sampling_work",
]


def _quarter_circle(x: np.ndarray) -> np.ndarray:
    """4*sqrt(1-x^2) on [0,1] integrates to pi."""
    return 4.0 * np.sqrt(1.0 - x * x)


def _witch_of_agnesi(x: np.ndarray) -> np.ndarray:
    """4/(1+x^2) on [0,1] integrates to pi."""
    return 4.0 / (1.0 + x * x)


def _damped_wave(x: np.ndarray) -> np.ndarray:
    """exp(-x)*sin(10x) on [0,1]; closed form below."""
    return np.exp(-x) * np.sin(10.0 * x)


_DAMPED_WAVE_EXACT = (10.0 - math.exp(-1.0) * (math.sin(10.0) + 10.0 * math.cos(10.0))) / 101.0

#: name -> (vectorized integrand, interval, exact value).
INTEGRANDS = {
    "quarter-circle": (_quarter_circle, (0.0, 1.0), math.pi),
    "witch-of-agnesi": (_witch_of_agnesi, (0.0, 1.0), math.pi),
    "damped-wave": (_damped_wave, (0.0, 1.0), _DAMPED_WAVE_EXACT),
}


def sample_sum(
    integrand: Callable[[np.ndarray], np.ndarray],
    interval: Tuple[float, float],
    samples: int,
    rng: np.random.Generator,
    chunk: int = 65536,
) -> Tuple[float, float]:
    """Sum and sum-of-squares of ``samples`` integrand evaluations."""
    low, high = interval
    total = 0.0
    total_sq = 0.0
    remaining = int(samples)
    while remaining > 0:
        batch = min(remaining, chunk)
        points = rng.uniform(low, high, size=batch)
        values = integrand(points)
        total += float(values.sum())
        total_sq += float((values * values).sum())
        remaining -= batch
    return total, total_sq


def estimate(
    total: float, total_sq: float, samples: int, interval: Tuple[float, float]
) -> Tuple[float, float]:
    """Integral estimate and standard error from pooled sums."""
    if samples <= 1:
        raise ValueError("need at least 2 samples")
    low, high = interval
    width = high - low
    mean = total / samples
    variance = max(total_sq / samples - mean * mean, 0.0)
    value = width * mean
    stderr = width * math.sqrt(variance / samples)
    return value, stderr


#: Cost per sample: one uniform draw (~LCG + scale), the integrand
#: (a few transcendental-equivalent flops) and the accumulations.
_FLOPS_PER_SAMPLE = 12
_INT_OPS_PER_SAMPLE = 8


def sampling_work(samples: int) -> Work:
    """Work one node performs drawing and evaluating ``samples``."""
    return Work(
        flops=float(samples) * _FLOPS_PER_SAMPLE,
        int_ops=float(samples) * _INT_OPS_PER_SAMPLE,
    )
