"""montecarlo application package."""
