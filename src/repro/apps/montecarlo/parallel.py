"""Parallel Monte Carlo integration.

"This application is compute intensive and communicates only short
messages" (Section 3.3) — so it benchmarks compute capacity and the
*latency* side of each tool.  Host-node structure: the host broadcasts
the sampling assignment, every rank (host included) samples its share
with an independent random stream, and partial sums return to the host
in short messages.  The gather uses plain send/recv, not a tool
reduction, because PVM has none — all three tools run the identical
algorithm, as the paper's benchmark suite requires.
"""

from __future__ import annotations

from repro.apps.base import ParallelApplication, split_evenly
from repro.apps.montecarlo.integrators import (
    INTEGRANDS,
    estimate,
    sample_sum,
    sampling_work,
)
from repro.sim import RandomStreams

__all__ = ["MonteCarloWorkload", "MonteCarloIntegration"]

_ASSIGN_TAG = "mc.assign"
_PARTIAL_TAG = "mc.partial"


class MonteCarloWorkload(object):
    """Which integral to estimate and how many samples to draw."""

    def __init__(self, integrand_name: str, samples: int, rng: RandomStreams) -> None:
        if integrand_name not in INTEGRANDS:
            raise ValueError(
                "unknown integrand %r; available: %s"
                % (integrand_name, ", ".join(sorted(INTEGRANDS)))
            )
        self.integrand_name = integrand_name
        self.samples = int(samples)
        self.rng = rng

    def __repr__(self) -> str:
        return "<MonteCarloWorkload %s n=%d>" % (self.integrand_name, self.samples)


class MonteCarloIntegration(ParallelApplication):
    """The paper's Monte Carlo Integration benchmark (Simulation class)."""

    name = "montecarlo"
    paper_class = "Simulation/Optimization"

    def __init__(self, samples: int = 1_500_000, integrand: str = "witch-of-agnesi") -> None:
        self.samples = samples
        self.integrand = integrand

    def make_workload(self, rng: RandomStreams) -> MonteCarloWorkload:
        return MonteCarloWorkload(self.integrand, self.samples, rng)

    def program(self, comm, workload: MonteCarloWorkload):
        integrand, interval, _ = INTEGRANDS[workload.integrand_name]
        shares = split_evenly(workload.samples, comm.size)

        if comm.rank == 0:
            # Assignment phase: short messages out.
            for rank in range(1, comm.size):
                yield from comm.send(
                    rank, payload=(workload.integrand_name, shares[rank]), tag=_ASSIGN_TAG
                )
            my_share = shares[0]
        else:
            msg = yield from comm.recv(src=0, tag=_ASSIGN_TAG)
            _, my_share = msg.payload

        # Compute phase: real sampling on an independent stream.
        stream = workload.rng.numpy_stream("mc.rank%d" % comm.rank)
        yield from comm.node.execute(sampling_work(my_share))
        total, total_sq = sample_sum(integrand, interval, my_share, stream)

        # Gather phase: short partial-sum messages back to the host.
        if comm.rank != 0:
            yield from comm.send(0, payload=(total, total_sq, my_share), tag=_PARTIAL_TAG)
            return None

        pooled, pooled_sq, count = total, total_sq, my_share
        for _ in range(1, comm.size):
            msg = yield from comm.recv(tag=_PARTIAL_TAG)
            part, part_sq, part_count = msg.payload
            pooled += part
            pooled_sq += part_sq
            count += part_count
        value, stderr = estimate(pooled, pooled_sq, count, interval)
        return {"value": value, "stderr": stderr, "samples": count}

    def verify(self, workload: MonteCarloWorkload, results) -> None:
        output = results[0]
        self._require(output is not None, "host produced no output")
        _, _, exact = INTEGRANDS[workload.integrand_name]
        self._require(output["samples"] == workload.samples, "sample count mismatch")
        error = abs(output["value"] - exact)
        tolerance = max(6.0 * output["stderr"], 1e-6)
        self._require(
            error < tolerance,
            "estimate %.6f misses exact %.6f by %.2e (> %.2e)"
            % (output["value"], exact, error, tolerance),
        )
