"""sorting application package."""
