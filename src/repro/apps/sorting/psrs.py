"""Parallel Sorting by Regular Sampling — algorithm pieces.

The real PSRS algorithm (Shi & Schaeffer): local sort, regular
sampling, pivot selection from the gathered sample, partitioning by
pivot, all-to-all exchange and final k-way merge.  "PSRS partitions
the data into ordered subsets of approximately equal size" (Section
3.3).  These helpers are pure functions so tests can exercise every
phase in isolation.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.hardware.node import Work

__all__ = [
    "regular_sample",
    "select_pivots",
    "partition_by_pivots",
    "merge_sorted_runs",
    "local_sort_work",
    "merge_work",
]


def regular_sample(sorted_block: np.ndarray, parts: int) -> np.ndarray:
    """``parts`` regularly spaced samples from a sorted block."""
    n = len(sorted_block)
    if n == 0:
        return sorted_block[:0]
    positions = [(i * n) // parts for i in range(parts)]
    return sorted_block[positions]


def select_pivots(all_samples: np.ndarray, parts: int) -> np.ndarray:
    """``parts - 1`` pivots from the gathered, sorted sample."""
    ordered = np.sort(all_samples)
    n = len(ordered)
    positions = [(i * n) // parts + parts // 2 for i in range(1, parts)]
    positions = [min(p, n - 1) for p in positions]
    return ordered[positions]


def partition_by_pivots(sorted_block: np.ndarray, pivots: np.ndarray) -> List[np.ndarray]:
    """Split a sorted block into ``len(pivots)+1`` ordered segments."""
    cut_points = np.searchsorted(sorted_block, pivots, side="right")
    return np.split(sorted_block, cut_points)


def merge_sorted_runs(runs: List[np.ndarray]) -> np.ndarray:
    """K-way merge of sorted runs (via concatenate + sort of runs;
    the charged cost below is that of a true linear k-way merge)."""
    if not runs:
        return np.array([], dtype=np.int64)
    merged = np.concatenate(runs)
    merged.sort(kind="mergesort")
    return merged


#: Integer ops per key comparison step: a 1995 qsort paid an indirect
#: comparison-function call, branches and element moves per step.
_OPS_PER_COMPARISON = 30


def local_sort_work(n: int) -> Work:
    """Work for a local comparison sort of ``n`` keys."""
    if n <= 1:
        return Work()
    comparisons = n * math.log2(n)
    return Work(int_ops=comparisons * _OPS_PER_COMPARISON, mem_bytes=8.0 * n)


def merge_work(n: int, ways: int) -> Work:
    """Work for a ``ways``-way merge of ``n`` total keys."""
    if n <= 1 or ways <= 1:
        return Work(int_ops=float(max(n, 0)))
    passes = math.log2(ways)
    return Work(int_ops=n * passes * _OPS_PER_COMPARISON, mem_bytes=8.0 * n)
