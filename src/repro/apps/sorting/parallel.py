"""Parallel Sorting by Regular Sampling over the tool API.

"This algorithm represents a class of applications in which the
computation and communication requirements are data dependent"
(Section 3.3): partition sizes, and therefore the all-to-all exchange
volumes, depend on the key distribution.

As in standard parallel-sorting benchmarks, keys start distributed
(each rank generates its block) and end distributed (rank ``k`` holds
the ``k``-th ordered partition): the timed phases are local sort,
sampling/pivot selection, the all-to-all exchange and the final merge.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import ParallelApplication, split_evenly
from repro.apps.sorting.psrs import (
    local_sort_work,
    merge_sorted_runs,
    merge_work,
    partition_by_pivots,
    regular_sample,
    select_pivots,
)
from repro.hardware.node import Work
from repro.sim import RandomStreams

__all__ = ["SortWorkload", "PsrsSort"]

_SAMPLE_TAG = "psrs.samples"
_PIVOT_TAG = "psrs.pivots"
_EXCHANGE_TAG = "psrs.exchange"


class SortWorkload(object):
    """Total key count plus the seeded streams each rank draws from."""

    def __init__(self, total_keys: int, rng: RandomStreams) -> None:
        self.total_keys = int(total_keys)
        self.rng = rng

    def keys_for_rank(self, rank: int, size: int) -> np.ndarray:
        """The block rank ``rank`` generates (deterministic)."""
        counts = split_evenly(self.total_keys, size)
        stream = self.rng.fresh_numpy_stream("psrs.keys.rank%d" % rank)
        return stream.integers(0, 2 ** 31 - 1, size=counts[rank], dtype=np.int64)

    def __repr__(self) -> str:
        return "<SortWorkload n=%d>" % self.total_keys


class PsrsSort(ParallelApplication):
    """The paper's Sorting by Regular Sampling benchmark (Utilities)."""

    name = "psrs"
    paper_class = "Utilities"

    def __init__(self, keys: int = 250_000) -> None:
        self.keys = keys

    def make_workload(self, rng: RandomStreams) -> SortWorkload:
        return SortWorkload(self.keys, rng)

    def program(self, comm, workload: SortWorkload):
        size = comm.size
        local = workload.keys_for_rank(comm.rank, size).copy()

        # Phase 1 — local sort.
        yield from comm.node.execute(local_sort_work(len(local)))
        local.sort(kind="mergesort")

        if size == 1:
            return {"partition": local}

        # Phase 2 — regular sampling; rank 0 selects pivots.
        samples = regular_sample(local, size)
        if comm.rank == 0:
            gathered = [samples]
            for _ in range(1, size):
                msg = yield from comm.recv(tag=_SAMPLE_TAG)
                gathered.append(msg.payload)
            all_samples = np.concatenate(gathered)
            yield from comm.node.execute(local_sort_work(len(all_samples)))
            pivots = select_pivots(all_samples, size)
            for rank in range(1, size):
                yield from comm.send(rank, payload=pivots, tag=_PIVOT_TAG)
        else:
            yield from comm.send(0, payload=samples, tag=_SAMPLE_TAG)
            msg = yield from comm.recv(src=0, tag=_PIVOT_TAG)
            pivots = msg.payload

        # Phase 3 — partition and all-to-all exchange (data dependent).
        yield from comm.node.execute(Work(int_ops=float(len(local))))
        segments = partition_by_pivots(local, pivots)
        incoming = [segments[comm.rank]]
        for step in range(1, size):
            dst = (comm.rank + step) % size
            yield from comm.send(dst, payload=segments[dst], tag=_EXCHANGE_TAG)
        for _ in range(1, size):
            msg = yield from comm.recv(tag=_EXCHANGE_TAG)
            incoming.append(msg.payload)

        # Phase 4 — merge incoming runs; rank k now owns partition k.
        total = int(sum(len(run) for run in incoming))
        yield from comm.node.execute(merge_work(total, size))
        merged = merge_sorted_runs(incoming)
        return {"partition": merged}

    def verify(self, workload: SortWorkload, results: List[dict]) -> None:
        partitions = [result["partition"] for result in results]
        # Each partition sorted; partitions globally ordered.
        for index, partition in enumerate(partitions):
            self._require(
                bool(np.all(np.diff(partition) >= 0)), "partition %d not sorted" % index
            )
        for left, right in zip(partitions, partitions[1:]):
            if len(left) and len(right):
                self._require(
                    int(left[-1]) <= int(right[0]), "partitions out of global order"
                )
        # The union of partitions is exactly the generated multiset.
        merged = np.concatenate(partitions)
        expected = np.sort(
            np.concatenate(
                [workload.keys_for_rank(rank, len(results)) for rank in range(len(results))]
            )
        )
        self._require(len(merged) == len(expected), "key count changed")
        self._require(bool(np.array_equal(np.sort(merged), expected)), "keys were altered")
