"""ATM networks: the FORE-switch LAN and the NYNET wide-area network.

ATM is cell-switched: every message is segmented (AAL5) into 53-byte
cells carrying 48 bytes of payload, and the last cell carries an 8-byte
trailer.  Hosts connect to a non-blocking switch through dedicated
full-duplex links, so unlike Ethernet there is no shared medium — only
the sender's output port and the receiver's input port can contend.

The WAN variant (NYNET, Syracuse <-> Rome NY) differs in propagation
delay and per-message switching latency; the paper's observation that
"ATM WAN performance ... is similar to those of ATM LAN" falls out of
the cell rate being host-limited rather than distance-limited.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import Network
from repro.sim import Environment, Resource, Tracer

__all__ = ["AtmLan", "AtmWan"]

_CELL_BYTES = 53
_CELL_PAYLOAD = 48
_AAL5_TRAILER = 8


def cells_for(nbytes: int) -> int:
    """Number of ATM cells for an ``nbytes`` AAL5 PDU (min 1)."""
    total = max(int(nbytes), 0) + _AAL5_TRAILER
    return (total + _CELL_PAYLOAD - 1) // _CELL_PAYLOAD


class AtmLan(Network):
    """SPARCstations on a FORE ASX switch over 140 Mb/s TAXI links."""

    kind = "atm-lan"
    full_duplex = True

    #: Per-message adapter cost; the TAXI adapters the paper used kept
    #: per-byte host cost low enough that tool software, not the
    #: driver, set the ATM throughput ceiling.
    host_fixed_seconds = 0.35e-3
    host_per_byte_seconds = 0.03e-6

    #: Per-message switch traversal (VC lookup + cut-through start).
    switch_latency_seconds = 50e-6

    propagation_seconds = 10e-6

    def __init__(
        self,
        env: Environment,
        node_count: int,
        tracer: Optional[Tracer] = None,
        line_rate_bps: float = 140e6,
    ) -> None:
        super(AtmLan, self).__init__(env, node_count, tracer)
        self.line_rate_bps = float(line_rate_bps)
        self._out_ports = [Resource(env, capacity=1) for _ in range(node_count)]
        self._in_ports = [Resource(env, capacity=1) for _ in range(node_count)]

    def enable_noise(self, streams, scale: float = 1.0) -> None:
        """Seeded switch-traversal jitter: VC lookup and cut-through
        start vary with switch occupancy, so each message pays an extra
        uniform draw in ``[0, scale * switch_latency_seconds]`` from
        the ``"atm.switch"`` stream on top of the nominal traversal.
        """
        scale = self._noise_scale(scale)  # validate before any mutation
        self._jitter_rng = streams.stream("atm.switch")
        self._max_jitter = self.switch_latency_seconds * scale

    @property
    def payload_rate_bps(self) -> float:
        """User-data rate after the 53/48 cell tax."""
        return self.line_rate_bps * _CELL_PAYLOAD / _CELL_BYTES

    def cell_stream_seconds(self, nbytes: int) -> float:
        """Wire time of the whole cell stream for an ``nbytes`` message."""
        return cells_for(nbytes) * _CELL_BYTES * 8.0 / self.line_rate_bps

    def transfer(self, src: int, dst: int, nbytes: int):
        """Stream the message's cells through the switch."""
        self.validate_endpoints(src, dst)
        start = self.env.now
        stream_time = self.cell_stream_seconds(nbytes)
        # Hold the sender's output port and the receiver's input port
        # for the duration of the stream; the switch core never blocks.
        yield from self._stream_through_ports(
            self._out_ports[src], self._in_ports[dst], stream_time
        )
        yield self.env.timeout(
            self.switch_latency_seconds + self._jitter_seconds() + self.propagation_seconds
        )
        wire_total = cells_for(nbytes) * _CELL_BYTES
        self._record(src, dst, nbytes, wire_total, stream_time)
        return self.env.now - start


class AtmWan(AtmLan):
    """NYNET: ATM WAN between Syracuse University and Rome Laboratory.

    Access links are OC-3 (155 Mb/s, ~149.76 Mb/s SONET payload); the
    OC-48 backbone never limits a single conversation, so the access
    link sets the cell rate.  Distance adds ~0.35 ms propagation one
    way and WAN switches add per-message latency.
    """

    kind = "atm-wan"

    #: Two WAN switch traversals plus VC handling.
    switch_latency_seconds = 120e-6

    #: Syracuse to Rome NY fiber path, ~70 km at 5 us/km.
    propagation_seconds = 350e-6

    def __init__(
        self,
        env: Environment,
        node_count: int,
        tracer: Optional[Tracer] = None,
        line_rate_bps: float = 149.76e6,
    ) -> None:
        super(AtmWan, self).__init__(env, node_count, tracer, line_rate_bps=line_rate_bps)
