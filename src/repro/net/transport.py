"""A windowed, acknowledged transport over a raw medium.

p4 and PVM ride on the 1995 BSD TCP/UDP stacks, whose small default
socket buffers (4-8 KB on SunOS) stall bulk transfers at window
boundaries while the sender waits for acknowledgements.  This model
captures exactly that: a message is sent window by window, and between
windows the sender waits for an ack frame to come back over the same
medium (which, on half-duplex Ethernet, also occupies the wire).

Stop-and-wait protocols (Express's internal exchange protocol) are the
degenerate case of a window equal to the fragment size, but Express
also adds handshake turnaround; that lives in the tool layer.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import Network

__all__ = ["TcpTransport"]

#: Wire size of a bare ack segment (TCP/IP headers only).
_ACK_BYTES = 40


class TcpTransport(object):
    """Windowed transfer with per-window acknowledgement stalls.

    Parameters
    ----------
    network:
        The underlying medium.
    window_bytes:
        Bytes the sender may have in flight before stalling for an ack.
    ack_turnaround_seconds:
        Receiver-side delay before the ack is emitted (protocol
        processing + delayed-ack timer contribution).
    """

    def __init__(
        self,
        network: Network,
        window_bytes: int = 8192,
        ack_turnaround_seconds: float = 0.4e-3,
    ) -> None:
        if window_bytes <= 0:
            raise ValueError("window_bytes must be positive")
        self.network = network
        self.window_bytes = int(window_bytes)
        self.ack_turnaround_seconds = float(ack_turnaround_seconds)

    def __repr__(self) -> str:
        return "<TcpTransport window=%dB over %s>" % (self.window_bytes, self.network.kind)

    def transfer(self, src: int, dst: int, nbytes: int):
        """Deliver ``nbytes`` from ``src`` to ``dst`` (generator).

        Completes when the last data byte arrives at ``dst`` — the
        final window needs no ack before the receiver sees the data.
        """
        if nbytes <= 0:
            yield from self.network.transfer(src, dst, 0)
            return self.network.env.now
        remaining = int(nbytes)
        while remaining > 0:
            window = min(remaining, self.window_bytes)
            yield from self.network.transfer(src, dst, window)
            remaining -= window
            if remaining > 0:
                # Stall: the ack crosses back over the medium.
                yield self.network.env.timeout(self.ack_turnaround_seconds)
                yield from self.network.transfer(dst, src, _ACK_BYTES)
        return self.network.env.now
