"""10 Mb/s shared Ethernet (the paper's SUN/Ethernet and SP-1 LAN).

The defining property of 1995 Ethernet for these benchmarks is the
*shared half-duplex medium*: one frame on the wire at a time, campus
wide.  We model the segment as an exclusive resource acquired per
frame (FIFO acquisition approximates CSMA/CD under the moderate loads
of the paper's 2-8 host experiments; an optional seeded jitter models
backoff noise).  Framing covers Ethernet + IP + TCP/UDP headers,
preamble and inter-frame gap.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.base import FrameFormat, Network
from repro.sim import Environment, Resource, Tracer

__all__ = ["Ethernet"]

#: MTU payload once IP (20 B) and TCP (20 B) headers are inside the
#: 1500-byte Ethernet payload.
_TCP_MSS = 1460

#: Per-frame wire overhead: 18 B Ethernet header/FCS + 8 B preamble +
#: 12 B inter-frame gap equivalent + 40 B IP/TCP headers.
_FRAME_OVERHEAD = 78

#: Minimum wire size of an Ethernet frame (64 B + preamble + gap).
_MIN_WIRE = 84


class Ethernet(Network):
    """A single shared 10 Mb/s Ethernet segment."""

    kind = "ethernet"
    full_duplex = False

    #: Host driver/protocol-stack costs at the reference SPARC IPX.
    host_fixed_seconds = 0.35e-3
    host_per_byte_seconds = 0.08e-6

    def __init__(
        self,
        env: Environment,
        node_count: int,
        tracer: Optional[Tracer] = None,
        rate_bps: float = 10e6,
        propagation_seconds: float = 15e-6,
        backoff_rng: Optional[random.Random] = None,
        max_backoff_seconds: float = 60e-6,
    ) -> None:
        super(Ethernet, self).__init__(env, node_count, tracer)
        self.rate_bps = float(rate_bps)
        self.propagation_seconds = float(propagation_seconds)
        self.frame_format = FrameFormat(_TCP_MSS, _FRAME_OVERHEAD, _MIN_WIRE)
        self._medium = Resource(env, capacity=1)
        self._backoff_rng = backoff_rng
        # Nominal amplitude kept separately so enable_noise scales
        # from the configured value, not from a previous scaling.
        self._nominal_backoff = float(max_backoff_seconds)
        self._max_backoff = self._nominal_backoff

    def enable_noise(self, streams, scale: float = 1.0) -> None:
        """Seeded CSMA/CD backoff: a host that finds the segment busy
        defers a uniform random slice of ``max_backoff_seconds`` before
        transmitting.  Draws come from the ``"ethernet.backoff"``
        stream, and only ever occur under contention — an uncontended
        transfer stays on the deterministic bulk fast path and leaves
        the stream untouched.
        """
        scale = self._noise_scale(scale)  # validate before any mutation
        self._backoff_rng = streams.stream("ethernet.backoff")
        self._max_backoff = self._nominal_backoff * scale

    @property
    def medium_queue_length(self) -> int:
        """Hosts currently waiting for the segment (for tests/metrics)."""
        return self._medium.queue_length

    def contention(self, node: int) -> int:
        """Everyone shares the one segment: queue length is global."""
        return self._medium.queue_length

    def frame_seconds(self, payload: int) -> float:
        """Wire time of a single frame carrying ``payload`` bytes."""
        return self.frame_format.wire_bytes(payload) * 8.0 / self.rate_bps

    def transfer(self, src: int, dst: int, nbytes: int):
        """Send ``nbytes`` from ``src`` to ``dst`` frame by frame.

        Runs of frames on an idle segment coalesce into single bulk
        holds (:meth:`Network._coalesced_frames`); the moment another
        host queues for the wire — when collisions and seeded backoff
        become possible — transmission falls back to the exact
        per-frame claim/backoff/transmit cycle.
        """
        self.validate_endpoints(src, dst)
        start = self.env.now
        wire_total, busy_total = yield from self._coalesced_frames(
            self._medium, nbytes,
            backoff_rng=self._backoff_rng, max_backoff=self._max_backoff,
        )
        yield self.env.timeout(self.propagation_seconds)
        self._record(src, dst, nbytes, wire_total, busy_total)
        return self.env.now - start
