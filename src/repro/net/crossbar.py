"""The IBM SP-1 Allnode crossbar switch.

Each node connects to a non-blocking crossbar through a dedicated
full-duplex 40 MB/s link; latency through the switch is microseconds.
Like the ATM model, only the sender's output port and the receiver's
input port can contend.  Packetization overhead is small (the Allnode
switch used small flits with negligible header tax at the message
sizes the paper measures), so we model a simple per-packet overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import FrameFormat, Network
from repro.sim import Environment, Resource, Tracer

__all__ = ["AllnodeSwitch"]


class AllnodeSwitch(Network):
    """The SP-1's Allnode crossbar interconnect."""

    kind = "allnode"
    full_duplex = True

    #: The SP-1's early message layer (EUI/MPL era) still crossed the
    #: kernel; per-message host cost is low but not negligible.
    host_fixed_seconds = 0.25e-3
    host_per_byte_seconds = 0.03e-6

    switch_latency_seconds = 5e-6
    propagation_seconds = 1e-6

    def __init__(
        self,
        env: Environment,
        node_count: int,
        tracer: Optional[Tracer] = None,
        rate_bps: float = 320e6,
    ) -> None:
        super(AllnodeSwitch, self).__init__(env, node_count, tracer)
        self.rate_bps = float(rate_bps)
        self.frame_format = FrameFormat(payload_bytes=4096, overhead_bytes=16)
        self._out_ports = [Resource(env, capacity=1) for _ in range(node_count)]
        self._in_ports = [Resource(env, capacity=1) for _ in range(node_count)]

    def enable_noise(self, streams, scale: float = 1.0) -> None:
        """Seeded route-setup jitter: the Allnode switch establishes a
        circuit per message, and setup time varies with switch state.
        Each message pays an extra uniform draw in
        ``[0, scale * switch_latency_seconds]`` from the
        ``"allnode.switch"`` stream.
        """
        scale = self._noise_scale(scale)  # validate before any mutation
        self._jitter_rng = streams.stream("allnode.switch")
        self._max_jitter = self.switch_latency_seconds * scale

    def stream_seconds(self, nbytes: int) -> float:
        """Wire time for an ``nbytes`` message including packet tax."""
        return self.frame_format.total_wire_bytes(nbytes) * 8.0 / self.rate_bps

    def transfer(self, src: int, dst: int, nbytes: int):
        """Stream the message through the crossbar."""
        self.validate_endpoints(src, dst)
        start = self.env.now
        stream_time = self.stream_seconds(nbytes)
        yield from self._stream_through_ports(
            self._out_ports[src], self._in_ports[dst], stream_time
        )
        yield self.env.timeout(
            self.switch_latency_seconds + self._jitter_seconds() + self.propagation_seconds
        )
        wire_total = self.frame_format.total_wire_bytes(nbytes)
        self._record(src, dst, nbytes, wire_total, stream_time)
        return self.env.now - start
