"""100 Mb/s FDDI token ring (the paper's ALPHA/FDDI backbone).

A station must hold the token to transmit; the token then circulates.
We model the token as an exclusive resource whose acquisition costs a
rotation latency (the mean time for the token to come around an
otherwise idle ring).  FDDI is effectively half-duplex per station but
multiple stations' traffic shares the 100 Mb/s ring bandwidth through
token serialization, which the exclusive token resource captures.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import FrameFormat, Network
from repro.sim import Environment, Resource, Tracer

__all__ = ["FddiRing"]

#: FDDI max frame is 4500 B; after headers we carry ~4 KB of payload.
_FDDI_PAYLOAD = 4096

#: Frame header/trailer + LLC + IP/TCP headers.
_FRAME_OVERHEAD = 80


class FddiRing(Network):
    """A switched-concentrator FDDI ring of workstations."""

    kind = "fddi"
    full_duplex = False

    #: DEC's FDDI adapters had DMA; host cost is lower than Ethernet's
    #: but the 100 Mb/s stream still costs CPU on the receive side.
    host_fixed_seconds = 0.35e-3
    host_per_byte_seconds = 0.05e-6

    def __init__(
        self,
        env: Environment,
        node_count: int,
        tracer: Optional[Tracer] = None,
        rate_bps: float = 100e6,
        token_latency_seconds: float = 45e-6,
        propagation_seconds: float = 8e-6,
    ) -> None:
        super(FddiRing, self).__init__(env, node_count, tracer)
        self.rate_bps = float(rate_bps)
        self.token_latency_seconds = float(token_latency_seconds)
        self.propagation_seconds = float(propagation_seconds)
        self.frame_format = FrameFormat(_FDDI_PAYLOAD, _FRAME_OVERHEAD)
        self._token = Resource(env, capacity=1)

    def enable_noise(self, streams, scale: float = 1.0) -> None:
        """Seeded token-rotation jitter: ``token_latency_seconds`` is
        the *mean* wait for the token on an idle ring, but the token is
        actually somewhere along the ring when a station wants it.
        With noise enabled each capture waits an extra uniform draw in
        ``[0, scale * token_latency_seconds]`` from the
        ``"fddi.token"`` stream — one draw per message, matching the
        once-per-message token capture.
        """
        scale = self._noise_scale(scale)  # validate before any mutation
        self._jitter_rng = streams.stream("fddi.token")
        self._max_jitter = self.token_latency_seconds * scale

    def frame_seconds(self, payload: int) -> float:
        """Wire time of one frame carrying ``payload`` bytes."""
        return self.frame_format.wire_bytes(payload) * 8.0 / self.rate_bps

    def transfer(self, src: int, dst: int, nbytes: int):
        """Send ``nbytes`` from ``src`` to ``dst`` around the ring.

        The token is captured once per *message* (FDDI allows a station
        to transmit several frames per token capture up to its
        synchronous allocation), so large messages do not pay the
        rotation latency per frame.
        """
        self.validate_endpoints(src, dst)
        start = self.env.now
        wire_total = self.frame_format.total_wire_bytes(nbytes)
        busy_total = wire_total * 8.0 / self.rate_bps
        token_wait = self.token_latency_seconds + self._jitter_seconds()
        yield from self._hold_for(self._token, token_wait, busy_total)
        yield self.env.timeout(self.propagation_seconds)
        self._record(src, dst, nbytes, wire_total, busy_total)
        return self.env.now - start
