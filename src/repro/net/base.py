"""Abstract network interface and framing arithmetic.

Every concrete medium (Ethernet, FDDI, ATM LAN/WAN, Allnode crossbar)
implements :meth:`Network.transfer`, a generator that completes when
the last byte of a message arrives at the destination NIC.  The
network layer models only the *wire*: media acquisition/contention,
framing overhead, transmission and propagation.  Host-side software
costs (drivers, protocol stacks, tool runtimes) are charged to node
CPUs by the tool layer using the per-network ``host_*`` attributes
declared here.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.errors import NetworkError
from repro.sim import Environment, NullTracer, Tracer

__all__ = ["FrameFormat", "NetworkStats", "Network"]


class FrameFormat(object):
    """Payload/overhead arithmetic for a link-layer frame format."""

    __slots__ = ("payload_bytes", "overhead_bytes", "min_wire_bytes")

    def __init__(self, payload_bytes: int, overhead_bytes: int, min_wire_bytes: int = 0) -> None:
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if overhead_bytes < 0 or min_wire_bytes < 0:
            raise ValueError("overheads must be non-negative")
        self.payload_bytes = int(payload_bytes)
        self.overhead_bytes = int(overhead_bytes)
        self.min_wire_bytes = int(min_wire_bytes)

    def __repr__(self) -> str:
        return "FrameFormat(payload=%d, overhead=%d, min=%d)" % (
            self.payload_bytes,
            self.overhead_bytes,
            self.min_wire_bytes,
        )

    def frame_count(self, nbytes: int) -> int:
        """Number of frames needed for an ``nbytes`` message (min 1)."""
        if nbytes <= 0:
            return 1
        return int(math.ceil(nbytes / float(self.payload_bytes)))

    def frame_payloads(self, nbytes: int) -> Iterator[int]:
        """Yield the payload size of each successive frame."""
        if nbytes <= 0:
            yield 0
            return
        remaining = int(nbytes)
        while remaining > 0:
            chunk = min(remaining, self.payload_bytes)
            yield chunk
            remaining -= chunk

    def wire_bytes(self, payload: int) -> int:
        """Bytes on the wire for one frame carrying ``payload`` bytes."""
        return max(payload + self.overhead_bytes, self.min_wire_bytes)

    def total_wire_bytes(self, nbytes: int) -> int:
        """Bytes on the wire for a whole ``nbytes`` message."""
        return sum(self.wire_bytes(p) for p in self.frame_payloads(nbytes))


class NetworkStats(object):
    """Running counters a network keeps about delivered traffic."""

    __slots__ = ("messages", "payload_bytes", "wire_bytes", "busy_seconds")

    def __init__(self) -> None:
        self.messages = 0
        self.payload_bytes = 0
        self.wire_bytes = 0
        self.busy_seconds = 0.0

    def __repr__(self) -> str:
        return "NetworkStats(messages=%d, payload=%dB, wire=%dB, busy=%.6fs)" % (
            self.messages,
            self.payload_bytes,
            self.wire_bytes,
            self.busy_seconds,
        )

    def account(self, payload_bytes: int, wire_bytes: int, busy_seconds: float) -> None:
        self.messages += 1
        self.payload_bytes += payload_bytes
        self.wire_bytes += wire_bytes
        self.busy_seconds += busy_seconds


class Network(object):
    """Base class for all media models.

    Parameters
    ----------
    env:
        Simulation environment.
    node_count:
        Number of attached hosts; endpoints are 0..node_count-1.
    tracer:
        Optional structured tracer; receives ``net.transfer`` records.

    Attributes
    ----------
    host_fixed_seconds:
        Per-message host driver/stack cost (at the reference node),
        charged by the tool layer on each side.
    host_per_byte_seconds:
        Per-byte host driver cost (at the reference node), charged by
        the tool layer on each side.
    full_duplex:
        Whether a host can send and receive simultaneously.
    """

    #: Short catalog name, set by subclasses (e.g. ``"ethernet"``).
    kind = "abstract"

    host_fixed_seconds = 0.0
    host_per_byte_seconds = 0.0
    full_duplex = True

    def __init__(self, env: Environment, node_count: int, tracer: Optional[Tracer] = None) -> None:
        if node_count < 1:
            raise NetworkError("a network needs at least one host, got %d" % node_count)
        self.env = env
        self.node_count = int(node_count)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.stats = NetworkStats()

    def __repr__(self) -> str:
        return "<%s nodes=%d>" % (type(self).__name__, self.node_count)

    def validate_endpoints(self, src: int, dst: int) -> None:
        """Reject out-of-range or self-directed transfers."""
        for endpoint in (src, dst):
            if not 0 <= endpoint < self.node_count:
                raise NetworkError(
                    "endpoint %d out of range for %d-node %s"
                    % (endpoint, self.node_count, self.kind)
                )
        if src == dst:
            raise NetworkError("self-transfer %d -> %d is a host-local copy, not a send" % (src, dst))

    def transfer(self, src: int, dst: int, nbytes: int):
        """Deliver ``nbytes`` from ``src`` to ``dst`` (generator).

        Completes when the last byte arrives at the destination NIC.
        Subclasses implement the medium-specific behaviour.
        """
        raise NotImplementedError

    def contention(self, node: int) -> int:
        """How many transmitters are queued on ``node``'s transmit path.

        Shared-medium networks report the medium queue; switched
        networks are contention-free per port by default.  Unreliable
        transports (PVM's daemon UDP) consult this to decide whether a
        fragment would have been lost to congestion.
        """
        return 0

    def _record(self, src: int, dst: int, nbytes: int, wire_bytes: int, busy: float) -> None:
        self.stats.account(nbytes, wire_bytes, busy)
        self.tracer.record(
            self.env.now,
            "net.transfer",
            network=self.kind,
            src=src,
            dst=dst,
            nbytes=nbytes,
            wire_bytes=wire_bytes,
            busy=busy,
        )
