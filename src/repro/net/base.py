"""Abstract network interface and framing arithmetic.

Every concrete medium (Ethernet, FDDI, ATM LAN/WAN, Allnode crossbar)
implements :meth:`Network.transfer`, a generator that completes when
the last byte of a message arrives at the destination NIC.  The
network layer models only the *wire*: media acquisition/contention,
framing overhead, transmission and propagation.  Host-side software
costs (drivers, protocol stacks, tool runtimes) are charged to node
CPUs by the tool layer using the per-network ``host_*`` attributes
declared here.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import NetworkError, validate_noise
from repro.sim import Environment, Event, NullTracer, Resource, Tracer

__all__ = ["FrameFormat", "NetworkStats", "Network"]


class FrameFormat(object):
    """Payload/overhead arithmetic for a link-layer frame format."""

    __slots__ = ("payload_bytes", "overhead_bytes", "min_wire_bytes")

    def __init__(self, payload_bytes: int, overhead_bytes: int, min_wire_bytes: int = 0) -> None:
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if overhead_bytes < 0 or min_wire_bytes < 0:
            raise ValueError("overheads must be non-negative")
        self.payload_bytes = int(payload_bytes)
        self.overhead_bytes = int(overhead_bytes)
        self.min_wire_bytes = int(min_wire_bytes)

    def __repr__(self) -> str:
        return "FrameFormat(payload=%d, overhead=%d, min=%d)" % (
            self.payload_bytes,
            self.overhead_bytes,
            self.min_wire_bytes,
        )

    def frame_count(self, nbytes: int) -> int:
        """Number of frames needed for an ``nbytes`` message (min 1).

        Pure integer ceiling division, so the count always agrees with
        :meth:`frame_payloads` even for messages too large for exact
        float division.
        """
        if nbytes <= 0:
            return 1
        return -(-int(nbytes) // self.payload_bytes)

    def last_frame_payload(self, nbytes: int) -> int:
        """Payload carried by the final frame of an ``nbytes`` message."""
        if nbytes <= 0:
            return 0
        remainder = int(nbytes) % self.payload_bytes
        return remainder if remainder else self.payload_bytes

    def frame_payloads(self, nbytes: int) -> Iterator[int]:
        """Yield the payload size of each successive frame."""
        if nbytes <= 0:
            yield 0
            return
        remaining = int(nbytes)
        while remaining > 0:
            chunk = min(remaining, self.payload_bytes)
            yield chunk
            remaining -= chunk

    def wire_bytes(self, payload: int) -> int:
        """Bytes on the wire for one frame carrying ``payload`` bytes."""
        return max(payload + self.overhead_bytes, self.min_wire_bytes)

    def total_wire_bytes(self, nbytes: int) -> int:
        """Bytes on the wire for a whole ``nbytes`` message.

        Closed form: every frame but the last carries a full payload,
        so the O(frames) generator sum reduces to O(1) arithmetic.
        (Integer sums are associative, so this is exactly the
        per-frame sum — the property tests assert it.)
        """
        if nbytes <= 0:
            return self.wire_bytes(0)
        frames = self.frame_count(nbytes)
        return (frames - 1) * self.wire_bytes(self.payload_bytes) + self.wire_bytes(
            self.last_frame_payload(nbytes)
        )


class NetworkStats(object):
    """Running counters a network keeps about delivered traffic."""

    __slots__ = ("messages", "payload_bytes", "wire_bytes", "busy_seconds")

    def __init__(self) -> None:
        self.messages = 0
        self.payload_bytes = 0
        self.wire_bytes = 0
        self.busy_seconds = 0.0

    def __repr__(self) -> str:
        return "NetworkStats(messages=%d, payload=%dB, wire=%dB, busy=%.6fs)" % (
            self.messages,
            self.payload_bytes,
            self.wire_bytes,
            self.busy_seconds,
        )

    def account(self, payload_bytes: int, wire_bytes: int, busy_seconds: float) -> None:
        self.messages += 1
        self.payload_bytes += payload_bytes
        self.wire_bytes += wire_bytes
        self.busy_seconds += busy_seconds


class Network(object):
    """Base class for all media models.

    Parameters
    ----------
    env:
        Simulation environment.
    node_count:
        Number of attached hosts; endpoints are 0..node_count-1.
    tracer:
        Optional structured tracer; receives ``net.transfer`` records.

    Attributes
    ----------
    host_fixed_seconds:
        Per-message host driver/stack cost (at the reference node),
        charged by the tool layer on each side.
    host_per_byte_seconds:
        Per-byte host driver cost (at the reference node), charged by
        the tool layer on each side.
    full_duplex:
        Whether a host can send and receive simultaneously.
    """

    #: Short catalog name, set by subclasses (e.g. ``"ethernet"``).
    kind = "abstract"

    host_fixed_seconds = 0.0
    host_per_byte_seconds = 0.0
    full_duplex = True

    def __init__(self, env: Environment, node_count: int, tracer: Optional[Tracer] = None) -> None:
        if node_count < 1:
            raise NetworkError("a network needs at least one host, got %d" % node_count)
        self.env = env
        self.node_count = int(node_count)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.stats = NetworkStats()
        # Seeded jitter model, attached by enable_noise(); with no
        # generator the medium is exactly deterministic.
        self._jitter_rng = None
        self._max_jitter = 0.0

    def enable_noise(self, streams, scale: float = 1.0) -> None:
        """Attach this medium's seeded stochastic model.

        ``streams`` is the platform's
        :class:`~repro.sim.rng.RandomStreams`; every medium draws from
        its own named stream, so enabling noise on one never perturbs
        another.  ``scale`` multiplies the medium's class-default
        jitter amplitude (``1.0`` = the physical model's nominal
        spread).  Media without a stochastic model refuse rather than
        silently simulate deterministic results under a noise flag.
        """
        raise NetworkError("%s has no stochastic model to enable" % self.kind)

    def _noise_scale(self, scale: float) -> float:
        """Validate an ``enable_noise`` amplitude scale."""
        return validate_noise(scale, NetworkError, what="noise scale",
                              allow_zero=False)

    def _jitter_seconds(self) -> float:
        """One seeded jitter draw (0.0 when noise is disabled)."""
        if self._jitter_rng is None:
            return 0.0
        return self._jitter_rng.uniform(0.0, self._max_jitter)

    def __repr__(self) -> str:
        return "<%s nodes=%d>" % (type(self).__name__, self.node_count)

    def validate_endpoints(self, src: int, dst: int) -> None:
        """Reject out-of-range or self-directed transfers."""
        for endpoint in (src, dst):
            if not 0 <= endpoint < self.node_count:
                raise NetworkError(
                    "endpoint %d out of range for %d-node %s"
                    % (endpoint, self.node_count, self.kind)
                )
        if src == dst:
            raise NetworkError("self-transfer %d -> %d is a host-local copy, not a send" % (src, dst))

    def transfer(self, src: int, dst: int, nbytes: int):
        """Deliver ``nbytes`` from ``src`` to ``dst`` (generator).

        Completes when the last byte arrives at the destination NIC.
        Subclasses implement the medium-specific behaviour.
        """
        raise NotImplementedError

    def contention(self, node: int) -> int:
        """How many transmitters are queued on ``node``'s transmit path.

        Shared-medium networks report the medium queue; switched
        networks are contention-free per port by default.  Unreliable
        transports (PVM's daemon UDP) consult this to decide whether a
        fragment would have been lost to congestion.
        """
        return 0

    def _record(self, src: int, dst: int, nbytes: int, wire_bytes: int, busy: float) -> None:
        self.stats.account(nbytes, wire_bytes, busy)
        self.tracer.record(
            self.env.now,
            "net.transfer",
            network=self.kind,
            src=src,
            dst=dst,
            nbytes=nbytes,
            wire_bytes=wire_bytes,
            busy=busy,
        )

    # ------------------------------------------------------------------
    # Shared transfer engines
    #
    # Every medium's ``transfer`` is some composition of three shapes:
    # a per-frame claim/transmit loop over an exclusive medium
    # (Ethernet), a single hold of one resource for a stream (FDDI's
    # token), or a hold of an (output port, input port) pair (ATM, the
    # Allnode crossbar).  The helpers below implement those shapes once
    # — and give the per-frame loop a *bulk fast path*: while nobody
    # else wants the medium, a run of frames collapses into a single
    # scheduled event instead of a claim/timeout cycle per frame.
    # ------------------------------------------------------------------

    def _coalesced_frames(self, medium: Resource, nbytes: int, backoff_rng=None,
                          max_backoff: float = 0.0):
        """Transmit ``nbytes`` frame by frame over exclusive ``medium``.

        Generator; returns ``(wire_total, busy_total)`` once the last
        frame has left the wire (the caller charges propagation and
        records stats).  Requires ``self.frame_format`` and
        ``self.frame_seconds``.

        Fast path: whenever the medium is granted with nobody queued
        behind us — so no seeded backoff draw can occur and no rival
        is owed an interleaving slot — the remaining frames coalesce
        into one closed-form hold.  A contention watcher wakes the
        hold the moment another claimant queues; we then finish the
        frame in flight and fall back to the exact per-frame path, so
        rivals acquire the medium at precisely the timestamps they
        would have today.

        Timestamps stay bit-identical to the per-frame loop because
        the coalesced target is produced by the *same* left-to-right
        float accumulation the per-frame clock performs, and is
        scheduled at that absolute time (:meth:`Environment.timeout_until`)
        rather than via a relative delay.
        """
        env = self.env
        frames = self.frame_format.frame_count(nbytes)
        full_seconds = self.frame_seconds(self.frame_format.payload_bytes)
        last_seconds = self.frame_seconds(self.frame_format.last_frame_payload(nbytes))
        wire_total = self.frame_format.total_wire_bytes(nbytes)
        busy_total = 0.0
        sent = 0
        while sent < frames:
            claim = medium.request()
            try:
                yield claim
                if medium.queue_length > 0:
                    # Contended: the exact per-frame path for this
                    # frame (a seeded backoff draw may apply here, so
                    # coalescing would change RNG consumption).
                    if backoff_rng is not None:
                        yield env.timeout(backoff_rng.uniform(0.0, max_backoff))
                    frame_time = full_seconds if sent < frames - 1 else last_seconds
                    yield env.timeout(frame_time)
                    busy_total += frame_time
                    sent += 1
                else:
                    # Uncontended: coalesce every remaining frame.
                    started = env.now
                    target = started
                    for index in range(sent, frames):
                        target += full_seconds if index < frames - 1 else last_seconds
                    if (yield from self._hold_uncontended(medium, target)):
                        done = frames - sent
                    else:
                        # A rival queued mid-hold.  Walk the per-frame
                        # boundary accumulation to the frame in
                        # flight, finish it, then yield the medium.
                        done = 0
                        boundary = started
                        while sent + done < frames:
                            step = (full_seconds if sent + done < frames - 1
                                    else last_seconds)
                            if boundary + step <= env.now:
                                boundary += step
                                done += 1
                            else:
                                break
                        if (boundary < env.now or done == 0) and sent + done < frames:
                            # A frame is on the wire: hold until its
                            # per-frame end.  That is so strictly
                            # inside a frame, and also at the hold's
                            # very start (the per-frame path schedules
                            # the first frame's timeout before a
                            # same-instant rival event can run).  A
                            # rival landing float-exactly on a *later*
                            # frame boundary finds no frame started —
                            # release immediately, as the per-frame
                            # path grants a rival that was already
                            # waiting when the frame ended.
                            boundary += (full_seconds if sent + done < frames - 1
                                         else last_seconds)
                            yield env.timeout_until(boundary)
                            done += 1
                    for index in range(sent, sent + done):
                        busy_total += full_seconds if index < frames - 1 else last_seconds
                    sent += done
            finally:
                medium.release(claim)
        return wire_total, busy_total

    def _hold_uncontended(self, resource: Resource, until_time: float):
        """Hold the already-claimed ``resource`` until ``until_time``.

        Generator; wakes early the moment another claimant queues on
        ``resource``.  Returns True if the hold ran to ``until_time``
        undisturbed, False if contention cut it short.
        """
        env = self.env
        if until_time <= env.now:
            return True
        contended = Event(env)

        def notice(_request, _contended=contended):
            if not _contended.triggered:
                _contended.succeed()

        resource.watch_contention(notice)
        expiry = env.timeout_until(until_time)
        try:
            yield env.any_of((expiry, contended))
        finally:
            resource.unwatch_contention(notice)
        return expiry.processed

    def _hold_for(self, resource: Resource, *delays: float):
        """Claim ``resource``, sleep through ``delays`` in order, release.

        Generator.  The single-resource stream shape (FDDI's token):
        identical event sequence to an inline ``with request()`` block.
        """
        claim = resource.request()
        try:
            yield claim
            for delay in delays:
                yield self.env.timeout(delay)
        finally:
            resource.release(claim)

    def _stream_through_ports(self, out_port: Resource, in_port: Resource,
                              stream_seconds: float):
        """Hold the (sender output, receiver input) port pair for one stream.

        Generator.  The switched-fabric shape (ATM, Allnode): ports are
        acquired in output-then-input order and both released — output
        first, so rival grants fire in the established order — when the
        stream's wire time has elapsed.
        """
        out_claim = out_port.request()
        yield out_claim
        in_claim = in_port.request()
        yield in_claim
        try:
            yield self.env.timeout(stream_seconds)
        finally:
            out_port.release(out_claim)
            in_port.release(in_claim)
