"""Network substrate: 1995-era media models.

Concrete media:

* :class:`Ethernet` — 10 Mb/s shared half-duplex segment,
* :class:`FddiRing` — 100 Mb/s token ring,
* :class:`AtmLan` — 140 Mb/s TAXI links through a FORE switch,
* :class:`AtmWan` — NYNET OC-3 access, WAN propagation,
* :class:`AllnodeSwitch` — the IBM SP-1 crossbar.

Plus :class:`TcpTransport`, a windowed acknowledged transport layered
over any medium.
"""

from repro.net.atm import AtmLan, AtmWan, cells_for
from repro.net.base import FrameFormat, Network, NetworkStats
from repro.net.crossbar import AllnodeSwitch
from repro.net.ethernet import Ethernet
from repro.net.fddi import FddiRing
from repro.net.transport import TcpTransport

__all__ = [
    "AllnodeSwitch",
    "AtmLan",
    "AtmWan",
    "Ethernet",
    "FddiRing",
    "FrameFormat",
    "Network",
    "NetworkStats",
    "TcpTransport",
    "cells_for",
]
