"""Catalog of the machine types used in the paper's experiments.

Throughput figures are sustained application-level estimates for the
1995 machines, chosen so that the *ratios* between machines match the
application-level results in the paper (Figures 5-8): the DEC Alpha
cluster is the fastest, the IBM SP-1 RS/6000-370 nodes sit in between
("the execution times are significantly higher on IBM-SP1 compared to
the ALPHA cluster"), and the SPARCstation ELC/IPX workstations are the
slowest.
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.node import NodeSpec

__all__ = [
    "SPARC_ELC",
    "SPARC_IPX",
    "ALPHA",
    "RS6000_370",
    "NODE_SPECS",
    "REFERENCE_SPEC",
    "node_spec",
]

#: SUN SPARCstation ELC, 33 MHz — the SUN/Ethernet hosts.
SPARC_ELC = NodeSpec("SPARCstation ELC", clock_mhz=33.0, mips=21.0, mflops=2.5, mem_mbps=25.0)

#: SUN SPARCstation IPX, 40 MHz — the SUN/ATM hosts and the Table 3
#: calibration reference.
SPARC_IPX = NodeSpec("SPARCstation IPX", clock_mhz=40.0, mips=28.5, mflops=3.5, mem_mbps=30.0)

#: DEC Alpha AXP workstation, 150 MHz — the ALPHA/FDDI cluster.
ALPHA = NodeSpec("DEC Alpha 3000", clock_mhz=150.0, mips=135.0, mflops=30.0, mem_mbps=100.0)

#: IBM RS/6000-370 SP-1 node, 62.5 MHz.
RS6000_370 = NodeSpec("IBM RS/6000-370", clock_mhz=62.5, mips=60.0, mflops=20.0, mem_mbps=60.0)

#: All software-overhead calibration constants are measured on this
#: machine (the paper's Table 3 hosts are SPARCstation IPXs).
REFERENCE_SPEC = SPARC_IPX

NODE_SPECS: Dict[str, NodeSpec] = {
    "sparc-elc": SPARC_ELC,
    "sparc-ipx": SPARC_IPX,
    "alpha": ALPHA,
    "rs6000-370": RS6000_370,
}


def node_spec(name: str) -> NodeSpec:
    """Look up a node spec by catalog key.

    Raises
    ------
    KeyError
        With the list of valid keys, if ``name`` is unknown.
    """
    try:
        return NODE_SPECS[name]
    except KeyError:
        raise KeyError(
            "unknown node spec %r; available: %s" % (name, ", ".join(sorted(NODE_SPECS)))
        )
