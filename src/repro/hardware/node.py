"""Node (host computer) models.

A :class:`NodeSpec` is a static description of a machine type — clock
rate and sustained throughput for the three operation classes that
matter for the paper's workloads (integer ops, floating-point ops,
memory copies).  A :class:`Node` is a live instance inside a platform:
it owns a CPU resource so that concurrent activities on the same host
(application compute, tool pack/unpack, daemon store-and-forward)
serialize exactly as they would on a real single-CPU 1995 workstation.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim import Environment, Resource

__all__ = ["Work", "NodeSpec", "Node"]


class Work(object):
    """An amount of computation, broken down by operation class.

    Parameters
    ----------
    flops:
        Floating-point operations.
    int_ops:
        Integer/logic operations.
    mem_bytes:
        Bytes moved through memory (copies, scans).
    """

    __slots__ = ("flops", "int_ops", "mem_bytes")

    def __init__(self, flops: float = 0.0, int_ops: float = 0.0, mem_bytes: float = 0.0) -> None:
        if flops < 0 or int_ops < 0 or mem_bytes < 0:
            raise ValueError("work amounts must be non-negative")
        self.flops = float(flops)
        self.int_ops = float(int_ops)
        self.mem_bytes = float(mem_bytes)

    def __repr__(self) -> str:
        return "Work(flops=%g, int_ops=%g, mem_bytes=%g)" % (
            self.flops,
            self.int_ops,
            self.mem_bytes,
        )

    def __add__(self, other: "Work") -> "Work":
        return Work(
            self.flops + other.flops,
            self.int_ops + other.int_ops,
            self.mem_bytes + other.mem_bytes,
        )

    def __mul__(self, factor: float) -> "Work":
        return Work(self.flops * factor, self.int_ops * factor, self.mem_bytes * factor)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Work):
            return NotImplemented
        return (
            self.flops == other.flops
            and self.int_ops == other.int_ops
            and self.mem_bytes == other.mem_bytes
        )


class NodeSpec(object):
    """Static performance description of a machine type.

    Throughputs are *sustained application-level* rates, not peak
    datasheet rates; they are what sets the compute portion of the
    paper's application-level (APL) curves.

    Parameters
    ----------
    name:
        Human-readable machine name (e.g. ``"SPARCstation IPX"``).
    clock_mhz:
        CPU clock in MHz (documentation; timing uses the throughputs).
    mips:
        Sustained integer throughput in millions of ops per second.
    mflops:
        Sustained floating-point throughput in MFLOPS.
    mem_mbps:
        Sustained memory-copy bandwidth in MB/s.
    """

    __slots__ = ("name", "clock_mhz", "mips", "mflops", "mem_mbps")

    def __init__(
        self,
        name: str,
        clock_mhz: float,
        mips: float,
        mflops: float,
        mem_mbps: float,
    ) -> None:
        if min(clock_mhz, mips, mflops, mem_mbps) <= 0:
            raise ConfigurationError("node spec rates must be positive: %s" % name)
        self.name = name
        self.clock_mhz = float(clock_mhz)
        self.mips = float(mips)
        self.mflops = float(mflops)
        self.mem_mbps = float(mem_mbps)

    def __repr__(self) -> str:
        return "NodeSpec(%r, %.1f MHz, %.1f MIPS, %.1f MFLOPS, %.0f MB/s)" % (
            self.name,
            self.clock_mhz,
            self.mips,
            self.mflops,
            self.mem_mbps,
        )

    def duration(self, work: Work) -> float:
        """Seconds this machine needs to execute ``work``."""
        return (
            work.flops / (self.mflops * 1e6)
            + work.int_ops / (self.mips * 1e6)
            + work.mem_bytes / (self.mem_mbps * 1e6)
        )

    def software_seconds(self, seconds_at_reference: float, reference: "NodeSpec") -> float:
        """Scale a software cost calibrated on ``reference`` to this node.

        Tool and driver overheads in the calibration tables are measured
        on the reference machine (SPARCstation IPX, matching the paper's
        Table 3 hosts); on a faster host the same code runs
        proportionally faster.
        """
        return seconds_at_reference * (reference.mips / self.mips)


class Node(object):
    """A live host inside a platform.

    The single :class:`~repro.sim.Resource` CPU makes concurrent
    software activity on one host serialize, which is what lets
    behaviours like PVM daemon store-and-forward contention *emerge*
    rather than being hard-coded.  Long computations are sliced into
    scheduler quanta so short activities (a daemon forwarding a
    fragment, a protocol handshake) preempt within a quantum, as they
    would under a timesharing OS.
    """

    #: Timesharing quantum: how long one claim may hold the CPU before
    #: queued work gets a turn.
    quantum_seconds = 5e-3

    def __init__(self, env: Environment, node_id: int, spec: NodeSpec) -> None:
        self.env = env
        self.node_id = int(node_id)
        self.spec = spec
        self.cpu = Resource(env, capacity=1)

    def __repr__(self) -> str:
        return "<Node %d (%s)>" % (self.node_id, self.spec.name)

    def use_cpu(self, seconds: float):
        """Occupy this node's CPU for ``seconds`` total (generator).

        Concurrent callers interleave at quantum granularity, like
        runnable processes on a single-CPU workstation; total CPU time
        on a node is conserved regardless of interleaving.
        """
        if seconds < 0:
            raise ValueError("negative CPU time %r" % (seconds,))
        remaining = seconds
        while remaining > 0.0:
            with self.cpu.request() as claim:
                yield claim
                timeslice = min(remaining, self.quantum_seconds)
                yield self.env.timeout(timeslice)
                remaining -= timeslice

    def execute(self, work: Work):
        """Occupy the CPU long enough to perform ``work`` (generator)."""
        yield from self.use_cpu(self.spec.duration(work))

    def software_cost(self, seconds_at_reference: float, reference: Optional[NodeSpec] = None):
        """Charge a reference-calibrated software cost on this CPU."""
        if reference is None:
            reference = self.spec
        yield from self.use_cpu(self.spec.software_seconds(seconds_at_reference, reference))
