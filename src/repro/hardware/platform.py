"""A platform: a set of nodes joined by one network.

The platform owns the simulation environment, the tracer and the seeded
random streams, so an experiment is fully described by (platform name,
processor count, seed) — rerunning with the same triple reproduces the
same simulated timings bit for bit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.hardware.node import Node, NodeSpec
from repro.net.base import Network
from repro.sim import Environment, RandomStreams, Tracer, NullTracer

__all__ = ["Platform"]


class Platform(object):
    """Nodes plus a network inside one simulation environment.

    Parameters
    ----------
    name:
        Catalog name (e.g. ``"sun-ethernet"``).
    env:
        The simulation environment shared by all components.
    nodes:
        The live node instances, ids 0..n-1.
    network:
        The medium connecting them (its ``node_count`` must match).
    rng:
        Named deterministic random streams for any stochastic element.
    tracer:
        Structured tracer (disabled by default).
    """

    def __init__(
        self,
        name: str,
        env: Environment,
        nodes: List[Node],
        network: Network,
        rng: Optional[RandomStreams] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not nodes:
            raise ConfigurationError("platform %r has no nodes" % name)
        if network.node_count != len(nodes):
            raise ConfigurationError(
                "platform %r: network has %d ports but %d nodes"
                % (name, network.node_count, len(nodes))
            )
        for index, node in enumerate(nodes):
            if node.node_id != index:
                raise ConfigurationError(
                    "platform %r: node at position %d has id %d" % (name, index, node.node_id)
                )
        self.name = name
        self.env = env
        self.nodes = list(nodes)
        self.network = network
        self.rng = rng if rng is not None else RandomStreams(0)
        self.tracer = tracer if tracer is not None else NullTracer()

    def __repr__(self) -> str:
        return "<Platform %s: %d x %s over %s>" % (
            self.name,
            self.node_count,
            self.nodes[0].spec.name,
            self.network.kind,
        )

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def node_spec(self) -> NodeSpec:
        """Spec of node 0 (platforms in the paper are homogeneous)."""
        return self.nodes[0].spec

    def node(self, node_id: int) -> Node:
        """The node with the given id."""
        if not 0 <= node_id < len(self.nodes):
            raise ConfigurationError(
                "node id %d out of range for %d-node platform %s"
                % (node_id, len(self.nodes), self.name)
            )
        return self.nodes[node_id]

    def describe(self) -> str:
        """One-line human description, e.g. for report headers."""
        return "%d x %s over %s" % (self.node_count, self.node_spec.name, self.network.kind)
