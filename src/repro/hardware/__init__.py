"""Hardware substrate: node models and platform assembly."""

from repro.hardware.catalog import (
    PLATFORM_DEFAULT_PROCESSORS,
    PLATFORM_NAMES,
    build_platform,
)
from repro.hardware.node import Node, NodeSpec, Work
from repro.hardware.platform import Platform
from repro.hardware.specs import (
    ALPHA,
    NODE_SPECS,
    REFERENCE_SPEC,
    RS6000_370,
    SPARC_ELC,
    SPARC_IPX,
    node_spec,
)

__all__ = [
    "ALPHA",
    "NODE_SPECS",
    "Node",
    "NodeSpec",
    "PLATFORM_DEFAULT_PROCESSORS",
    "PLATFORM_NAMES",
    "Platform",
    "REFERENCE_SPEC",
    "RS6000_370",
    "SPARC_ELC",
    "SPARC_IPX",
    "Work",
    "build_platform",
    "node_spec",
]
