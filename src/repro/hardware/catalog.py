"""Catalog of the paper's experiment platforms.

Each entry builds a fresh :class:`~repro.hardware.platform.Platform`
(its own environment, nodes, network, seeded streams), matching the
configurations in Section 3.1 of the paper:

============== ===================== ======================== ========
Catalog name   Hosts                 Network                  Max P
============== ===================== ======================== ========
sun-ethernet   SPARCstation ELC      10 Mb/s shared Ethernet  8
sun-atm-lan    SPARCstation IPX      ATM LAN (FORE, TAXI 140) 8
sun-atm-wan    SPARCstation IPX      NYNET ATM WAN (OC-3)     4
alpha-fddi     DEC Alpha (150 MHz)   dedicated switched FDDI  8
sp1-switch     RS/6000-370           Allnode crossbar         16
sp1-ethernet   RS/6000-370           dedicated Ethernet       16
============== ===================== ======================== ========
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError, validate_noise
from repro.hardware.node import Node, NodeSpec
from repro.hardware.platform import Platform
from repro.hardware.specs import ALPHA, RS6000_370, SPARC_ELC, SPARC_IPX
from repro.net import AllnodeSwitch, AtmLan, AtmWan, Ethernet, FddiRing
from repro.sim import Environment, NullTracer, RandomStreams, Tracer

__all__ = ["PLATFORM_NAMES", "PLATFORM_DEFAULT_PROCESSORS", "build_platform"]


class _PlatformRecipe(object):
    """Recipe: node spec + network factory + default/max size."""

    def __init__(
        self,
        spec: NodeSpec,
        network_factory: Callable[..., object],
        default_processors: int,
        max_processors: int,
    ) -> None:
        self.spec = spec
        self.network_factory = network_factory
        self.default_processors = default_processors
        self.max_processors = max_processors


_RECIPES: Dict[str, _PlatformRecipe] = {
    "sun-ethernet": _PlatformRecipe(SPARC_ELC, Ethernet, 8, 8),
    "sun-atm-lan": _PlatformRecipe(SPARC_IPX, AtmLan, 4, 8),
    "sun-atm-wan": _PlatformRecipe(SPARC_IPX, AtmWan, 4, 4),
    "alpha-fddi": _PlatformRecipe(ALPHA, FddiRing, 8, 8),
    "sp1-switch": _PlatformRecipe(RS6000_370, AllnodeSwitch, 8, 16),
    "sp1-ethernet": _PlatformRecipe(RS6000_370, Ethernet, 8, 16),
}

#: Valid names for :func:`build_platform`.
PLATFORM_NAMES = tuple(sorted(_RECIPES))

#: Default processor count per platform (the paper's typical setup).
PLATFORM_DEFAULT_PROCESSORS = {
    name: recipe.default_processors for name, recipe in _RECIPES.items()
}


def build_platform(
    name: str,
    processors: Optional[int] = None,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    noise: float = 0.0,
) -> Platform:
    """Build a fresh platform by catalog name.

    Parameters
    ----------
    name:
        One of :data:`PLATFORM_NAMES`.
    processors:
        Number of hosts (defaults to the paper's configuration size).
    seed:
        Root seed for the platform's random streams.
    tracer:
        Optional tracer shared by network and tools.
    noise:
        Amplitude of the network's seeded stochastic model.  ``0.0``
        (the default) keeps the medium exactly deterministic; any
        positive value attaches the medium's jitter/backoff model
        (drawing from this platform's :class:`RandomStreams`, so the
        triple ``(name, processors, seed)`` plus ``noise`` fully
        reproduces a run), scaled relative to the model's nominal
        amplitude at ``1.0``.

    Raises
    ------
    ConfigurationError
        For unknown names, out-of-range processor counts or a
        negative ``noise``.
    """
    try:
        recipe = _RECIPES[name]
    except KeyError:
        raise ConfigurationError(
            "unknown platform %r; available: %s" % (name, ", ".join(PLATFORM_NAMES))
        )
    if processors is None:
        processors = recipe.default_processors
    if not 1 <= processors <= recipe.max_processors:
        raise ConfigurationError(
            "platform %s supports 1..%d processors, got %d"
            % (name, recipe.max_processors, processors)
        )
    noise = validate_noise(noise, ConfigurationError)

    env = Environment()
    tracer = tracer if tracer is not None else NullTracer()
    rng = RandomStreams(seed)
    network = recipe.network_factory(env, processors, tracer)
    if noise > 0.0:
        network.enable_noise(rng, noise)
    nodes = [Node(env, node_id, recipe.spec) for node_id in range(processors)]
    return Platform(name, env, nodes, network, rng=rng, tracer=tracer)
