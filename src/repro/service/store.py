"""Persistent run records for the evaluation service (SQLite, WAL).

The :class:`RunStore` is the service's memory: every submitted run is
a row holding the spec (verbatim JSON plus a content hash), the state
machine position, timestamps, the final counters and — for finished
runs — the exported results.  A restarted server opens the same
database and lists every historical run; combined with the scheduler's
shared ``--cache-dir`` that is the whole restart/resume story (the
store remembers *what was asked*, the cache remembers *what was
measured*).

States move strictly along the machine ::

    queued ──> running ──> completed
       │          ├──────> cancelled
       │          └──────> failed
       └───────> cancelled

:meth:`RunStore.transition` enforces it — an illegal move raises
:class:`~repro.errors.ServiceError` instead of silently corrupting
history.  ``queued -> failed`` is also allowed so a crashed server's
orphans can be reconciled on reopen (:meth:`recover`).

SQLite runs in WAL mode (readers never block the writer — the SSE
handlers list runs while the registry finalizes one) with a single
connection serialized behind a lock, which is all the concurrency a
per-process job server needs.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ServiceError

__all__ = [
    "RUN_STATES",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "spec_hash",
    "RunStore",
]

#: Every state a run can be in, in lifecycle order.
RUN_STATES = ("queued", "running", "completed", "cancelled", "failed")

#: States with no successor: the run is over.
TERMINAL_STATES = frozenset(("completed", "cancelled", "failed"))

#: The state machine: current state -> the states it may move to.
VALID_TRANSITIONS = {
    "queued": frozenset(("running", "cancelled", "failed")),
    "running": frozenset(("completed", "cancelled", "failed")),
    "completed": frozenset(),
    "cancelled": frozenset(),
    "failed": frozenset(),
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    user         TEXT NOT NULL,
    spec_json    TEXT NOT NULL,
    spec_hash    TEXT NOT NULL,
    state        TEXT NOT NULL,
    error        TEXT,
    created_at   REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    simulated    INTEGER,
    cache_hits   INTEGER,
    wall_seconds REAL,
    result_json  TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_user ON runs (user, created_at);
"""


def spec_hash(spec_dict: dict) -> str:
    """Content address of a spec: SHA-256 over its canonical JSON.

    Two submissions of the same grid share the hash (the service's
    "is this a resubmission?" signal), mirroring how
    :func:`~repro.core.cache.job_key` addresses individual jobs.
    """
    payload = json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class RunStore(object):
    """SQLite-backed run history with an enforced state machine.

    One store serves one server process; every method is thread-safe
    (the registry's watcher threads and the HTTP handlers all write).
    ``path`` may be ``":memory:"`` for tests — WAL silently degrades
    to the default journal there, which SQLite reports rather than
    errors on.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        # One connection, serialized by our lock: check_same_thread
        # off is safe because no two threads ever use it concurrently.
        self._db = sqlite3.connect(path, check_same_thread=False)  # guarded-by: _lock
        self._db.row_factory = sqlite3.Row
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)
            self._db.commit()

    # -- row plumbing --------------------------------------------------

    @staticmethod
    def _row_to_dict(row: sqlite3.Row) -> Dict:
        record = dict(row)
        record["spec"] = json.loads(record.pop("spec_json"))
        result_json = record.pop("result_json")
        record["result"] = json.loads(result_json) if result_json else None
        return record

    def _get_locked(self, run_id: str) -> sqlite3.Row:
        row = self._db.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise ServiceError("unknown run %r" % run_id)
        return row

    # -- the API -------------------------------------------------------

    def create(self, run_id: str, user: str, spec_dict: dict) -> Dict:
        """Insert a fresh ``queued`` run and return its record."""
        user = (user or "").strip()
        if not user:
            # Last line of defense: a blank identity in the history
            # database would merge misconfigured clients forever.
            raise ServiceError("user id must not be blank")
        with self._lock:
            try:
                self._db.execute(
                    "INSERT INTO runs (run_id, user, spec_json, spec_hash,"
                    " state, created_at) VALUES (?, ?, ?, ?, 'queued', ?)",
                    (
                        run_id,
                        user,
                        json.dumps(spec_dict, sort_keys=True),
                        spec_hash(spec_dict),
                        time.time(),
                    ),
                )
            except sqlite3.IntegrityError:
                raise ServiceError("run %r already exists" % run_id)
            self._db.commit()
            return self._row_to_dict(self._get_locked(run_id))

    def get(self, run_id: str) -> Dict:
        """The full record of one run (:class:`ServiceError` if absent)."""
        with self._lock:
            return self._row_to_dict(self._get_locked(run_id))

    def list_runs(self, user: Optional[str] = None) -> List[Dict]:
        """Every run (optionally one user's), newest first, without
        the potentially large result payloads."""
        query = ("SELECT run_id, user, spec_hash, state, error, created_at,"
                 " started_at, finished_at, simulated, cache_hits,"
                 " wall_seconds FROM runs")
        args = ()
        if user is not None:
            query += " WHERE user = ?"
            args = (user,)
        query += " ORDER BY created_at DESC, run_id DESC"
        with self._lock:
            return [dict(row) for row in self._db.execute(query, args)]

    def transition(
        self,
        run_id: str,
        state: str,
        error: Optional[str] = None,
        simulated: Optional[int] = None,
        cache_hits: Optional[int] = None,
        wall_seconds: Optional[float] = None,
        result: Optional[dict] = None,
    ) -> Dict:
        """Move a run along the state machine, recording outcome data.

        ``running`` stamps ``started_at``; every terminal state stamps
        ``finished_at`` and may carry the final counters, an error
        message and the result export.  Illegal moves raise
        :class:`~repro.errors.ServiceError` and change nothing.
        """
        if state not in RUN_STATES:
            raise ServiceError(
                "unknown run state %r; known: %s" % (state, ", ".join(RUN_STATES))
            )
        with self._lock:
            row = self._get_locked(run_id)
            current = row["state"]
            if state not in VALID_TRANSITIONS[current]:
                raise ServiceError(
                    "invalid transition %s -> %s for run %s"
                    % (current, state, run_id)
                )
            now = time.time()
            fields = {"state": state}
            if state == "running":
                fields["started_at"] = now
            if state in TERMINAL_STATES:
                fields["finished_at"] = now
                fields["error"] = error
                fields["simulated"] = simulated
                fields["cache_hits"] = cache_hits
                fields["wall_seconds"] = wall_seconds
                if result is not None:
                    fields["result_json"] = json.dumps(result, sort_keys=True)
            assignments = ", ".join("%s = ?" % name for name in fields)
            self._db.execute(
                "UPDATE runs SET %s WHERE run_id = ?" % assignments,
                tuple(fields.values()) + (run_id,),
            )
            self._db.commit()
            return self._row_to_dict(self._get_locked(run_id))

    def recover(self) -> int:
        """Reconcile orphans after an unclean shutdown; how many moved.

        Rows still ``running`` belonged to a process that died with
        work in flight — they become ``failed`` (the *measurements*
        that finished are safe in the scheduler's cache; resubmitting
        the spec simulates only what never finished).  Rows still
        ``queued`` never started and become ``cancelled``.  A server
        calls this once on startup, before accepting traffic.
        """
        with self._lock:
            now = time.time()
            running = self._db.execute(
                "UPDATE runs SET state = 'failed', finished_at = ?,"
                " error = 'orphaned by unclean server shutdown'"
                " WHERE state = 'running'", (now,)
            ).rowcount
            queued = self._db.execute(
                "UPDATE runs SET state = 'cancelled', finished_at = ?,"
                " error = 'queued at unclean server shutdown'"
                " WHERE state = 'queued'", (now,)
            ).rowcount
            self._db.commit()
            return running + queued

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
