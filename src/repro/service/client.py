"""A thin stdlib client for the evaluation service.

:class:`ServiceClient` wraps the REST + SSE API of
:mod:`repro.service.server` in the vocabulary of the local streaming
API: :meth:`submit` takes an :class:`~repro.core.spec.EvaluationSpec`
(or its dict form) and returns the ``run_id``, :meth:`events` yields
the *same typed event records* a local
:meth:`~repro.core.scheduler.RunHandle.events` consumer sees (rebuilt
from the SSE frames via
:func:`~repro.core.progress.event_from_dict`), and :meth:`wait`
blocks until the terminal event and returns the stored record with
its results.

Pure ``http.client`` — one connection per request, matching the
server's ``Connection: close`` policy.  Errors come back as
:class:`~repro.errors.ServiceError` carrying the server's message.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator, List, Optional

from repro.core.progress import RunCompleted, RunEvent, event_from_dict
from repro.core.spec import EvaluationSpec
from repro.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient(object):
    """Talk to one ``repro serve`` instance.

    Parameters
    ----------
    host, port:
        Where the server listens.
    user:
        Sent as the ``X-User`` header on every request — the identity
        the server's per-user concurrency limit accounts to.  ``None``
        lets the server default (``anonymous``).
    timeout:
        Socket timeout (seconds) for plain REST calls.  Event streams
        use no timeout: a healthy stream is silent for exactly as long
        as its longest simulation.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        user: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.user = user
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _headers(self) -> dict:
        headers = {"Accept": "application/json"}
        if self.user is not None:
            headers["X-User"] = self.user
        return headers

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout: Optional[float] = -1.0,
    ) -> http.client.HTTPResponse:
        if timeout == -1.0:
            timeout = self.timeout
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        headers = self._headers()
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
        except OSError as error:
            connection.close()
            raise ServiceError(
                "cannot reach service at %s:%d (%s)" % (self.host, self.port, error)
            )
        if response.status >= 400:
            raw = response.read()
            connection.close()
            try:
                message = json.loads(raw.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace") or response.reason
            raise ServiceError(
                "%s %s -> %d: %s" % (method, path, response.status, message)
            )
        # Caller owns the response (and its connection): read then close.
        response._service_connection = connection  # type: ignore[attr-defined]
        return response

    def _json(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        response = self._request(method, path, payload)
        try:
            return json.loads(response.read().decode("utf-8"))
        finally:
            response._service_connection.close()  # type: ignore[attr-defined]

    # -- the API -------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/api/health")

    def submit(self, spec) -> str:
        """Submit a spec (``EvaluationSpec`` or dict); the ``run_id``."""
        if isinstance(spec, EvaluationSpec):
            spec = spec.to_dict()
        return self._json("POST", "/api/runs", {"spec": dict(spec)})["run_id"]

    def runs(self, user: Optional[str] = None) -> List[dict]:
        path = "/api/runs"
        if user is not None:
            path += "?user=%s" % user
        return self._json("GET", path)["runs"]

    def run(self, run_id: str) -> dict:
        """The stored record: state, counters, progress, results."""
        return self._json("GET", "/api/runs/%s" % run_id)

    def cancel(self, run_id: str) -> dict:
        return self._json("POST", "/api/runs/%s/cancel" % run_id)

    def events(self, run_id: str) -> Iterator[RunEvent]:
        """Stream a run's typed events: full replay, then live.

        Yields :class:`~repro.core.progress.JobStarted` /
        :class:`~repro.core.progress.CacheHit` /
        :class:`~repro.core.progress.JobFinished` and finally one
        :class:`~repro.core.progress.RunCompleted`, after which the
        stream ends — pattern-match exactly like local code.
        """
        response = self._request(
            "GET", "/api/runs/%s/events" % run_id, timeout=None
        )
        connection = response._service_connection  # type: ignore[attr-defined]
        try:
            data_lines: List[str] = []
            while True:
                raw = response.readline()
                if not raw:
                    return  # stream closed
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                    continue
                if line == "" and data_lines:
                    payload = json.loads("\n".join(data_lines))
                    data_lines = []
                    yield event_from_dict(payload)
                # "event:" and comment lines carry no extra information
                # beyond the payload's own type tag; skip them.
        finally:
            connection.close()

    def wait(self, run_id: str) -> dict:
        """Block until the run is over; the final stored record.

        Consumes the event stream (cheap — the server pushes) until
        the terminal event, then fetches the record so the caller gets
        counters and results in one dict.
        """
        for event in self.events(run_id):
            if isinstance(event, RunCompleted):
                break
        return self.run(run_id)
