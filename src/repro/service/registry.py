"""The job registry: admission control over the streaming scheduler.

One :class:`JobRegistry` owns every run of one server process.  It
glues three things together:

* **Admission** — each user (the ``X-User`` header upstream) may hold
  at most ``per_user_limit`` concurrently *running* evaluations;
  submissions beyond the limit queue FIFO and start automatically as
  the user's earlier runs finish.  Users never contend with each
  other's limits.
* **Execution** — every admitted run gets a fresh
  :class:`~repro.core.scheduler.Scheduler` from ``scheduler_factory``
  (one scheduler drives one run at a time, per its contract) and runs
  through :meth:`Scheduler.start`; the factory conventionally shares
  one thread-safe :class:`~repro.core.cache.ResultCache` across runs,
  which is what makes resubmitting an interrupted spec simulate only
  never-finished jobs.
* **Persistence** — every lifecycle edge is written through the
  :class:`~repro.service.store.RunStore` state machine, with final
  counters and the exported results (partial samples for cancelled
  runs, so a cancel never discards finished measurements).

A watcher thread per run observes completion; the registry itself
never blocks a caller.  :meth:`events` is the blocking bridge the SSE
layer pumps from a thread: it replays the run's buffered events and
then follows live (several consumers may stream one run), and for
runs that are no longer resident (a restarted server) it synthesizes
the terminal :class:`~repro.core.progress.RunCompleted` from the
store.
"""

from __future__ import annotations

import threading
import uuid
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.cache import ResultCache
from repro.core.progress import Progress, RunCompleted, RunEvent
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec
from repro.errors import RunCancelled, ServiceError
from repro.service.store import RunStore, TERMINAL_STATES

__all__ = ["DEFAULT_USER", "normalize_user", "JobRegistry", "progress_to_dict"]

#: The user a request without an ``X-User`` header is accounted to.
DEFAULT_USER = "anonymous"


def normalize_user(user: Optional[str]) -> str:
    """The accounting identity a request is billed to.

    Absent means :data:`DEFAULT_USER`; a present id is stripped of
    surrounding whitespace so ``"alice"`` and ``"alice "`` share one
    quota bucket.  Present-but-blank is rejected: it is always a
    misconfigured client, and letting it fall through to the
    anonymous bucket would silently merge distinct clients' quotas.
    """
    if user is None:
        return DEFAULT_USER
    user = user.strip()
    if not user:
        raise ServiceError("user id must not be blank")
    return user


def progress_to_dict(progress: Progress) -> dict:
    """A JSON-safe snapshot of a live run for the HTTP layer."""
    return {
        "total": progress.total,
        "dispatched": progress.dispatched,
        "completed": progress.completed,
        "simulated": progress.simulated,
        "cache_hits": progress.cache_hits,
        "hit_rate": progress.hit_rate,
        "elapsed_seconds": progress.elapsed_seconds,
        "eta_seconds": progress.eta_seconds,
        "cancelled": progress.cancelled,
        "finished": progress.finished,
    }


class _ManagedRun(object):
    """Registry-internal bookkeeping for one resident run."""

    __slots__ = ("run_id", "user", "spec", "state", "scheduler", "handle",
                 "started", "done", "watcher")

    def __init__(self, run_id: str, user: str, spec: EvaluationSpec) -> None:
        self.run_id = run_id
        self.user = user
        self.spec = spec
        self.state = "queued"
        self.scheduler: Optional[Scheduler] = None
        self.handle = None
        #: Set once the run has a handle *or* reached a terminal state
        #: without ever starting — what events() consumers wait on.
        self.started = threading.Event()
        self.done = threading.Event()
        self.watcher: Optional[threading.Thread] = None


class JobRegistry(object):
    """Per-user admission, FIFO queueing and lifecycle persistence.

    Parameters
    ----------
    store:
        The :class:`~repro.service.store.RunStore` every lifecycle
        edge is written through.
    scheduler_factory:
        Zero-argument callable yielding a fresh
        :class:`~repro.core.scheduler.Scheduler` per admitted run.
        The default shares one thread-safe in-memory
        :class:`~repro.core.cache.ResultCache` across all runs of
        this registry; pass a factory closing over
        ``ResultCache.on_disk(...)`` for the durable variant.
    per_user_limit:
        Concurrently *running* evaluations per user (>= 1); further
        submissions queue FIFO.
    history:
        Optional :class:`~repro.history.HistoryStore`.  Every run that
        *completes* (not cancelled, not failed — partial grids would
        poison cross-run diffs) is appended to it from the watcher
        thread, and the server exposes it under ``GET
        /api/history/...``.  Recording is best-effort: a history
        failure is reported on stderr but never fails the run itself.
    """

    def __init__(
        self,
        store: RunStore,
        scheduler_factory: Optional[Callable[[], Scheduler]] = None,
        per_user_limit: int = 2,
        history=None,
    ) -> None:
        if per_user_limit < 1:
            raise ServiceError("per_user_limit must be >= 1")
        self.store = store
        self.history = history
        self.per_user_limit = per_user_limit
        if scheduler_factory is None:
            shared = ResultCache()
            scheduler_factory = lambda: Scheduler(cache=shared)  # noqa: E731
        self._scheduler_factory = scheduler_factory
        self._lock = threading.Lock()
        self._runs: Dict[str, _ManagedRun] = {}  # guarded-by: _lock
        self._queues: Dict[str, deque] = {}   # user -> run_ids waiting; guarded-by: _lock
        self._active: Dict[str, set] = {}     # user -> run_ids running; guarded-by: _lock
        self._shutting_down = False  # guarded-by: _lock

    # -- submission ----------------------------------------------------

    def submit(self, user: Optional[str], spec) -> dict:
        """Admit (or queue) an evaluation; returns the stored record.

        ``spec`` is an :class:`~repro.core.spec.EvaluationSpec` or its
        dict form (validated here, so malformed submissions fail
        before anything persists).
        """
        user = normalize_user(user)
        if not isinstance(spec, EvaluationSpec):
            spec = EvaluationSpec.from_dict(dict(spec))
        with self._lock:
            if self._shutting_down:
                raise ServiceError("server is shutting down; not accepting runs")
            run_id = uuid.uuid4().hex[:12]
            while run_id in self._runs:  # pragma: no cover - astronomically rare
                run_id = uuid.uuid4().hex[:12]
            record = self.store.create(run_id, user, spec.to_dict())
            managed = _ManagedRun(run_id, user, spec)
            self._runs[run_id] = managed
            if len(self._active.setdefault(user, set())) < self.per_user_limit:
                self._start_locked(managed)
            else:
                self._queues.setdefault(user, deque()).append(run_id)
            record["state"] = managed.state
            return record

    def _start_locked(self, managed: _ManagedRun) -> None:
        """Move one queued run to running (caller holds the lock)."""
        self.store.transition(managed.run_id, "running")
        managed.state = "running"
        self._active.setdefault(managed.user, set()).add(managed.run_id)
        managed.scheduler = self._scheduler_factory()
        managed.handle = managed.scheduler.start(managed.spec)
        managed.started.set()
        managed.watcher = threading.Thread(
            target=self._watch, args=(managed,),
            name="repro-service-watch-%s" % managed.run_id, daemon=True,
        )
        managed.watcher.start()

    # -- completion (watcher threads) ----------------------------------

    def _watch(self, managed: _ManagedRun) -> None:
        managed.handle.wait()
        self._finalize(managed)

    def _finalize(self, managed: _ManagedRun) -> None:
        """Persist a finished run's outcome and admit the user's next.

        Runs on the watcher thread after the handle's worker ended, so
        every completed sample is already flushed to the cache — the
        same interrupt-flush guarantee
        :meth:`~repro.core.scheduler.RunHandle.result` gives a ctrl-C'd
        blocking run.
        """
        handle = managed.handle
        progress = handle.progress()
        error = None
        result_export = None
        try:
            result = handle.result()
            state = "completed"
            result_export = result.to_dict()
            self._record_history(managed, result_export)
        except RunCancelled:
            state = "cancelled"
            result_export = self._partial_export(handle)
        except Exception as failure:  # noqa: BLE001 - recorded, not raised
            state = "failed"
            error = "%s: %s" % (type(failure).__name__, failure)
        try:
            self.store.transition(
                managed.run_id, state, error=error,
                simulated=progress.simulated, cache_hits=progress.cache_hits,
                wall_seconds=progress.elapsed_seconds, result=result_export,
            )
        finally:
            if managed.scheduler is not None:
                managed.scheduler.close()
            with self._lock:
                managed.state = state
                managed.done.set()
                self._active.get(managed.user, set()).discard(managed.run_id)
                self._admit_next_locked(managed.user)

    def _record_history(self, managed: _ManagedRun, result_export: dict) -> None:
        """Append a completed run to the history store (best-effort).

        Runs on the watcher thread; the HistoryStore serializes its
        own access, so any number of concurrent watchers may append.
        A history failure must never turn a completed evaluation into
        a failed one — it is reported and swallowed.
        """
        if self.history is None:
            return
        try:
            from repro.history.store import current_git_sha

            self.history.record_result(
                result_export, label=managed.run_id, source="service",
                git_sha=current_git_sha(),
            )
        except Exception as error:  # noqa: BLE001 - reported, not raised
            import sys

            print("history: failed to record run %s (%s)"
                  % (managed.run_id, error), file=sys.stderr)

    @staticmethod
    def _partial_export(handle) -> dict:
        """What a cancelled run leaves behind: every completed sample
        (the cache holds them too; this is the API-visible copy)."""
        samples = []
        for job, value in handle.values().items():
            if value is None:
                continue  # dispatched but never finished
            entry = job.to_dict()
            entry["seconds"] = value
            samples.append(entry)
        return {"partial": True, "samples": samples}

    def _admit_next_locked(self, user: str) -> None:
        queue = self._queues.get(user)
        while (
            queue
            and not self._shutting_down
            and len(self._active.get(user, set())) < self.per_user_limit
        ):
            next_id = queue.popleft()
            managed = self._runs[next_id]
            if managed.state != "queued":  # cancelled while waiting
                continue
            self._start_locked(managed)

    # -- queries -------------------------------------------------------

    def status(self, run_id: str) -> dict:
        """The stored record, augmented with a live progress snapshot
        (and the registry's in-flight state) while the run is resident."""
        record = self.store.get(run_id)
        with self._lock:
            managed = self._runs.get(run_id)
        if managed is not None and managed.handle is not None and not managed.done.is_set():
            record["progress"] = progress_to_dict(managed.handle.progress())
        return record

    def list_runs(self, user: Optional[str] = None) -> List[dict]:
        # Filters normalize like identities do, except blank means "no
        # filter" (a query parameter, not a billed identity).
        if user is not None:
            user = user.strip() or None
        return self.store.list_runs(user)

    # -- cancellation --------------------------------------------------

    def cancel(self, run_id: str) -> dict:
        """Cancel a queued or running run; terminal runs are a no-op.

        Queued runs move straight to ``cancelled`` (they never held a
        scheduler).  Running runs get a cooperative
        :meth:`~repro.core.scheduler.RunHandle.cancel` — in-flight jobs
        finish and persist, and the watcher records ``cancelled`` with
        the partial results.  Returns the current stored record.
        """
        with self._lock:
            managed = self._runs.get(run_id)
            if managed is None:
                record = self.store.get(run_id)  # raises for unknown ids
                if record["state"] not in TERMINAL_STATES:  # pragma: no cover
                    raise ServiceError(
                        "run %s is %s but not resident in this server"
                        % (run_id, record["state"])
                    )
                return record
            if managed.state == "queued":
                self._cancel_queued_locked(managed)
                return self.store.get(run_id)
            if managed.state == "running":
                managed.handle.cancel()
                record = self.store.get(run_id)
                record["cancel_requested"] = True
                return record
        return self.store.get(run_id)

    def _cancel_queued_locked(self, managed: _ManagedRun) -> None:
        queue = self._queues.get(managed.user)
        if queue is not None and managed.run_id in queue:
            queue.remove(managed.run_id)
        self.store.transition(
            managed.run_id, "cancelled", error="cancelled while queued"
        )
        managed.state = "cancelled"
        managed.started.set()
        managed.done.set()

    # -- event streaming (the SSE bridge) ------------------------------

    def events(self, run_id: str) -> Iterator[RunEvent]:
        """Blocking iterator of a run's typed events: full replay,
        then live, ending after the terminal event.

        Non-resident runs (history from before a restart) yield one
        synthesized :class:`~repro.core.progress.RunCompleted` carrying
        the stored counters; queued runs block until admission, then
        stream normally.  Safe for any number of concurrent consumers.
        """
        with self._lock:
            managed = self._runs.get(run_id)
        if managed is None:
            yield self._synthesized_completion(self.store.get(run_id))
            return
        managed.started.wait()
        if managed.handle is None:
            # Cancelled (or shut down) while queued: never had events.
            yield self._synthesized_completion(self.store.get(run_id))
            return
        for event in managed.handle.events():
            yield event

    @staticmethod
    def _synthesized_completion(record: dict) -> RunCompleted:
        state = record["state"]
        if state not in TERMINAL_STATES:
            raise ServiceError(
                "run %s is %s but has no live event stream in this server"
                % (record["run_id"], state)
            )
        simulated = record.get("simulated") or 0
        cache_hits = record.get("cache_hits") or 0
        return RunCompleted(
            total=simulated + cache_hits,
            simulated=simulated,
            cache_hits=cache_hits,
            cancelled=state == "cancelled",
            wall_seconds=record.get("wall_seconds") or 0.0,
        )

    # -- shutdown ------------------------------------------------------

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful stop: queued runs cancel, running runs finish their
        in-flight jobs and persist (cooperative cancel + join), new
        submissions are refused.  Idempotent.

        This mirrors the blocking API's ctrl-C semantics: nothing a
        simulation already produced is lost, and the store ends with
        every resident run in a terminal state.
        """
        with self._lock:
            self._shutting_down = True
            queued = [managed for managed in self._runs.values()
                      if managed.state == "queued"]
            for managed in queued:
                self._cancel_queued_locked(managed)
            running = [managed for managed in self._runs.values()
                       if managed.state == "running"]
            for managed in running:
                managed.handle.cancel()
        for managed in running:
            if managed.watcher is not None:
                managed.watcher.join(timeout)

    def __enter__(self) -> "JobRegistry":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()
