"""Evaluation-as-a-service: a job server over the streaming core.

The :mod:`repro.service` package turns the PR-5 streaming substrate
(:class:`~repro.core.scheduler.RunHandle` event streams over the
:class:`~repro.core.executors.Executor` protocol) into a long-running,
multi-user HTTP service:

* :mod:`repro.service.store` — SQLite (WAL) run history with an
  enforced ``queued -> running -> completed/cancelled/failed`` state
  machine; a restarted server lists every historical run.
* :mod:`repro.service.registry` — per-user concurrency limits, FIFO
  queueing, cooperative cancel and graceful shutdown, with every
  lifecycle edge persisted.
* :mod:`repro.service.server` — the stdlib asyncio HTTP front:
  ``POST /api/runs`` -> ``{run_id}``, run listing/inspection, cancel,
  and a Server-Sent Events stream per run (replay + live).
* :mod:`repro.service.client` — a stdlib client speaking the same
  typed events as local code.

Run it via ``repro serve --host H --port P --db PATH --cache-dir DIR``
(see :mod:`repro.cli`); ``examples/service_demo.py`` walks the whole
submit -> stream -> cancel -> shutdown journey.
"""

from repro.service.client import ServiceClient
from repro.service.registry import DEFAULT_USER, JobRegistry
from repro.service.server import ServiceServer
from repro.service.store import RunStore, spec_hash

__all__ = [
    "DEFAULT_USER",
    "JobRegistry",
    "RunStore",
    "ServiceClient",
    "ServiceServer",
    "spec_hash",
]
