"""A stdlib-only asyncio HTTP server over the job registry.

Evaluation-as-a-service: the REST surface other tooling (and the
bundled :mod:`repro.service.client`) talks to.  No framework — a small
HTTP/1.1 request parser over ``asyncio.start_server`` is all a
single-process job server needs, and it keeps the subsystem free of
dependencies the container may not have.

The API::

    GET  /api/health              liveness + version
    GET  /api/runs                every run (newest first); ?user= filters
    POST /api/runs                submit an EvaluationSpec -> {run_id}
    GET  /api/runs/{id}           stored record + live progress snapshot
    POST /api/runs/{id}/cancel    cooperative cancel (queued or running)
    GET  /api/runs/{id}/events    Server-Sent Events: replay, then live

With a history database attached (``repro serve --history-db``) the
regression-intelligence views are readable too (404 otherwise)::

    GET  /api/history/runs            recorded runs; ?kind=&limit= filter
    GET  /api/history/runs/{ref}      one run (id, unique prefix, latest~N)
    GET  /api/history/diff            ?baseline=REF&current=REF cell diff
    GET  /api/history/leaderboard     ?window=&platform=&profile= rankings

Submissions carry ``{"spec": {...}}`` (the JSON form of
:class:`~repro.core.spec.EvaluationSpec`) and are accounted to the
``X-User`` header for per-user concurrency limits.  The SSE stream
frames each :class:`~repro.core.progress.RunEvent` as ::

    event: job_finished
    data: {"type": "job_finished", "job": {...}, ...}

— one frame per event, terminated by the ``run_completed`` frame.  The
registry's blocking event iterator is pumped on a thread per consumer
and handed to the asyncio side through ``call_soon_threadsafe``, so a
slow consumer never stalls the run (RunHandle buffers the replay) and
several consumers can follow one run live.

Connections are ``Connection: close`` — one request per connection.
That is deliberate: the expensive thing here is a simulation sweep,
not a TCP handshake, and it keeps the parser honest.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.core.progress import event_to_dict
from repro.errors import EvaluationError, ServiceError
from repro.service.registry import JobRegistry

__all__ = ["ServiceServer"]

_RUN_PATH = re.compile(r"^/api/runs/(?P<run_id>[0-9a-f]+)(?P<rest>/events|/cancel)?$")
_HISTORY_RUN_PATH = re.compile(r"^/api/history/runs/(?P<ref>[0-9a-f]+|latest(~[0-9]+)?)$")

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies above this are refused — a spec is a few KB, so a
#: larger payload is a mistake (or abuse), not a bigger evaluation.
MAX_BODY_BYTES = 1 << 20


class _HttpError(Exception):
    """Internal: unwind request handling into an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServiceServer(object):
    """The asyncio HTTP front of one :class:`JobRegistry`.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` for the real one (what the CLI prints and the tests
    and the demo parse).
    """

    def __init__(
        self, registry: JobRegistry, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop listening and tear down in-flight handlers.

        Long-lived SSE streams must be cancelled explicitly: since
        Python 3.12 ``Server.wait_closed`` waits for every open
        connection, and a stream following an unfinished run would
        hold shutdown open forever.
        """
        if self._server is None:
            return
        self._server.close()
        for task in list(self._connections):
            task.cancel()
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=5)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass
        self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- request plumbing ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                method, target, headers, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away mid-request; nothing to answer
            except _HttpError as error:
                await self._respond_error(writer, error)
                return
            try:
                await self._route(method, target, headers, body, writer)
            except _HttpError as error:
                await self._respond_error(writer, error)
            except (ServiceError, EvaluationError) as error:
                # Library-level refusals the routes didn't map: client
                # errors, not server faults.
                await self._respond_error(writer, _HttpError(400, str(error)))
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as error:  # noqa: BLE001 - last-resort 500
                await self._respond_error(
                    writer, _HttpError(500, "internal error: %s" % error)
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(reader) -> Tuple[str, str, dict, bytes]:
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "malformed request line %r" % request_line)
        method, target, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, "malformed header line %r" % line)
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(400, "unacceptable content-length %d" % length)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            raise _HttpError(400, "request body must be a JSON object")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise _HttpError(400, "request body is not valid JSON: %s" % error)
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return data

    async def _respond_json(self, writer, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n"
            "\r\n" % (status, _REASONS.get(status, "OK"), len(body))
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _respond_error(self, writer, error: _HttpError) -> None:
        try:
            await self._respond_json(
                writer, error.status, {"error": error.message}
            )
        except (ConnectionError, OSError):
            pass

    # -- routing -------------------------------------------------------

    async def _route(self, method, target, headers, body, writer) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        user = self._identity(headers)

        if path == "/api/health":
            self._require(method, "GET")
            await self._respond_json(
                writer, 200, {"status": "ok", "version": __version__}
            )
            return

        if path == "/api/runs":
            if method == "GET":
                query = parse_qs(url.query)
                query_user = (query.get("user") or [None])[0]
                runs = await asyncio.to_thread(self.registry.list_runs, query_user)
                await self._respond_json(writer, 200, {"runs": runs})
                return
            if method == "POST":
                await self._submit(writer, user, body)
                return
            raise _HttpError(405, "method %s not allowed on %s" % (method, path))

        if path == "/api/history" or path.startswith("/api/history/"):
            self._require(method, "GET")
            await self._route_history(path, parse_qs(url.query), writer)
            return

        match = _RUN_PATH.match(path)
        if match is None:
            raise _HttpError(404, "no route for %s" % path)
        run_id, rest = match.group("run_id"), match.group("rest")

        if rest is None:
            self._require(method, "GET")
            record = await self._registry_call(self.registry.status, run_id)
            await self._respond_json(writer, 200, record)
        elif rest == "/cancel":
            self._require(method, "POST")
            record = await self._registry_call(self.registry.cancel, run_id)
            await self._respond_json(writer, 202, record)
        else:  # /events
            self._require(method, "GET")
            await self._stream_events(writer, run_id)

    async def _route_history(self, path: str, query: dict, writer) -> None:
        """The read-only regression-intelligence views.

        All of them run the (briefly) blocking HistoryStore calls off
        the event loop, and all of them 404 when the server was
        started without ``--history-db`` — absent history is a missing
        resource, not a client mistake.
        """
        history = self.registry.history
        if history is None:
            raise _HttpError(
                404, "history is not enabled (start with --history-db)"
            )
        from repro.errors import HistoryError

        def param(name: str) -> Optional[str]:
            return (query.get(name) or [None])[0]

        try:
            if path == "/api/history/runs":
                kind = param("kind")
                limit = int(param("limit") or 50)
                runs = await asyncio.to_thread(
                    history.list_runs, kind, limit
                )
                await self._respond_json(writer, 200, {"runs": runs})
                return
            match = _HISTORY_RUN_PATH.match(path)
            if match is not None:
                def lookup():
                    return history.get(history.resolve(match.group("ref")))

                record = await asyncio.to_thread(lookup)
                await self._respond_json(writer, 200, record)
                return
            if path == "/api/history/diff":
                baseline, current = param("baseline"), param("current")
                if not baseline or not current:
                    raise _HttpError(
                        400, "diff needs ?baseline=REF&current=REF"
                    )
                from repro.history import diff_runs

                diff = await asyncio.to_thread(
                    diff_runs, history, baseline, current
                )
                await self._respond_json(writer, 200, diff.to_dict())
                return
            if path == "/api/history/leaderboard":
                from repro.history import leaderboards

                boards = await asyncio.to_thread(
                    leaderboards, history, int(param("window") or 10),
                    param("platform"), param("profile"),
                )
                await self._respond_json(
                    writer, 200,
                    {"leaderboards": [board.to_dict() for board in boards]},
                )
                return
        except ValueError as error:
            raise _HttpError(400, "bad query parameter: %s" % error)
        except HistoryError as error:
            message = str(error)
            missing = ("no recorded run" in message
                       or "needs" in message
                       or "unknown run" in message)
            raise _HttpError(404 if missing else 400, message)
        raise _HttpError(404, "no route for %s" % path)

    @staticmethod
    def _identity(headers) -> Optional[str]:
        """The request's user id: absent means anonymous, present
        means non-blank.  A blank/whitespace X-User is always a
        misconfigured client — rejecting it with a 400 beats silently
        billing it to the shared anonymous quota bucket."""
        if "x-user" not in headers:
            return None
        user = headers["x-user"].strip()
        if not user:
            raise _HttpError(400, "X-User header must not be blank")
        return user

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, "method %s not allowed here" % method)

    async def _registry_call(self, call, *args):
        """Run a (briefly) blocking registry call off the event loop,
        mapping "unknown run" to 404 and state refusals to 409."""
        try:
            return await asyncio.to_thread(call, *args)
        except ServiceError as error:
            message = str(error)
            raise _HttpError(404 if "unknown run" in message else 409, message)

    async def _submit(self, writer, user: Optional[str], body: bytes) -> None:
        data = self._json_body(body)
        if "spec" not in data or not isinstance(data["spec"], dict):
            raise _HttpError(400, 'submission must carry a "spec" JSON object')
        try:
            record = await asyncio.to_thread(
                self.registry.submit, user, data["spec"]
            )
        except EvaluationError as error:
            raise _HttpError(400, "invalid spec: %s" % error)
        except ServiceError as error:
            raise _HttpError(503, str(error))
        await self._respond_json(
            writer, 202,
            {"run_id": record["run_id"], "state": record["state"],
             "user": record["user"], "spec_hash": record["spec_hash"]},
        )

    # -- Server-Sent Events --------------------------------------------

    async def _stream_events(self, writer, run_id: str) -> None:
        # Resolve "unknown run" before committing to a 200 stream.
        await self._registry_call(self.registry.status, run_id)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        _END = object()

        def push(item) -> bool:
            # The loop may be gone if the server shut down mid-stream;
            # the pump just stops then.
            try:
                loop.call_soon_threadsafe(queue.put_nowait, item)
                return True
            except RuntimeError:
                return False

        def pump() -> None:
            # The registry iterator blocks between live events; feed
            # the loop from this thread.  A ServiceError here means the
            # run vanished mid-setup — end the stream, the consumer
            # re-queries state over the REST side.
            try:
                for event in self.registry.events(run_id):
                    if not push(event):
                        return
            except ServiceError:
                pass
            finally:
                push(_END)

        threading.Thread(
            target=pump, name="repro-service-sse-%s" % run_id, daemon=True
        ).start()

        while True:
            event = await queue.get()
            if event is _END:
                break
            payload = event_to_dict(event)
            frame = "event: %s\ndata: %s\n\n" % (
                payload["type"], json.dumps(payload, sort_keys=True)
            )
            writer.write(frame.encode("utf-8"))
            await writer.drain()
