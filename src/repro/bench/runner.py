"""Run experiments by id — and evaluation sweeps by spec.

The paper experiments (tables/figures) are fixed artifacts addressed
by id; :func:`run_evaluation` is the open-ended counterpart, driving
an arbitrary :class:`~repro.core.spec.EvaluationSpec` through the
scheduler with an optional worker pool and shared cache.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.errors import ConfigurationError

__all__ = [
    "available_experiments",
    "run_experiment",
    "run_experiments",
    "run_evaluation",
]


def available_experiments() -> List[str]:
    """All experiment ids, in registry order."""
    return list(EXPERIMENTS)


def run_experiment(exp_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        factory = EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigurationError(
            "unknown experiment %r; available: %s"
            % (exp_id, ", ".join(available_experiments()))
        )
    return factory()


def run_experiments(
    exp_ids: Optional[Iterable[str]] = None, echo: bool = True
) -> List[ExperimentResult]:
    """Run several (default: all) experiments, printing each report."""
    if exp_ids is None:
        exp_ids = available_experiments()
    results = []
    for exp_id in exp_ids:
        result = run_experiment(exp_id)
        if echo:
            print(result.render())
            print()
        results.append(result)
    return results


def run_evaluation(
    spec,
    jobs: int = 1,
    backend: Optional[str] = None,
    cache=None,
    cache_dir: Optional[str] = None,
    shards: Optional[int] = None,
    stats: bool = False,
    echo: bool = False,
    on_event=None,
    engine: str = "event",
    history_db: Optional[str] = None,
    history_label: Optional[str] = None,
):
    """Run an evaluation spec through the scheduler.

    Parameters
    ----------
    spec:
        An :class:`~repro.core.spec.EvaluationSpec`.
    jobs:
        Workers (1 = serial in-process execution; ``"auto"`` = one
        per CPU).
    backend:
        Executor backend name (one of
        :data:`~repro.core.executors.EXECUTOR_BACKENDS`); default is
        serial for one worker, a process pool otherwise.
    cache:
        Optional :class:`~repro.core.cache.ResultCache` shared
        across calls, so successive sweeps reuse measurements.
    cache_dir:
        Alternatively, a directory for a persistent on-disk cache
        (optionally split over ``shards`` sub-stores; ``None`` adopts
        the directory's recorded roster): an interrupted sweep
        re-launched with the same directory simulates only the jobs
        the first run never finished.
    stats:
        With ``echo``, print the multi-seed mean ±CI table instead of
        one row per seed.
    echo:
        Print the cross-configuration comparison table.
    on_event:
        Optional callable receiving every
        :class:`~repro.core.progress.RunEvent` of the streaming run
        (job started/finished, cache hits, completion) — the hook for
        progress bars and dashboards.  May fire from
        executor-internal threads.
    engine:
        ``"event"`` (default) simulates every cache miss;
        ``"analytic"`` answers every miss from the closed-form models
        in :mod:`repro.analytic` (raising on ineligible jobs);
        ``"auto"`` answers eligible misses analytically and simulates
        the rest.  Telemetry marks each sample's engine.
    history_db:
        Optional path to a run-history database
        (:class:`~repro.history.HistoryStore`): the finished run is
        appended there — full export plus git SHA and provenance — so
        ``repro history diff/gate`` can compare it against earlier
        recordings.  ``history_label`` names the recorded run.

    Returns
    -------
    :class:`~repro.core.results.ResultSet`
        Carries per-job telemetry from this pass (``.telemetry``).
    """
    from repro.core.scheduler import Scheduler, create_executor

    # Context-manage the scheduler: its process-pool executor keeps a
    # persistent worker pool, which must not outlive this call.
    with Scheduler(
        executor=create_executor(jobs, backend=backend),
        cache=cache,
        cache_dir=cache_dir,
        shards=shards,
        engine=engine,
    ) as scheduler:
        result_set = scheduler.run(spec, on_event=on_event)
    if echo:
        print(result_set.comparison(stats=stats))
    if history_db is not None:
        from repro.history import HistoryStore, current_git_sha

        with HistoryStore(history_db) as history:
            history.record_result(
                result_set.to_dict(), label=history_label, source="api",
                git_sha=current_git_sha(),
            )
    return result_set
