"""Run experiments by id and print their reports."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.errors import ConfigurationError

__all__ = ["available_experiments", "run_experiment", "run_experiments"]


def available_experiments() -> List[str]:
    """All experiment ids, in registry order."""
    return list(EXPERIMENTS)


def run_experiment(exp_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        factory = EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigurationError(
            "unknown experiment %r; available: %s"
            % (exp_id, ", ".join(available_experiments()))
        )
    return factory()


def run_experiments(
    exp_ids: Optional[Iterable[str]] = None, echo: bool = True
) -> List[ExperimentResult]:
    """Run several (default: all) experiments, printing each report."""
    if exp_ids is None:
        exp_ids = available_experiments()
    results = []
    for exp_id in exp_ids:
        result = run_experiment(exp_id)
        if echo:
            print(result.render())
            print()
        results.append(result)
    return results
