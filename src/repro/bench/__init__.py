"""Benchmark harness: regenerates every table and figure of the paper."""

from repro.bench.compare import (
    CheckResult,
    all_passed,
    check_monotone_decreasing,
    check_monotone_increasing,
    check_ordering,
    check_ratio_band,
    check_within_factor,
    failures,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_apl_figure,
    run_fig2_broadcast,
    run_fig3_ring,
    run_fig4_globalsum,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.bench.paper_data import (
    APL_PLATFORM_AXES,
    FIGURE_CLAIMS,
    TABLE3_RTT_MS,
    TABLE3_SIZES_KB,
    TABLE4_EXPECTED_RANKINGS,
)
from repro.bench.runner import available_experiments, run_experiment, run_experiments
from repro.bench.tables import format_series, format_table

__all__ = [
    "APL_PLATFORM_AXES",
    "CheckResult",
    "EXPERIMENTS",
    "ExperimentResult",
    "FIGURE_CLAIMS",
    "TABLE3_RTT_MS",
    "TABLE3_SIZES_KB",
    "TABLE4_EXPECTED_RANKINGS",
    "all_passed",
    "available_experiments",
    "check_monotone_decreasing",
    "check_monotone_increasing",
    "check_ordering",
    "check_ratio_band",
    "check_within_factor",
    "failures",
    "format_series",
    "format_table",
    "run_apl_figure",
    "run_experiment",
    "run_experiments",
    "run_fig2_broadcast",
    "run_fig3_ring",
    "run_fig4_globalsum",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
