"""One experiment per paper artifact (tables 1-5, figures 2-8).

Each ``run_*`` function executes the measurements, formats the same
rows/series the paper prints, runs the shape checks against the
paper's numbers/claims, and returns an :class:`ExperimentResult`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.apps.suite import BENCHMARKED_APPS, SU_PDABS_TABLE
from repro.bench import compare, paper_data
from repro.bench.tables import format_series, format_table
from repro.core import measurements
from repro.core.ranking import primitive_rankings, summary_table
from repro.core.report import render_usability_table
from repro.tools.registry import PRIMITIVE_NAMES

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_fig2_broadcast",
    "run_fig3_ring",
    "run_fig4_globalsum",
    "run_apl_figure",
    "EXPERIMENTS",
]

#: Tolerance for per-cell Table 3 agreement: the simulator is expected
#: to land within this factor of the paper's milliseconds.
TABLE3_CELL_FACTOR = 2.2

#: Message sizes used for the figure sweeps, in KB (the paper sweeps
#: 0-64 KB; we sample the curve).
FIGURE_SIZES_KB = (1, 4, 16, 64)


class ExperimentResult(object):
    """Rendered output plus shape checks for one paper artifact."""

    def __init__(self, exp_id: str, title: str, text: str, checks: List[compare.CheckResult]):
        self.exp_id = exp_id
        self.title = title
        self.text = text
        self.checks = checks

    def __repr__(self) -> str:
        return "<ExperimentResult %s: %d/%d checks passed>" % (
            self.exp_id,
            sum(1 for check in self.checks if check.passed),
            len(self.checks),
        )

    @property
    def passed(self) -> bool:
        return compare.all_passed(self.checks)

    def render(self) -> str:
        lines = ["== %s — %s ==" % (self.exp_id, self.title), "", self.text, ""]
        for check in self.checks:
            lines.append(repr(check))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def run_table1() -> ExperimentResult:
    """Table 1 — communication primitives per tool."""
    rows = []
    for class_name, per_tool in PRIMITIVE_NAMES.items():
        row = [class_name]
        for tool in ("express", "p4", "pvm"):
            names = per_tool[tool]
            row.append("Not Available" if names is None else ", ".join(names))
        rows.append(row)
    text = format_table(["Primitive", "Express", "p4", "PVM"], rows)
    checks = [
        compare.CheckResult(
            "table1/pvm-global-sum-unavailable",
            PRIMITIVE_NAMES["global sum"]["pvm"] is None,
            "PVM offers no global operation",
        ),
        compare.CheckResult(
            "table1/four-primitive-classes",
            len(PRIMITIVE_NAMES) == 4,
            "%d classes" % len(PRIMITIVE_NAMES),
        ),
    ]
    return ExperimentResult("T1", "Communication primitives (Table 1)", text, checks)


def run_table2() -> ExperimentResult:
    """Table 2 — the SU PDABS application suite."""
    depth = max(len(apps) for apps in SU_PDABS_TABLE.values())
    classes = list(SU_PDABS_TABLE)
    rows = []
    for index in range(depth):
        row = [str(index + 1)]
        for class_name in classes:
            apps = SU_PDABS_TABLE[class_name]
            row.append(apps[index] if index < len(apps) else "")
        rows.append(row)
    text = format_table(["#"] + classes, rows)
    checks = [
        compare.CheckResult(
            "table2/four-classes", len(SU_PDABS_TABLE) == 4, ", ".join(classes)
        ),
        compare.CheckResult(
            "table2/benchmarked-apps-implemented",
            set(BENCHMARKED_APPS) == {"fft2d", "jpeg", "montecarlo", "psrs"},
            str(BENCHMARKED_APPS),
        ),
    ]
    return ExperimentResult("T2", "SU PDABS suite (Table 2)", text, checks)


def run_table3(
    sizes_kb: Sequence[int] = paper_data.TABLE3_SIZES_KB,
    cell_factor: float = TABLE3_CELL_FACTOR,
    seed: int = 0,
) -> ExperimentResult:
    """Table 3 — snd/recv round-trip times vs the paper's exact values."""
    measured: Dict[tuple, Dict[int, float]] = {}
    for (tool, platform), paper_cells in paper_data.TABLE3_RTT_MS.items():
        measured[(tool, platform)] = {}
        for kb in sizes_kb:
            seconds = measurements.measure_sendrecv(tool, platform, kb * 1024, seed=seed)
            measured[(tool, platform)][kb] = seconds * 1e3

    headers = ["KB"]
    combos = sorted(paper_data.TABLE3_RTT_MS)
    for tool, platform in combos:
        headers.append("%s/%s" % (tool, platform.replace("sun-", "")))
    rows = []
    for kb in sizes_kb:
        row = [str(kb)]
        for combo in combos:
            paper_ms = paper_data.TABLE3_RTT_MS[combo][kb]
            row.append("%.1f (paper %.1f)" % (measured[combo][kb], paper_ms))
        rows.append(row)
    text = format_table(headers, rows, title="snd/recv round trip, ms (measured vs paper)")

    checks = []
    for combo in combos:
        tool, platform = combo
        for kb in sizes_kb:
            checks.append(
                compare.check_within_factor(
                    "table3/%s/%s/%dKB" % (tool, platform, kb),
                    measured[combo][kb],
                    paper_data.TABLE3_RTT_MS[combo][kb],
                    cell_factor,
                )
            )
    largest = max(sizes_kb)
    # Headline orderings at the large-message end.
    for platform in ("sun-ethernet", "sun-atm-lan"):
        values = {
            tool: measured[(tool, platform)][largest]
            for tool in ("p4", "pvm", "express")
            if (tool, platform) in measured
        }
        checks.append(
            compare.check_ordering(
                "table3/%s/%dKB-order" % (platform, largest),
                values,
                ["p4", "pvm", "express"],
            )
        )
    # Express beats PVM for small ATM messages (crossover claim);
    # needs both ends of the sweep to be present.
    if 1 in sizes_kb and largest >= 16:
        checks.append(
            compare.CheckResult(
                "table3/atm-small-message-crossover",
                measured[("express", "sun-atm-lan")][1]
                < measured[("pvm", "sun-atm-lan")][1]
                and measured[("express", "sun-atm-lan")][largest]
                > measured[("pvm", "sun-atm-lan")][largest],
                "express faster at 1KB, slower at %dKB on ATM LAN" % largest,
            )
        )
    # WAN ~ LAN (the NYNET feasibility claim).
    for tool in ("p4", "pvm"):
        checks.append(
            compare.check_ratio_band(
                "table3/%s/wan-vs-lan-%dKB" % (tool, largest),
                measured[(tool, "sun-atm-wan")][largest],
                measured[(tool, "sun-atm-lan")][largest],
                low=0.8,
                high=1.6,
            )
        )
    # ATM >> Ethernet for bulk transfers.
    if largest >= 16:
        for tool in ("p4", "pvm"):
            checks.append(
                compare.check_ratio_band(
                    "table3/%s/ethernet-vs-atm-%dKB" % (tool, largest),
                    measured[(tool, "sun-ethernet")][largest],
                    measured[(tool, "sun-atm-lan")][largest],
                    low=2.0,
                )
            )
    return ExperimentResult("T3", "snd/recv timing (Table 3)", text, checks)


def run_table4(seed: int = 0) -> ExperimentResult:
    """Table 4 — per-platform primitive ranking summary."""
    rankings = {
        platform: primitive_rankings(platform, seed=seed)
        for platform in paper_data.TABLE4_EXPECTED_RANKINGS
    }
    text = summary_table(rankings)
    checks = []
    for platform, expected_columns in paper_data.TABLE4_EXPECTED_RANKINGS.items():
        for class_name, expected in expected_columns.items():
            measured_order = [
                tool for tool in rankings[platform][class_name] if tool in expected
            ]
            checks.append(
                compare.CheckResult(
                    "table4/%s/%s" % (platform, class_name),
                    measured_order == list(expected),
                    "expected %s, measured %s" % (expected, measured_order),
                )
            )
    return ExperimentResult("T4", "Tool performance summary (Table 4)", text, checks)


def run_table5() -> ExperimentResult:
    """Section 3.3.1 — the usability (ADL) matrix."""
    from repro.core.usability import USABILITY_MATRIX
    from repro.core.criteria import NS, PS, WS

    text = render_usability_table()
    expected_cells = {
        ("ease-of-programming", "pvm"): WS,
        ("debugging-support", "express"): WS,
        ("customization", "pvm"): NS,
        ("integration", "express"): NS,
        ("error-handling", "p4"): PS,
    }
    checks = [
        compare.CheckResult(
            "table5/%s/%s" % (criterion, tool),
            USABILITY_MATRIX[criterion][tool] == rating,
            "expected %s" % rating.code,
        )
        for (criterion, tool), rating in expected_cells.items()
    ]
    return ExperimentResult("T5", "Usability assessment (Section 3.3.1)", text, checks)


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

def _sweep(
    measure: Callable[..., float],
    tools: Sequence[str],
    platform: str,
    sizes_kb: Sequence[int],
    seed: int,
) -> Dict[str, List[float]]:
    series = {}
    for tool in tools:
        series[tool] = [
            measure(tool, platform, kb * 1024, seed=seed) * 1e3 for kb in sizes_kb
        ]
    return series


def run_fig2_broadcast(
    network: str = "ethernet",
    sizes_kb: Sequence[int] = FIGURE_SIZES_KB,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 2 — broadcast among 4 SUNs (Ethernet or ATM WAN)."""
    claim = paper_data.FIGURE_CLAIMS["fig2-broadcast-%s" % network]
    series = _sweep(
        measurements.measure_broadcast, claim["tools"], claim["platform"], sizes_kb, seed
    )
    text = format_series("KB", sizes_kb, series, title="Broadcast, 4 nodes, %s" % network)
    large = {tool: values[-1] for tool, values in series.items()}
    checks = [
        compare.check_ordering(
            "fig2/%s/large-message-order" % network, large, claim["large_message_order"]
        )
    ]
    for tool, values in series.items():
        checks.append(
            compare.check_monotone_increasing("fig2/%s/%s-grows-with-size" % (network, tool), values)
        )
    return ExperimentResult(
        "F2-%s" % network, "Broadcast timing (Figure 2, %s)" % network, text, checks
    )


def run_fig3_ring(
    network: str = "ethernet",
    sizes_kb: Sequence[int] = FIGURE_SIZES_KB,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 3 — ring (all nodes send and receive), 4 SUNs."""
    claim = paper_data.FIGURE_CLAIMS["fig3-ring-%s" % network]
    series = _sweep(
        measurements.measure_ring, claim["tools"], claim["platform"], sizes_kb, seed
    )
    text = format_series("KB", sizes_kb, series, title="Ring, 4 nodes, %s" % network)
    large = {tool: values[-1] for tool, values in series.items()}
    checks = [
        compare.check_ordering(
            "fig3/%s/large-message-order" % network, large, claim["large_message_order"]
        )
    ]
    for tool, values in series.items():
        checks.append(
            compare.check_monotone_increasing("fig3/%s/%s-grows-with-size" % (network, tool), values)
        )
    return ExperimentResult(
        "F3-%s" % network, "Ring timing (Figure 3, %s)" % network, text, checks
    )


def run_fig4_globalsum(
    vector_sizes: Sequence[int] = (10_000, 30_000, 100_000),
    seed: int = 0,
) -> ExperimentResult:
    """Figure 4 — global vector summation, 4 SUNs."""
    series = {
        "p4-ethernet": [
            measurements.measure_global_sum("p4", "sun-ethernet", n, seed=seed) * 1e3
            for n in vector_sizes
        ],
        "express-ethernet": [
            measurements.measure_global_sum("express", "sun-ethernet", n, seed=seed) * 1e3
            for n in vector_sizes
        ],
        "p4-nynet": [
            measurements.measure_global_sum("p4", "sun-atm-wan", n, seed=seed) * 1e3
            for n in vector_sizes
        ],
    }
    text = format_series("# ints", vector_sizes, series, title="Global vector sum, 4 nodes")
    at_max = {name: values[-1] for name, values in series.items()}
    checks = [
        compare.check_ordering(
            "fig4/order-at-100k",
            {"p4-ethernet": at_max["p4-ethernet"], "express-ethernet": at_max["express-ethernet"]},
            ["p4-ethernet", "express-ethernet"],
        ),
        compare.CheckResult(
            "fig4/pvm-not-plotted",
            measurements.measure_global_sum("pvm", "sun-ethernet", 1000, seed=seed) is None,
            "PVM supports no global operation",
        ),
        compare.check_ratio_band(
            "fig4/express-p4-gap",
            at_max["express-ethernet"],
            at_max["p4-ethernet"],
            low=1.3,
            high=4.0,
        ),
    ]
    for name, values in series.items():
        checks.append(compare.check_monotone_increasing("fig4/%s-grows" % name, values))
    return ExperimentResult("F4", "Global summation (Figure 4)", text, checks)


def run_apl_figure(
    platform: str,
    processors: Optional[Sequence[int]] = None,
    apps: Sequence[str] = ("fft2d", "jpeg", "montecarlo", "psrs"),
    tools: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Figures 5-8 — the four applications on one platform."""
    axes = paper_data.APL_PLATFORM_AXES[platform]
    if processors is None:
        # The paper plots 1..8 (1..4 on the WAN); sample the curve.
        full = axes["processors"]
        processors = [p for p in (1, 2, 4, 8) if p <= max(full)]
    if tools is None:
        tools = axes["tools"]

    blocks = []
    checks = []
    times: Dict[str, Dict[str, List[float]]] = {}
    for app_name in apps:
        times[app_name] = {}
        for tool in tools:
            times[app_name][tool] = [
                measurements.measure_application(
                    app_name, tool, platform, processors=p, seed=seed
                )
                for p in processors
            ]
        blocks.append(
            format_series(
                "P",
                processors,
                times[app_name],
                title="%s on %s" % (app_name, platform),
                unit="s",
                precision=4,
            )
        )
        # Headline claims: compute-heavy apps speed up; p4 leads the
        # communication-heavy ones (JPEG, FFT).
        for tool in tools:
            if app_name in ("jpeg", "montecarlo", "psrs"):
                checks.append(
                    compare.check_monotone_decreasing(
                        "%s/%s/%s-speedup" % (axes["figure"], app_name, tool),
                        times[app_name][tool],
                        slack=0.10,
                    )
                )
        if app_name in ("jpeg", "fft2d"):
            at_max_p = {tool: times[app_name][tool][-1] for tool in tools}
            best = min(at_max_p, key=lambda t: at_max_p[t])
            checks.append(
                compare.CheckResult(
                    "%s/%s/p4-best" % (axes["figure"], app_name),
                    best == "p4",
                    "best=%s (%s)" % (best, ", ".join("%s=%.3f" % i for i in at_max_p.items())),
                )
            )
    text = "\n\n".join(blocks)
    return ExperimentResult(
        axes["figure"].replace("Figure ", "F"),
        "%s applications (%s)" % (platform, axes["figure"]),
        text,
        checks,
    )


#: Experiment registry: id -> zero-argument callable.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig2-ethernet": lambda: run_fig2_broadcast("ethernet"),
    "fig2-atm": lambda: run_fig2_broadcast("atm"),
    "fig3-ethernet": lambda: run_fig3_ring("ethernet"),
    "fig3-atm": lambda: run_fig3_ring("atm"),
    "fig4": run_fig4_globalsum,
    "fig5": lambda: run_apl_figure("alpha-fddi"),
    "fig6": lambda: run_apl_figure("sp1-switch"),
    "fig7": lambda: run_apl_figure("sun-atm-wan"),
    "fig8": lambda: run_apl_figure("sun-ethernet"),
}
