"""The paper's published numbers and claims, as reference data.

Table 3 is the only artifact the paper publishes as exact numbers;
the figures publish axes and curves, so for them we record the
*claims* the text and plots make (orderings, monotonicity, axis
ranges from eyeballing the plots) and verify those.  EXPERIMENTS.md
documents this distinction.
"""

from __future__ import annotations

__all__ = [
    "TABLE3_RTT_MS",
    "TABLE3_SIZES_KB",
    "TABLE4_EXPECTED_RANKINGS",
    "FIGURE_CLAIMS",
    "APL_PLATFORM_AXES",
]

#: Table 3 — snd/recv round-trip times in milliseconds on SUN
#: SPARCstations, exactly as printed.  Keys: (tool, platform catalog
#: name); values: {message size KB: ms}.  Express was not measured on
#: the ATM WAN.
TABLE3_RTT_MS = {
    ("pvm", "sun-ethernet"): {
        0: 9.655, 1: 11.693, 2: 14.306, 4: 25.537,
        8: 44.392, 16: 61.096, 32: 109.844, 64: 189.120,
    },
    ("pvm", "sun-atm-lan"): {
        0: 7.991, 1: 8.678, 2: 9.896, 4: 13.673,
        8: 18.574, 16: 27.365, 32: 48.028, 64: 88.176,
    },
    ("pvm", "sun-atm-wan"): {
        0: 7.764, 1: 8.878, 2: 10.105, 4: 14.665,
        8: 19.526, 16: 28.679, 32: 53.320, 64: 91.353,
    },
    ("p4", "sun-ethernet"): {
        0: 3.199, 1: 3.599, 2: 4.399, 4: 9.332,
        8: 24.165, 16: 44.164, 32: 98.996, 64: 173.158,
    },
    ("p4", "sun-atm-lan"): {
        0: 2.966, 1: 3.393, 2: 3.748, 4: 4.404,
        8: 6.482, 16: 11.191, 32: 19.104, 64: 35.899,
    },
    ("p4", "sun-atm-wan"): {
        0: 3.636, 1: 4.168, 2: 4.822, 4: 5.069,
        8: 7.459, 16: 13.573, 32: 22.254, 64: 41.725,
    },
    ("express", "sun-ethernet"): {
        0: 4.807, 1: 10.375, 2: 18.362, 4: 32.669,
        8: 59.166, 16: 111.411, 32: 189.760, 64: 311.700,
    },
    ("express", "sun-atm-lan"): {
        0: 4.152, 1: 7.240, 2: 11.061, 4: 16.990,
        8: 27.047, 16: 46.003, 32: 82.566, 64: 153.970,
    },
}

#: The message sizes of Table 3, in KB.
TABLE3_SIZES_KB = (0, 1, 2, 4, 8, 16, 32, 64)

#: Table 4 — tool orderings (best first) per platform and primitive
#: class, exactly as printed.  The global-sum column omits PVM
#: ("Not Available") and the paper prints no ATM global-sum column.
TABLE4_EXPECTED_RANKINGS = {
    "sun-ethernet": {
        "snd/rcv": ["p4", "pvm", "express"],
        "broadcast": ["p4", "pvm", "express"],
        "ring": ["p4", "express", "pvm"],
        "global sum": ["p4", "express"],
    },
    "sun-atm-lan": {
        "snd/rcv": ["p4", "pvm", "express"],
        "broadcast": ["p4", "pvm"],
        "ring": ["p4", "pvm"],
    },
}

#: Claims carried by the figures (orderings at the large-message end,
#: which tools appear, and the printed y-axis range in ms for scale
#: context — axis ranges are documentation, not assertions).
FIGURE_CLAIMS = {
    "fig2-broadcast-ethernet": {
        "platform": "sun-ethernet",
        "tools": ["pvm", "p4", "express"],
        "large_message_order": ["p4", "pvm", "express"],
        "paper_axis_ms": (0, 600),
    },
    "fig2-broadcast-atm": {
        "platform": "sun-atm-wan",
        "tools": ["pvm", "p4"],
        "large_message_order": ["p4", "pvm"],
        "paper_axis_ms": (0, 350),
    },
    "fig3-ring-ethernet": {
        "platform": "sun-ethernet",
        "tools": ["pvm", "p4", "express"],
        "large_message_order": ["p4", "express", "pvm"],
        "paper_axis_ms": (0, 800),
    },
    "fig3-ring-atm": {
        "platform": "sun-atm-wan",
        "tools": ["pvm", "p4"],
        "large_message_order": ["p4", "pvm"],
        "paper_axis_ms": (0, 700),
    },
    "fig4-globalsum": {
        # Series: p4 and Express on Ethernet, p4 on NYNET.
        "series": ["p4-ethernet", "express-ethernet", "p4-nynet"],
        "order": ["p4-ethernet", "p4-nynet", "express-ethernet"],
        "paper_axis_ms": (0, 12000),
        "max_vector_ints": 100_000,
    },
}

#: Figures 5-8 — per-platform application panels: the y-axis ranges
#: printed in the paper (seconds), for scale context in EXPERIMENTS.md,
#: and the tool set plotted.
APL_PLATFORM_AXES = {
    "alpha-fddi": {
        "figure": "Figure 5",
        "processors": (1, 2, 3, 4, 5, 6, 7, 8),
        "tools": ["express", "p4", "pvm"],
        "paper_axis_seconds": {
            "fft2d": (0.004, 0.014),
            "jpeg": (1.0, 4.5),
            "montecarlo": (0.2, 1.8),
            "psrs": (0.4, 0.85),
        },
    },
    "sp1-switch": {
        "figure": "Figure 6",
        "processors": (1, 2, 3, 4, 5, 6, 7, 8),
        "tools": ["express", "p4", "pvm"],
        "paper_axis_seconds": {
            "fft2d": (0.0, 0.06),
            "jpeg": (1.0, 10.0),
            "montecarlo": (0.0, 3.0),
            "psrs": (0.8, 2.2),
        },
    },
    "sun-atm-wan": {
        "figure": "Figure 7",
        "processors": (1, 2, 3, 4),
        "tools": ["p4", "pvm"],
        "paper_axis_seconds": {
            "fft2d": (0.01, 0.026),
            "jpeg": (6.0, 22.0),
            "montecarlo": (2.0, 8.0),
            "psrs": (1.0, 10.0),
        },
    },
    "sun-ethernet": {
        "figure": "Figure 8",
        "processors": (1, 2, 3, 4, 5, 6, 7, 8),
        "tools": ["express", "p4", "pvm"],
        "paper_axis_seconds": {
            "fft2d": (0.0, 1.4),
            "jpeg": (5.0, 40.0),
            "montecarlo": (2.0, 10.0),
            "psrs": (2.0, 22.0),
        },
    },
}
