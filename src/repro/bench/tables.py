"""Plain-text table and series formatting for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Align columns; returns a printable table."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError("row has %d cells, expected %d" % (len(row), columns))
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
    unit: str = "ms",
    precision: int = 3,
) -> str:
    """One row per x value, one column per named series."""
    names = list(series)
    headers = [x_label] + ["%s (%s)" % (name, unit) for name in names]
    rows: List[List[str]] = []
    for index, x in enumerate(x_values):
        row = [str(x)]
        for name in names:
            value = series[name][index]
            row.append("n/a" if value is None else "%.*f" % (precision, value))
        rows.append(row)
    return format_table(headers, rows, title=title)
