"""Shape checks: does a measured artifact behave like the paper's?

Checks return :class:`CheckResult` objects rather than asserting, so
the same machinery drives both the printed experiment reports and the
benchmark assertions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "CheckResult",
    "check_ordering",
    "check_within_factor",
    "check_monotone_decreasing",
    "check_monotone_increasing",
    "check_ratio_band",
    "all_passed",
    "failures",
]


class CheckResult(object):
    """Outcome of one shape check."""

    __slots__ = ("name", "passed", "detail")

    def __init__(self, name: str, passed: bool, detail: str = "") -> None:
        self.name = name
        self.passed = bool(passed)
        self.detail = detail

    def __repr__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return "[%s] %s%s" % (status, self.name, (": " + self.detail) if self.detail else "")


def check_ordering(name: str, values: Dict[str, float], expected: Sequence[str]) -> CheckResult:
    """Do the values sort in the expected order (best=smallest first)?"""
    relevant = {key: values[key] for key in expected}
    measured = sorted(relevant, key=lambda key: relevant[key])
    passed = list(measured) == list(expected)
    detail = "expected %s, measured %s (%s)" % (
        list(expected),
        measured,
        ", ".join("%s=%.4g" % item for item in sorted(relevant.items())),
    )
    return CheckResult(name, passed, detail)


def check_within_factor(
    name: str, measured: float, reference: float, factor: float
) -> CheckResult:
    """Is ``measured`` within [reference/factor, reference*factor]?"""
    if reference <= 0 or measured <= 0:
        return CheckResult(name, False, "non-positive values")
    ratio = measured / reference
    passed = (1.0 / factor) <= ratio <= factor
    return CheckResult(
        name, passed, "measured/reference = %.3f (allowed %.2fx)" % (ratio, factor)
    )


def check_monotone_decreasing(
    name: str, series: Sequence[float], slack: float = 0.0
) -> CheckResult:
    """Does the series decrease (within a relative slack per step)?"""
    violations = [
        (i, series[i], series[i + 1])
        for i in range(len(series) - 1)
        if series[i + 1] > series[i] * (1.0 + slack)
    ]
    detail = "series=%s" % (["%.4g" % v for v in series],)
    if violations:
        detail += "; violations at %s" % ([v[0] for v in violations],)
    return CheckResult(name, not violations, detail)


def check_monotone_increasing(
    name: str, series: Sequence[float], slack: float = 0.0
) -> CheckResult:
    """Does the series increase (within a relative slack per step)?"""
    violations = [
        i
        for i in range(len(series) - 1)
        if series[i + 1] < series[i] * (1.0 - slack)
    ]
    detail = "series=%s" % (["%.4g" % v for v in series],)
    if violations:
        detail += "; violations at %s" % (violations,)
    return CheckResult(name, not violations, detail)


def check_ratio_band(
    name: str,
    numerator: float,
    denominator: float,
    low: float,
    high: Optional[float] = None,
) -> CheckResult:
    """Is numerator/denominator inside [low, high]?"""
    if denominator <= 0:
        return CheckResult(name, False, "non-positive denominator")
    ratio = numerator / denominator
    passed = ratio >= low and (high is None or ratio <= high)
    bound = ">= %.2f" % low if high is None else "in [%.2f, %.2f]" % (low, high)
    return CheckResult(name, passed, "ratio %.3f (%s)" % (ratio, bound))


def all_passed(checks: Sequence[CheckResult]) -> bool:
    return all(check.passed for check in checks)


def failures(checks: Sequence[CheckResult]) -> List[CheckResult]:
    return [check for check in checks if not check.passed]
