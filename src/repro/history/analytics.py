"""History analytics: trends, failure patterns, recommendations.

Where :mod:`repro.history.diff` compares two runs and
:mod:`repro.history.leaderboard` ranks one window, this module reads
the history *as a trajectory*:

* :func:`trend` pulls one cell family's (or one bench metric's)
  per-run series out of the store's SQL-side aggregates, oldest first,
  and judges its direction;
* :func:`analyze_history` walks consecutive run pairs to cluster
  failure patterns — cells that regress repeatedly, tools whose
  primitives are structurally unmeasured — and turns what it finds
  into plain-text recommendations, in the spirit of evaluation
  dashboards that pair a confusion matrix with "what to fix next".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import HistoryError
from repro.history.diff import Tolerances, diff_cells
from repro.history.leaderboard import Leaderboard, leaderboards

__all__ = ["TrendSeries", "trend", "HistoryAnalysis", "analyze_history"]


@dataclass(frozen=True)
class TrendSeries:
    """One quantity's per-run series, oldest first."""

    label: str
    unit: str                      # "seconds" or "value"
    points: List[Dict] = field(default_factory=list)

    @property
    def values(self) -> List[float]:
        key = "mean_seconds" if self.unit == "seconds" else "value"
        return [float(point[key]) for point in self.points]

    def direction(self, tolerance: float = 0.02) -> str:
        """``improving`` / ``regressing`` / ``flat`` / ``empty``.

        First-vs-last relative movement against ``tolerance``; the
        unit decides polarity (seconds regress upward, bench metric
        values are reported raw as ``up``/``down`` since the gate's
        tolerance table, not this summary, knows their polarity).
        """
        values = self.values
        if len(values) < 2:
            return "empty" if not values else "flat"
        first, last = values[0], values[-1]
        if first == 0:
            moved = last != 0
            upward = last > 0
        else:
            relative = (last - first) / abs(first)
            moved = abs(relative) > tolerance
            upward = relative > 0
        if not moved:
            return "flat"
        if self.unit == "seconds":
            return "regressing" if upward else "improving"
        return "up" if upward else "down"

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "unit": self.unit,
            "direction": self.direction(),
            "points": list(self.points),
        }

    def render(self) -> str:
        lines = ["%s (%s, %d point%s, %s)" % (
            self.label, self.unit, len(self.points),
            "" if len(self.points) == 1 else "s", self.direction(),
        )]
        key = "mean_seconds" if self.unit == "seconds" else "value"
        for point in self.points:
            lines.append("  %-14s %-10s %.6g" % (
                point["run_id"], point.get("git_sha") or "-",
                float(point[key]),
            ))
        return "\n".join(lines)


def trend(
    store,
    metric: Optional[str] = None,
    platform: Optional[str] = None,
    tool: Optional[str] = None,
    kind: Optional[str] = None,
    size: Optional[int] = None,
    limit: Optional[int] = None,
) -> TrendSeries:
    """One trend series: either a bench ``metric`` path, or an
    evaluation cell family named by ``platform``/``tool``/``kind``
    (optionally one ``size``)."""
    if metric is not None:
        if platform or tool or kind or size is not None:
            raise HistoryError(
                "a metric trend and a sample trend are different queries — "
                "pass either metric, or platform/tool/kind"
            )
        return TrendSeries(
            label=metric, unit="value",
            points=store.metric_trend(metric, limit=limit),
        )
    if not (platform and tool and kind):
        raise HistoryError(
            "a sample trend needs platform, tool and kind (plus an optional "
            "size); a bench trend needs a metric path"
        )
    label = "%s %s@%s" % (kind, tool, platform)
    if size is not None:
        label += " size=%d" % size
    return TrendSeries(
        label=label, unit="seconds",
        points=store.sample_trend(platform, tool, kind, size=size, limit=limit),
    )


class HistoryAnalysis(object):
    """What the recorded history says about the tools, in one object."""

    def __init__(
        self,
        window_ids: List[str],
        boards: List[Leaderboard],
        repeat_regressions: List[Dict],
        unmeasured: List[Dict],
        recommendations: List[str],
    ) -> None:
        self.window_ids = list(window_ids)
        self.boards = list(boards)
        self.repeat_regressions = list(repeat_regressions)
        self.unmeasured = list(unmeasured)
        self.recommendations = list(recommendations)

    def to_dict(self) -> dict:
        return {
            "window": self.window_ids,
            "leaderboards": [board.to_dict() for board in self.boards],
            "repeat_regressions": list(self.repeat_regressions),
            "unmeasured": list(self.unmeasured),
            "recommendations": list(self.recommendations),
        }

    def render(self) -> str:
        lines = ["history analysis over %d run(s)" % len(self.window_ids)]
        for board in self.boards:
            lines.append("")
            lines.append(board.render())
        if self.repeat_regressions:
            lines.append("")
            lines.append("repeat regressions (cell, times regressed):")
            for entry in self.repeat_regressions:
                lines.append("  %s  x%d" % (entry["cell"], entry["count"]))
        if self.unmeasured:
            lines.append("")
            lines.append("structurally unmeasured cells (latest run):")
            for entry in self.unmeasured:
                lines.append("  %-10s %-12s %d cell(s)" % (
                    entry["tool"], entry["kind"], entry["cells"],
                ))
        lines.append("")
        lines.append("recommendations:")
        for recommendation in self.recommendations or ["- nothing stands out"]:
            lines.append("  %s" % recommendation)
        return "\n".join(lines)


def analyze_history(
    store,
    window: int = 10,
    tolerances: Optional[Tolerances] = None,
    confidence: float = 0.95,
) -> HistoryAnalysis:
    """Failure patterns and recommendations over the latest ``window``
    evaluation runs.

    Walks the window's consecutive run pairs through the diff engine
    and clusters the verdicts: a cell that regresses in two or more
    adjacent pairs is a *repeat offender* (real drift, not one noisy
    commit), and a tool whose cells are N/A in the latest run is
    *structurally unmeasured* there (the paper's PVM-has-no-global-sum
    case).  Each cluster yields one recommendation line.
    """
    runs = store.list_runs(kind="evaluation", limit=window)
    window_ids = [run["run_id"] for run in runs]       # newest first
    boards = leaderboards(store, window=window, confidence=confidence)
    tolerances = tolerances if tolerances is not None else Tolerances()

    regress_counts: Dict[str, int] = {}
    chronological = list(reversed(window_ids))
    cell_maps = {run_id: store.cells(run_id) for run_id in chronological}
    for older, newer in zip(chronological, chronological[1:]):
        diff = diff_cells(
            cell_maps[older], cell_maps[newer],
            baseline_id=older, current_id=newer,
            tolerances=tolerances, confidence=confidence,
        )
        for cell in diff.regressions:
            label = cell.label()
            regress_counts[label] = regress_counts.get(label, 0) + 1
    repeat_regressions = [
        {"cell": label, "count": count}
        for label, count in sorted(
            regress_counts.items(), key=lambda item: (-item[1], item[0])
        )
        if count >= 2
    ]

    unmeasured: List[Dict] = []
    if window_ids:
        missing: Dict[tuple, int] = {}
        for key, seeds in sorted(cell_maps[window_ids[0]].items()):
            if all(value is None for value in seeds.values()):
                tool, kind = key[1], key[2]
                missing[(tool, kind)] = missing.get((tool, kind), 0) + 1
        unmeasured = [
            {"tool": tool, "kind": kind, "cells": count}
            for (tool, kind), count in sorted(missing.items())
        ]

    recommendations: List[str] = []
    for entry in repeat_regressions:
        recommendations.append(
            "- %s regressed in %d consecutive-run diffs: real drift, "
            "bisect the commits in this window" % (entry["cell"], entry["count"])
        )
    for entry in unmeasured:
        recommendations.append(
            "- %s has no measurable %s cells: scored on fallback behaviour, "
            "compare tools on their shared primitives before ranking on this"
            % (entry["tool"], entry["kind"])
        )
    for board in boards:
        if len(board.rows) >= 2:
            top, runner = board.rows[0], board.rows[1]
            gap = top.stats.mean - runner.stats.mean
            spread = top.stats.ci_halfwidth + runner.stats.ci_halfwidth
            if gap <= spread:
                recommendations.append(
                    "- %s/%s: %s leads %s by %.3f but the CIs overlap — "
                    "add seeds or runs before calling a winner"
                    % (board.platform, board.profile, top.tool, runner.tool, gap)
                )
    return HistoryAnalysis(
        window_ids, boards, repeat_regressions, unmeasured, recommendations,
    )
