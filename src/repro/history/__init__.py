"""Regression intelligence: the persistent run-history subsystem.

Every :class:`~repro.core.results.ResultSet` the repo produces is
ephemeral — one process's view of one measurement pass.  This package
is the memory on top: a :class:`HistoryStore` appends each run (full
export JSON plus spec hash, git SHA, timestamp and provenance, with a
denormalized ``samples`` table for SQL-side aggregation), the diff
engine aligns two runs cell by cell and judges each delta with the
multi-seed Student-t machinery from :mod:`repro.core.stats`, the
analytics layer ranks tools and spots repeat offenders over the
recorded history, and the gate turns a diff into a CI exit code.

Surfaced as ``repro history record|list|show|diff|leaderboard|trend|
gate``, as ``run_evaluation(history_db=...)`` / ``repro evaluate
--history-db``, and as the service's ``GET /api/history/...`` read
endpoints.
"""

from repro.history.analytics import HistoryAnalysis, TrendSeries, analyze_history, trend
from repro.history.diff import CellDelta, RunDiff, Tolerances, diff_runs
from repro.history.gate import GateVerdict, run_gate
from repro.history.leaderboard import Leaderboard, LeaderboardRow, leaderboards
from repro.history.store import SCHEMA_VERSION, HistoryStore, current_git_sha

__all__ = [
    "SCHEMA_VERSION",
    "HistoryStore",
    "current_git_sha",
    "CellDelta",
    "RunDiff",
    "Tolerances",
    "diff_runs",
    "GateVerdict",
    "run_gate",
    "Leaderboard",
    "LeaderboardRow",
    "leaderboards",
    "HistoryAnalysis",
    "TrendSeries",
    "analyze_history",
    "trend",
]
