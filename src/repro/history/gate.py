"""The CI perf gate: a run diff reduced to an exit code.

``repro history diff`` is informational — it always exits 0 so humans
can browse movement freely.  The gate is the enforcing twin: it diffs
a candidate run against a baseline and **fails** (exit 1) when the
candidate regressed, using the same tolerance table, so "did this PR
slow the simulator down?" is one command in CI:

    repro history gate --db history.db latest~1 latest

A gate failure names every offending cell; a pass lists what moved
within tolerance, so a quiet gate is still auditable.
"""

from __future__ import annotations

from typing import List, Optional

from repro.history.diff import RunDiff, Tolerances, diff_runs

__all__ = ["GateVerdict", "run_gate"]


class GateVerdict(object):
    """One gate decision: the diff it judged, and why it passed/failed."""

    def __init__(
        self,
        diff: RunDiff,
        passed: bool,
        reasons: List[str],
        max_regressions: int = 0,
        fail_on_removed: bool = False,
    ) -> None:
        self.diff = diff
        self.passed = passed
        self.reasons = list(reasons)
        self.max_regressions = max_regressions
        self.fail_on_removed = fail_on_removed

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "exit_code": self.exit_code,
            "max_regressions": self.max_regressions,
            "fail_on_removed": self.fail_on_removed,
            "reasons": list(self.reasons),
            "diff": self.diff.to_dict(),
        }

    def render(self) -> str:
        lines = [self.diff.render()]
        lines.append("")
        if self.passed:
            lines.append("GATE PASS: no disqualifying movement")
        else:
            lines.append("GATE FAIL:")
            for reason in self.reasons:
                lines.append("  %s" % reason)
        return "\n".join(lines)


def judge(
    diff: RunDiff,
    max_regressions: int = 0,
    fail_on_removed: bool = False,
) -> GateVerdict:
    """Apply the gate policy to an already-computed diff.

    Policy: more than ``max_regressions`` regression cells fails; with
    ``fail_on_removed``, cells that vanished from the grid fail too
    (a shrunken spec can hide a regression by deleting its cell).
    Improvements and within-tolerance noise never fail.
    """
    reasons: List[str] = []
    regressions = diff.regressions
    if len(regressions) > max_regressions:
        for cell in regressions:
            reasons.append(
                "regression: %s  %+.3g s (%+.1f%%, tolerance %.1f%%)" % (
                    cell.label(), cell.delta,
                    (cell.relative or 0.0) * 100, (cell.tolerance or 0.0) * 100,
                )
            )
        if max_regressions:
            reasons.append(
                "%d regression(s) exceed the allowance of %d"
                % (len(regressions), max_regressions)
            )
    if fail_on_removed:
        removed = diff.by_classification()["removed"]
        for cell in removed:
            reasons.append("removed from grid: %s" % cell.label())
    return GateVerdict(
        diff, passed=not reasons, reasons=reasons,
        max_regressions=max_regressions, fail_on_removed=fail_on_removed,
    )


def run_gate(
    store,
    baseline_ref: str,
    current_ref: str,
    tolerances: Optional[Tolerances] = None,
    confidence: float = 0.95,
    max_regressions: int = 0,
    fail_on_removed: bool = False,
) -> GateVerdict:
    """Diff two stored runs and gate on the result."""
    diff = diff_runs(
        store, baseline_ref, current_ref,
        tolerances=tolerances, confidence=confidence,
    )
    return judge(diff, max_regressions=max_regressions,
                 fail_on_removed=fail_on_removed)
