"""Tool leaderboards over the recorded history.

A leaderboard answers the paper's headline question — *which tool wins
on this platform, under this weighting profile?* — but over the last N
recorded runs instead of one: each (platform, profile) pair ranks its
tools by the mean overall score across the window's runs, with the
same Student-t spread the single-run reports print.  Overall scores
are higher-is-better (see :class:`~repro.core.evaluation.ToolRanking`),
and ties break on the tool name so the ordering is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.stats import SampleStats, summarize
from repro.errors import HistoryError

__all__ = ["LeaderboardRow", "Leaderboard", "leaderboards"]


@dataclass(frozen=True)
class LeaderboardRow:
    """One tool's standing on one (platform, profile) board."""

    rank: int
    tool: str
    stats: SampleStats          # overall score across the window's runs
    runs: int                   # runs in the window that scored this tool
    latest: Optional[float]     # the newest run's score, for trend-spotting

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "tool": self.tool,
            "score": self.stats.to_dict(),
            "runs": self.runs,
            "latest": self.latest,
        }


class Leaderboard(object):
    """One (platform, profile) ranking over a window of runs."""

    def __init__(
        self,
        platform: str,
        profile: str,
        run_ids: List[str],
        rows: List[LeaderboardRow],
    ) -> None:
        self.platform = platform
        self.profile = profile
        self.run_ids = list(run_ids)
        self.rows = list(rows)

    @property
    def winner(self) -> Optional[str]:
        return self.rows[0].tool if self.rows else None

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "profile": self.profile,
            "runs": self.run_ids,
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self) -> str:
        lines = [
            "%s / %s (over %d run%s)" % (
                self.platform, self.profile, len(self.run_ids),
                "" if len(self.run_ids) == 1 else "s",
            )
        ]
        for row in self.rows:
            lines.append(
                "  %d. %-10s %.3f ±%.3f  (%d run%s, latest %.3f)" % (
                    row.rank, row.tool, row.stats.mean,
                    row.stats.ci_halfwidth, row.runs,
                    "" if row.runs == 1 else "s",
                    row.latest if row.latest is not None else float("nan"),
                )
            )
        return "\n".join(lines)


def leaderboards(
    store,
    window: int = 10,
    platform: Optional[str] = None,
    profile: Optional[str] = None,
    confidence: float = 0.95,
) -> List[Leaderboard]:
    """Rank tools per (platform, profile) over the latest ``window``
    evaluation runs.

    Each contributing value is one run's mean overall score for that
    cell (the run already averaged its own seeds), so a noisy run
    counts once — the window axis measures stability *across* commits,
    not across seeds.  Boards come back sorted by (platform, profile);
    rows by score descending, then tool name.
    """
    if window < 1:
        raise HistoryError("leaderboard window must be >= 1, got %d" % window)
    runs = store.list_runs(kind="evaluation", limit=window)
    run_ids = [run["run_id"] for run in runs]          # newest first
    order = {run_id: index for index, run_id in enumerate(run_ids)}
    # (platform, profile, tool) -> [(recency index, mean score), ...]
    cells: Dict[Tuple[str, str, str], List[Tuple[int, float]]] = {}
    for row in store.scores_for(run_ids):
        if platform is not None and row["platform"] != platform:
            continue
        if profile is not None and row["profile"] != profile:
            continue
        key = (row["platform"], row["profile"], row["tool"])
        cells.setdefault(key, []).append((order[row["run_id"]], row["mean"]))
    boards: Dict[Tuple[str, str], List[Tuple[str, SampleStats, int, float]]] = {}
    for (plat, prof, tool), scored in sorted(cells.items()):
        scored.sort()                                   # newest first
        values = [score for _, score in scored]
        boards.setdefault((plat, prof), []).append(
            (tool, summarize(values, confidence), len(values), scored[0][1])
        )
    result = []
    for (plat, prof), entries in sorted(boards.items()):
        entries.sort(key=lambda entry: (-entry[1].mean, entry[0]))
        rows = [
            LeaderboardRow(rank=index + 1, tool=tool, stats=stats,
                           runs=count, latest=latest)
            for index, (tool, stats, count, latest) in enumerate(entries)
        ]
        result.append(Leaderboard(plat, prof, run_ids, rows))
    return result
