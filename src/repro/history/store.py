"""The run-history store: every recorded run, forever (SQLite, WAL).

One row per recorded run — the full :class:`~repro.core.results.ResultSet`
export JSON plus provenance (spec hash, git SHA, wall-clock timestamp,
noise/engine/backend, who recorded it) — and three denormalized tables
the analytics layer aggregates **in SQL** instead of re-parsing every
export:

* ``samples`` — one row per measurement, keyed by the spec cell
  ``(platform, tool, kind, size, seed)`` (plus the full canonical
  params and processor count, which complete the cell identity).  The
  diff engine and trend queries read these.
* ``scores`` — one row per (platform, profile, tool) statistics cell:
  the mean overall score across the run's seeds.  Leaderboards rank
  over these.
* ``metrics`` — flattened ``BENCH_*.json`` metric paths for bench-type
  runs, so the perf trajectory and the evaluation history live in one
  database (``scripts/bench_report.py --history-db``).

The store mirrors :class:`~repro.service.store.RunStore`'s concurrency
model: one connection serialized behind a lock, WAL so readers never
block the writer (the service's watcher threads append while the HTTP
history endpoints read).  ``PRAGMA user_version`` stamps the schema
generation; opening a database written by a different generation
raises :class:`~repro.errors.HistoryError` instead of silently
misreading rows — history is the one artifact that must never be
quietly reinterpreted.
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import HistoryError
from repro.service.store import spec_hash

__all__ = [
    "SCHEMA_VERSION",
    "RUN_KINDS",
    "HistoryStore",
    "current_git_sha",
    "flatten_metrics",
]

#: Schema generation stamped into ``PRAGMA user_version``.  Bump this
#: when the tables change shape; old databases are then refused with a
#: message naming both generations (the migration path is deliberate:
#: re-record, or migrate offline — never guess).
SCHEMA_VERSION = 1

#: What a recorded run can be: a full evaluation export, or a
#: ``BENCH_*.json`` benchmark report.
RUN_KINDS = ("evaluation", "bench")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    label        TEXT,
    source       TEXT NOT NULL,
    recorded_at  REAL NOT NULL,
    git_sha      TEXT,
    spec_hash    TEXT,
    engine       TEXT,
    backend      TEXT,
    noise        REAL NOT NULL DEFAULT 0,
    simulated    INTEGER,
    cache_hits   INTEGER,
    wall_seconds REAL,
    payload_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_by_time ON runs (recorded_at, run_id);
CREATE TABLE IF NOT EXISTS samples (
    run_id     TEXT NOT NULL,
    platform   TEXT NOT NULL,
    tool       TEXT NOT NULL,
    kind       TEXT NOT NULL,
    size       INTEGER,
    params     TEXT NOT NULL,
    processors INTEGER NOT NULL,
    seed       INTEGER NOT NULL,
    seconds    REAL
);
CREATE INDEX IF NOT EXISTS samples_by_run ON samples (run_id);
CREATE INDEX IF NOT EXISTS samples_by_cell
    ON samples (platform, tool, kind, size, seed);
CREATE TABLE IF NOT EXISTS scores (
    run_id   TEXT NOT NULL,
    platform TEXT NOT NULL,
    profile  TEXT NOT NULL,
    tool     TEXT NOT NULL,
    mean     REAL NOT NULL,
    stddev   REAL NOT NULL,
    n        INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS scores_by_run ON scores (run_id);
CREATE TABLE IF NOT EXISTS metrics (
    run_id TEXT NOT NULL,
    path   TEXT NOT NULL,
    value  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS metrics_by_run ON metrics (run_id);
"""

#: Sample params whose value is the cell's "size" axis, in lookup
#: order (a sendrecv/broadcast/ring job has ``nbytes``, a global sum
#: has ``vector_ints``; applications have neither and store NULL).
_SIZE_PARAMS = ("nbytes", "vector_ints")


def current_git_sha(short: bool = True) -> Optional[str]:
    """The working tree's HEAD commit, or ``None`` outside a checkout.

    Recording provenance must never make recording fail: any git
    breakage (no binary, not a repo, fresh repo without commits) reads
    as "unknown".
    """
    cmd = ["git", "rev-parse", "--short", "HEAD"] if short else [
        "git", "rev-parse", "HEAD"]
    try:
        sha = subprocess.run(
            cmd, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return sha or None
    except (OSError, subprocess.SubprocessError):
        return None


def flatten_metrics(node: Any, prefix: Tuple[str, ...] = ()) -> Dict[str, float]:
    """Flatten a benchmark report's nested numbers to dotted paths.

    Matches ``scripts/bench_report.py``'s view of a report (sorted
    keys, numbers only, booleans excluded) so the metric paths stored
    here diff cleanly against the paths the CI gate enforces.
    """
    out: Dict[str, float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            out.update(flatten_metrics(node[key], prefix + (key,)))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[".".join(prefix)] = float(node)
    return out


def _sample_row(run_id: str, sample: Dict[str, Any]) -> Tuple:
    params = dict(sample.get("params") or {})
    size = None
    for name in _SIZE_PARAMS:
        if name in params:
            size = int(params[name])
            break
    return (
        run_id,
        sample["platform"],
        sample["tool"],
        sample["kind"],
        size,
        json.dumps(params, sort_keys=True, separators=(",", ":")),
        int(sample.get("processors") or 0),
        int(sample.get("seed") or 0),
        sample.get("seconds"),
    )


class HistoryStore(object):
    """Append-only run history with SQL-side aggregation views.

    One store may be shared by the CLI, the bench scripts and a
    service process; every method is thread-safe.  Runs are never
    mutated after :meth:`record_result` / :meth:`record_bench` —
    history is append-only by design (delete rows with sqlite3 if you
    must, but nothing in the repo ever will).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        # Single connection, serialized by our lock (same model as the
        # service's RunStore): check_same_thread off is safe because
        # no two threads ever use it concurrently.
        try:
            connection = sqlite3.connect(path, check_same_thread=False)
        except sqlite3.Error as error:
            raise HistoryError("cannot open %s (%s)" % (path, error))
        self._db = connection  # guarded-by: _lock
        self._db.row_factory = sqlite3.Row
        self.recorded = 0  # guarded-by: _lock
        self.reads = 0  # guarded-by: _lock
        with self._lock:
            version = self._db.execute("PRAGMA user_version").fetchone()[0]
            if version not in (0, SCHEMA_VERSION):
                self._db.close()
                raise HistoryError(
                    "%s was written by history schema v%d; this build reads "
                    "v%d — refusing to reinterpret it (re-record into a "
                    "fresh database, or migrate offline)"
                    % (path, version, SCHEMA_VERSION)
                )
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)
            self._db.execute("PRAGMA user_version=%d" % SCHEMA_VERSION)
            self._db.commit()

    # -- recording -----------------------------------------------------

    def record_result(
        self,
        export: Dict[str, Any],
        label: Optional[str] = None,
        source: str = "api",
        git_sha: Optional[str] = None,
        engine: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> str:
        """Append one evaluation run; returns its generated run id.

        ``export`` is :meth:`ResultSet.to_dict` output (or the parsed
        JSON a ``repro evaluate --json`` run wrote): ``spec`` and
        ``samples`` are required, ``statistics`` feeds the scores
        table, ``telemetry`` (when present) supplies the counters and
        provenance defaults.
        """
        if not isinstance(export, dict) or not isinstance(export.get("spec"), dict):
            raise HistoryError(
                "not a results export (no 'spec' object) — record the JSON "
                "written by `repro evaluate --json` or ResultSet.to_dict()"
            )
        if not isinstance(export.get("samples"), list):
            raise HistoryError(
                "not a results export (no 'samples' list) — a spec alone "
                "records nothing worth diffing"
            )
        spec = export["spec"]
        telemetry = export.get("telemetry") or {}
        summary = telemetry.get("summary") or {}
        if engine is None:
            engines = sorted({
                job.get("engine", "event") for job in telemetry.get("jobs", ())
            })
            engine = ",".join(engines) if engines else None
        if backend is None:
            executors = summary.get("executors")
            backend = ",".join(executors) if executors else None
        sample_rows = [_sample_row("", sample) for sample in export["samples"]]
        score_rows = []
        for cell, tools in sorted((export.get("statistics") or {}).items()):
            platform, _, profile = cell.partition("/")
            for tool, stats in sorted(tools.items()):
                score_rows.append((
                    platform, profile, tool,
                    float(stats["mean"]), float(stats.get("stddev", 0.0)),
                    int(stats.get("n", 1)),
                ))
        with self._lock:
            run_id = self._fresh_id_locked()
            self._db.execute(
                "INSERT INTO runs (run_id, kind, label, source, recorded_at,"
                " git_sha, spec_hash, engine, backend, noise, simulated,"
                " cache_hits, wall_seconds, payload_json)"
                " VALUES (?, 'evaluation', ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id, label, source, time.time(), git_sha,
                    spec_hash(spec), engine, backend,
                    float(spec.get("noise", 0.0)),
                    summary.get("simulated"), summary.get("cache_hits"),
                    summary.get("total_wall_seconds"),
                    json.dumps(export, sort_keys=True),
                ),
            )
            self._db.executemany(
                "INSERT INTO samples (run_id, platform, tool, kind, size,"
                " params, processors, seed, seconds)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(run_id,) + row[1:] for row in sample_rows],
            )
            self._db.executemany(
                "INSERT INTO scores (run_id, platform, profile, tool, mean,"
                " stddev, n) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(run_id,) + row for row in score_rows],
            )
            self._db.commit()
            self.recorded += 1
        return run_id

    def record_bench(
        self,
        report: Dict[str, Any],
        label: Optional[str] = None,
        source: str = "bench",
        git_sha: Optional[str] = None,
    ) -> str:
        """Append one ``BENCH_*.json`` benchmark report.

        Metrics flatten to the same dotted paths
        ``scripts/bench_report.py`` compares, so a metric's trajectory
        can be queried straight out of the ``metrics`` table.
        """
        if not isinstance(report, dict) or not isinstance(report.get("metrics"), dict):
            raise HistoryError(
                "not a benchmark report (no 'metrics' mapping) — record a "
                "BENCH_*.json written by the benchmark scripts"
            )
        metrics = flatten_metrics({"metrics": report["metrics"]})
        if label is None:
            label = report.get("benchmark")
        with self._lock:
            run_id = self._fresh_id_locked()
            self._db.execute(
                "INSERT INTO runs (run_id, kind, label, source, recorded_at,"
                " git_sha, payload_json) VALUES (?, 'bench', ?, ?, ?, ?, ?)",
                (run_id, label, source, time.time(), git_sha,
                 json.dumps(report, sort_keys=True)),
            )
            self._db.executemany(
                "INSERT INTO metrics (run_id, path, value) VALUES (?, ?, ?)",
                [(run_id, path, value) for path, value in sorted(metrics.items())],
            )
            self._db.commit()
            self.recorded += 1
        return run_id

    def _fresh_id_locked(self) -> str:
        run_id = uuid.uuid4().hex[:12]
        while self._db.execute(
            "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone():  # pragma: no cover - astronomically rare
            run_id = uuid.uuid4().hex[:12]
        return run_id

    # -- reading -------------------------------------------------------

    @staticmethod
    def _summary_row(row: sqlite3.Row) -> Dict[str, Any]:
        return dict(row)

    def list_runs(
        self, kind: Optional[str] = None, limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Recorded runs newest-first, without the payload JSON."""
        if kind is not None and kind not in RUN_KINDS:
            raise HistoryError(
                "unknown run kind %r; known: %s" % (kind, ", ".join(RUN_KINDS))
            )
        query = ("SELECT run_id, kind, label, source, recorded_at, git_sha,"
                 " spec_hash, engine, backend, noise, simulated, cache_hits,"
                 " wall_seconds FROM runs")
        args: Tuple = ()
        if kind is not None:
            query += " WHERE kind = ?"
            args = (kind,)
        query += " ORDER BY recorded_at DESC, run_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            args = args + (int(limit),)
        with self._lock:
            self.reads += 1
            return [self._summary_row(row) for row in self._db.execute(query, args)]

    def get(self, run_id: str) -> Dict[str, Any]:
        """One run's full record, payload parsed back to a dict."""
        with self._lock:
            self.reads += 1
            row = self._db.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise HistoryError("unknown run %r" % run_id)
        record = dict(row)
        record["payload"] = json.loads(record.pop("payload_json"))
        return record

    def resolve(self, ref: str, kind: Optional[str] = None) -> str:
        """A run reference -> run id.

        Accepts an exact id, a unique id prefix, or the relative forms
        ``latest`` / ``latest~N`` (the N-th most recent run, optionally
        restricted to one ``kind``).  Ambiguity and misses raise
        :class:`~repro.errors.HistoryError` naming the candidates.
        """
        ref = ref.strip()
        if ref == "latest" or ref.startswith("latest~"):
            back = 0
            if ref != "latest":
                try:
                    back = int(ref.split("~", 1)[1])
                except ValueError:
                    raise HistoryError("malformed run reference %r" % ref)
                if back < 0:
                    raise HistoryError("malformed run reference %r" % ref)
            runs = self.list_runs(kind=kind, limit=back + 1)
            if len(runs) <= back:
                raise HistoryError(
                    "reference %r needs %d recorded run(s), the store has %d"
                    % (ref, back + 1, len(runs))
                )
            return runs[back]["run_id"]
        with self._lock:
            self.reads += 1
            rows = self._db.execute(
                "SELECT run_id FROM runs WHERE run_id = ? OR run_id LIKE ?"
                " ORDER BY run_id", (ref, ref + "%"),
            ).fetchall()
        ids = [row["run_id"] for row in rows]
        if ref in ids:
            return ref
        if len(ids) == 1:
            return ids[0]
        if not ids:
            raise HistoryError(
                "no recorded run matches %r (try `repro history list`)" % ref
            )
        raise HistoryError(
            "run reference %r is ambiguous: %s" % (ref, ", ".join(ids))
        )

    def samples_for(self, run_id: str) -> List[Dict[str, Any]]:
        """The denormalized sample rows of one run."""
        with self._lock:
            self.reads += 1
            rows = self._db.execute(
                "SELECT platform, tool, kind, size, params, processors,"
                " seed, seconds FROM samples WHERE run_id = ?"
                " ORDER BY platform, tool, kind, size, params, seed",
                (run_id,),
            ).fetchall()
        return [dict(row) for row in rows]

    def cells(self, run_id: str) -> Dict[Tuple, Dict[int, Optional[float]]]:
        """``(platform, tool, kind, params, processors) -> {seed: seconds}``
        for one run — the diff engine's alignment view."""
        grouped: Dict[Tuple, Dict[int, Optional[float]]] = {}
        for row in self.samples_for(run_id):
            key = (row["platform"], row["tool"], row["kind"], row["params"],
                   row["processors"])
            grouped.setdefault(key, {})[row["seed"]] = row["seconds"]
        return grouped

    def scores_for(self, run_ids: List[str]) -> List[Dict[str, Any]]:
        """Score rows of several runs (leaderboard's raw material)."""
        if not run_ids:
            return []
        marks = ",".join("?" for _ in run_ids)
        with self._lock:
            self.reads += 1
            rows = self._db.execute(
                "SELECT run_id, platform, profile, tool, mean, stddev, n"
                " FROM scores WHERE run_id IN (%s)"
                " ORDER BY platform, profile, tool, run_id" % marks,
                tuple(run_ids),
            ).fetchall()
        return [dict(row) for row in rows]

    def sample_trend(
        self,
        platform: str,
        tool: str,
        kind: str,
        size: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Per-run mean seconds of one cell family, oldest first —
        aggregated SQL-side over the denormalized samples."""
        query = (
            "SELECT s.run_id AS run_id, r.recorded_at AS recorded_at,"
            " r.git_sha AS git_sha, r.label AS label,"
            " AVG(s.seconds) AS mean_seconds, COUNT(s.seconds) AS n"
            " FROM samples s JOIN runs r ON r.run_id = s.run_id"
            " WHERE s.platform = ? AND s.tool = ? AND s.kind = ?"
        )
        args: List = [platform, tool, kind]
        if size is not None:
            query += " AND s.size = ?"
            args.append(int(size))
        query += " GROUP BY s.run_id ORDER BY r.recorded_at, s.run_id"
        with self._lock:
            self.reads += 1
            rows = self._db.execute(query, tuple(args)).fetchall()
        points = [dict(row) for row in rows]
        if limit is not None:
            points = points[-int(limit):]
        return points

    def metric_trend(
        self, path: str, limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Per-run values of one flattened bench metric, oldest first."""
        with self._lock:
            self.reads += 1
            rows = self._db.execute(
                "SELECT m.run_id AS run_id, r.recorded_at AS recorded_at,"
                " r.git_sha AS git_sha, r.label AS label, m.value AS value"
                " FROM metrics m JOIN runs r ON r.run_id = m.run_id"
                " WHERE m.path = ? ORDER BY r.recorded_at, m.run_id",
                (path,),
            ).fetchall()
        points = [dict(row) for row in rows]
        if limit is not None:
            points = points[-int(limit):]
        return points

    def stats(self) -> Dict[str, int]:
        """Store-level counters (what the lock annotations guard)."""
        with self._lock:
            return {"recorded": self.recorded, "reads": self.reads}

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<HistoryStore %s>" % self.path
