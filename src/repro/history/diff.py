"""Cross-run diffing: which cells moved, by how much, and does it matter.

Two recorded runs align by **spec cell** — ``(platform, tool, kind,
params, processors)`` — and each shared cell's per-seed samples become
a two-sample comparison:

* the per-side mean/stddev come from
  :func:`repro.core.stats.summarize` (the same Student-t machinery the
  reports use), and
* the delta carries a Welch two-sample confidence interval: standard
  error ``sqrt(sa²/na + sb²/nb)``, Welch–Satterthwaite degrees of
  freedom, critical value from :func:`repro.core.stats.t_critical`.
  A cell is *significant* when that interval excludes zero.

The degenerate cases degrade exactly like the rest of the repo's
statistics: a deterministic cell (single seed, or zero spread) has a
±0 interval, so **any** nonzero delta is significant — the simulator
is bit-reproducible, so a moved deterministic cell is a real change,
never noise.

Significance says "this moved"; the :class:`Tolerances` table says
"this moved *enough to care*".  A significant move within the cell's
relative tolerance classifies as ``noise``; beyond it, as
``regression`` (slower — samples are seconds, lower is better) or
``improvement``.  Cells present on one side only classify as
``added``/``removed``, and cells that are N/A on both sides (a tool
missing the primitive) as ``unmeasured``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.stats import SampleStats, summarize, t_critical
from repro.errors import HistoryError

__all__ = [
    "CLASSIFICATIONS",
    "Tolerances",
    "CellDelta",
    "RunDiff",
    "delta_interval",
    "diff_cells",
    "diff_runs",
]

#: Every verdict a cell can receive, in display order.
CLASSIFICATIONS = (
    "regression", "improvement", "noise", "added", "removed", "unmeasured",
)


@dataclass(frozen=True)
class Tolerances:
    """Per-metric relative tolerances for the regression verdicts.

    ``default`` applies to every cell; ``kinds`` overrides it per job
    kind (``sendrecv``, ``broadcast``, ``ring``, ``global_sum``,
    ``application``) — collective timings on shared media wobble more
    than point-to-point ones, so they earn looser floors.
    """

    default: float = 0.02
    kinds: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in [("default", self.default)] + sorted(self.kinds.items()):
            if not (isinstance(value, (int, float)) and math.isfinite(value)
                    and value >= 0):
                raise HistoryError(
                    "tolerance %r must be a finite non-negative fraction, "
                    "got %r" % (name, value)
                )

    def for_kind(self, kind: str) -> float:
        return float(self.kinds.get(kind, self.default))

    @classmethod
    def from_mapping(cls, data: Mapping) -> "Tolerances":
        data = dict(data)
        unknown = set(data) - {"default", "kinds"}
        if unknown:
            raise HistoryError(
                "unknown tolerance fields: %s (expected 'default' and/or "
                "'kinds')" % ", ".join(sorted(unknown))
            )
        return cls(
            default=float(data.get("default", cls.default)),
            kinds={str(k): float(v) for k, v in dict(data.get("kinds", {})).items()},
        )

    @classmethod
    def from_file(cls, path: str) -> "Tolerances":
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            raise HistoryError("cannot read tolerance file %s (%s)" % (path, error))
        if not isinstance(data, dict):
            raise HistoryError("tolerance file %s must hold a JSON object" % path)
        return cls.from_mapping(data)


def delta_interval(
    baseline: List[float], current: List[float], confidence: float = 0.95,
) -> Tuple[float, float]:
    """``(delta, ci_halfwidth)`` of ``mean(current) - mean(baseline)``.

    Welch's two-sample interval on the difference of means; sides with
    a single sample (or zero spread) contribute zero variance, and
    when *both* sides are spreadless the interval is exactly ±0 — the
    deterministic-simulator degenerate where any delta is exact.
    """
    stats_a, stats_b = summarize(baseline, confidence), summarize(current, confidence)
    delta = stats_b.mean - stats_a.mean
    var_a = (stats_a.stddev ** 2) / stats_a.n
    var_b = (stats_b.stddev ** 2) / stats_b.n
    se_sq = var_a + var_b
    if se_sq == 0.0:
        return delta, 0.0
    # Welch–Satterthwaite df.  A single-sample side has zero variance,
    # so it never divides by its zero (n - 1) term.
    denom = 0.0
    if stats_a.n > 1 and var_a > 0:
        denom += var_a ** 2 / (stats_a.n - 1)
    if stats_b.n > 1 and var_b > 0:
        denom += var_b ** 2 / (stats_b.n - 1)
    df = max(1, int(se_sq ** 2 / denom))
    return delta, t_critical(df, confidence) * math.sqrt(se_sq)


@dataclass(frozen=True)
class CellDelta:
    """One spec cell's movement between two runs."""

    platform: str
    tool: str
    kind: str
    params: str
    processors: int
    classification: str
    baseline: Optional[SampleStats] = None
    current: Optional[SampleStats] = None
    delta: Optional[float] = None
    relative: Optional[float] = None
    ci_halfwidth: Optional[float] = None
    significant: bool = False
    tolerance: Optional[float] = None

    def label(self) -> str:
        params = dict(json.loads(self.params)) if self.params else {}
        inner = ",".join("%s=%s" % item for item in sorted(params.items()))
        return "%s[%s] %s@%s/%d" % (
            self.kind, inner, self.tool, self.platform, self.processors,
        )

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "tool": self.tool,
            "kind": self.kind,
            "params": json.loads(self.params) if self.params else {},
            "processors": self.processors,
            "classification": self.classification,
            "baseline": self.baseline.to_dict() if self.baseline else None,
            "current": self.current.to_dict() if self.current else None,
            "delta_seconds": self.delta,
            "relative": self.relative,
            "ci_halfwidth": self.ci_halfwidth,
            "significant": self.significant,
            "tolerance": self.tolerance,
        }


class RunDiff(object):
    """Every cell's verdict for one (baseline, current) run pair."""

    def __init__(
        self,
        baseline_id: str,
        current_id: str,
        cells: List[CellDelta],
        confidence: float = 0.95,
    ) -> None:
        self.baseline_id = baseline_id
        self.current_id = current_id
        self.cells = list(cells)
        self.confidence = confidence

    def by_classification(self) -> Dict[str, List[CellDelta]]:
        grouped: Dict[str, List[CellDelta]] = {
            name: [] for name in CLASSIFICATIONS
        }
        for cell in self.cells:
            grouped[cell.classification].append(cell)
        return grouped

    @property
    def regressions(self) -> List[CellDelta]:
        return [c for c in self.cells if c.classification == "regression"]

    @property
    def improvements(self) -> List[CellDelta]:
        return [c for c in self.cells if c.classification == "improvement"]

    @property
    def moved(self) -> List[CellDelta]:
        return [c for c in self.cells
                if c.classification in ("regression", "improvement")]

    def summary(self) -> Dict[str, int]:
        return {name: len(cells) for name, cells in self.by_classification().items()}

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_id,
            "current": self.current_id,
            "confidence": self.confidence,
            "summary": self.summary(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def render(self, show_all: bool = False) -> str:
        """A human-readable diff table.

        By default only moved/added/removed cells print (a clean diff
        is one summary line); ``show_all`` includes every cell.
        """
        lines = [
            "diff %s (baseline) -> %s (current), %g%% CI"
            % (self.baseline_id, self.current_id, self.confidence * 100)
        ]
        rows = [cell for cell in self.cells
                if show_all or cell.classification not in ("noise", "unmeasured")]
        if rows:
            width = max(len(cell.label()) for cell in rows)
            lines.append("%-*s %14s %14s %10s %12s  %s" % (
                width, "cell", "baseline", "current", "delta", "rel ±CI",
                "verdict",
            ))
            for cell in rows:
                if cell.delta is None:
                    lines.append("%-*s %14s %14s %10s %12s  %s" % (
                        width, cell.label(),
                        "-" if cell.baseline is None else "%.6g" % cell.baseline.mean,
                        "-" if cell.current is None else "%.6g" % cell.current.mean,
                        "-", "-", cell.classification.upper(),
                    ))
                    continue
                rel = ("%+.1f%%" % (cell.relative * 100)
                       if cell.relative is not None else "n/a")
                lines.append("%-*s %14.6g %14.6g %+10.3g %12s  %s%s" % (
                    width, cell.label(), cell.baseline.mean, cell.current.mean,
                    cell.delta, "%s ±%.3g" % (rel, cell.ci_halfwidth),
                    cell.classification.upper(),
                    "" if cell.significant else " (not significant)",
                ))
        counts = self.summary()
        lines.append(
            "%d cell(s): %d regression(s), %d improvement(s), %d within "
            "noise/tolerance, %d added, %d removed, %d unmeasured"
            % (len(self.cells), counts["regression"], counts["improvement"],
               counts["noise"], counts["added"], counts["removed"],
               counts["unmeasured"])
        )
        return "\n".join(lines)


def _classify(
    key: Tuple,
    base_seeds: Optional[Dict[int, Optional[float]]],
    cur_seeds: Optional[Dict[int, Optional[float]]],
    tolerances: Tolerances,
    confidence: float,
) -> CellDelta:
    platform, tool, kind, params, processors = key
    base_values = ([v for v in base_seeds.values() if v is not None]
                   if base_seeds else [])
    cur_values = ([v for v in cur_seeds.values() if v is not None]
                  if cur_seeds else [])
    fields = dict(platform=platform, tool=tool, kind=kind, params=params,
                  processors=processors)
    if base_seeds is None:
        return CellDelta(
            classification="added",
            current=summarize(cur_values, confidence) if cur_values else None,
            **fields,
        )
    if cur_seeds is None:
        return CellDelta(
            classification="removed",
            baseline=summarize(base_values, confidence) if base_values else None,
            **fields,
        )
    if not base_values and not cur_values:
        # N/A on both sides (e.g. PVM's missing global reduction):
        # aligned, but there is nothing to compare.
        return CellDelta(classification="unmeasured", **fields)
    if not base_values or not cur_values:
        # Measured on one side only — surface it like a membership
        # change, not a numeric move.
        return CellDelta(
            classification="added" if not base_values else "removed",
            baseline=summarize(base_values, confidence) if base_values else None,
            current=summarize(cur_values, confidence) if cur_values else None,
            **fields,
        )
    stats_a = summarize(base_values, confidence)
    stats_b = summarize(cur_values, confidence)
    delta, halfwidth = delta_interval(base_values, cur_values, confidence)
    relative = (delta / stats_a.mean) if stats_a.mean != 0 else None
    significant = abs(delta) > halfwidth if halfwidth > 0 else delta != 0.0
    tolerance = tolerances.for_kind(kind)
    if not significant:
        classification = "noise"
    elif relative is not None and abs(relative) <= tolerance:
        classification = "noise"
    elif delta > 0:
        classification = "regression"  # seconds: up is slower
    else:
        classification = "improvement"
    return CellDelta(
        classification=classification,
        baseline=stats_a,
        current=stats_b,
        delta=delta,
        relative=relative,
        ci_halfwidth=halfwidth,
        significant=significant,
        tolerance=tolerance,
        **fields,
    )


def diff_cells(
    baseline_cells: Dict[Tuple, Dict[int, Optional[float]]],
    current_cells: Dict[Tuple, Dict[int, Optional[float]]],
    baseline_id: str = "baseline",
    current_id: str = "current",
    tolerances: Optional[Tolerances] = None,
    confidence: float = 0.95,
) -> RunDiff:
    """Align two cell maps (see :meth:`HistoryStore.cells`) and judge
    every cell.  Pure function of its inputs — the unit the tests
    hand-check."""
    tolerances = tolerances if tolerances is not None else Tolerances()
    deltas = []
    for key in sorted(set(baseline_cells) | set(current_cells)):
        deltas.append(_classify(
            key, baseline_cells.get(key), current_cells.get(key),
            tolerances, confidence,
        ))
    return RunDiff(baseline_id, current_id, deltas, confidence)


def diff_runs(
    store,
    baseline_ref: str,
    current_ref: str,
    tolerances: Optional[Tolerances] = None,
    confidence: float = 0.95,
) -> RunDiff:
    """Resolve two run references in ``store`` and diff them."""
    baseline_id = store.resolve(baseline_ref, kind="evaluation")
    current_id = store.resolve(current_ref, kind="evaluation")
    return diff_cells(
        store.cells(baseline_id), store.cells(current_id),
        baseline_id=baseline_id, current_id=current_id,
        tolerances=tolerances, confidence=confidence,
    )
