"""Pluggable, persistent result caching: backends behind ResultCache.

The scheduler's memo of completed measurements used to be a plain
in-process dict; this module generalizes it into a small storage
stack so evaluation knowledge survives processes and can fan out
across hosts:

* :class:`CacheBackend` — the protocol every store implements:
  string keys, ``get``/``put``/``__contains__``/``__len__``/``clear``.
* :class:`MemoryBackend` — the original behavior, a dict.
* :class:`DiskBackend` — one content-addressed JSON file per entry
  under a cache directory, written atomically (temp file +
  ``os.replace``) so a killed sweep never leaves a torn entry.
  Entries are self-describing (they embed the job and a schema
  version); entries written by an older schema read as misses, so
  stale formats invalidate themselves instead of corrupting runs.
* :class:`ShardedBackend` — routes each key deterministically to one
  of N child backends, the layout for multi-host fan-out (give every
  host the shard roster and they agree on placement with no
  coordination).

Keys come from :func:`job_key`: the SHA-256 of the job's canonical
JSON plus :data:`CACHE_SCHEMA_VERSION`, so a job *is* its address —
two sweeps that share a configuration share the entry, and bumping
the schema version retires every old entry at once.

:class:`ResultCache` keeps its PR-1 interface (``lookup``/``store``/
``peek`` on jobs, hit/miss counters) but now delegates storage to any
backend; ``ResultCache()`` is still purely in-memory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.jobs import MeasurementJob
from repro.errors import EvaluationError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CACHE_MANIFEST_NAME",
    "MISSING",
    "job_key",
    "read_cache_manifest",
    "resolve_cache_layout",
    "CacheBackend",
    "MemoryBackend",
    "DiskBackend",
    "ShardedBackend",
    "ResultCache",
]

#: Bump when the on-disk entry format (or the meaning of a sample)
#: changes: every entry written under another version reads as a
#: miss, so old cache directories drain instead of poisoning runs.
CACHE_SCHEMA_VERSION = 1

#: Root-level file every ``on_disk`` cache keeps, recording the shard
#: roster the directory was created with.  Shard routing is a pure
#: function of ``(key, shard count)``, so reopening a directory with a
#: different count silently re-routes every key — warm entries become
#: misses and duplicates are written.  The manifest turns that drift
#: into a loud :class:`EvaluationError` at open time instead.
CACHE_MANIFEST_NAME = "manifest.json"


class _Missing(object):
    """Sentinel distinguishing "no entry" from a cached ``None``
    sample ("Not Available" is a legitimate measurement outcome)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


MISSING = _Missing()


def job_key(job: MeasurementJob) -> str:
    """The content address of a job: SHA-256 over its canonical JSON.

    Includes :data:`CACHE_SCHEMA_VERSION`, so a schema bump changes
    every address and old entries become unreachable by construction.
    """
    payload = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "job": job.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def read_cache_manifest(root: str) -> Optional[dict]:
    """The directory's layout manifest, or None if absent/unreadable.

    Corrupt or half-written manifests read as absent rather than
    raising: the layout is then re-inferred from the directory
    contents, which is what pre-manifest directories get anyway.
    """
    try:
        with open(os.path.join(os.fspath(root), CACHE_MANIFEST_NAME), "r") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    shards, layout = data.get("shards"), data.get("layout")
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        return None
    if layout not in ("flat", "sharded"):
        return None
    return data


def _write_cache_manifest(root: str, shards: int, layout: str) -> None:
    """Persist the layout manifest (atomically; no-op if current)."""
    root = os.fspath(root)
    existing = read_cache_manifest(root)
    if (
        existing is not None
        and existing["shards"] == shards
        and existing["layout"] == layout
        and existing.get("schema") == CACHE_SCHEMA_VERSION
    ):
        return
    os.makedirs(root, exist_ok=True)
    payload = {"schema": CACHE_SCHEMA_VERSION, "shards": shards, "layout": layout}
    fd, tmp_path = tempfile.mkstemp(dir=root, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_path, os.path.join(root, CACHE_MANIFEST_NAME))
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _infer_cache_layout(root: str) -> Optional[Tuple[int, str]]:
    """Infer ``(shards, layout)`` from a pre-manifest directory.

    ``shard-NN`` subdirectories mean a sharded layout (their count is
    the roster size); two-hex-digit fanout buckets mean the flat
    single-backend layout; an empty or unrelated directory infers
    nothing.
    """
    try:
        names = os.listdir(os.fspath(root))
    except OSError:
        return None
    shard_dirs = [
        name
        for name in names
        if name.startswith("shard-")
        and name[len("shard-"):].isdigit()
        and os.path.isdir(os.path.join(root, name))
    ]
    if shard_dirs:
        return len(shard_dirs), "sharded"
    for name in names:
        if (
            len(name) == 2
            and all(ch in "0123456789abcdef" for ch in name)
            and os.path.isdir(os.path.join(root, name))
        ):
            return 1, "flat"
    return None


def resolve_cache_layout(
    root: str,
    shards: Optional[int],
    layout: Optional[str] = None,
) -> Tuple[int, str]:
    """Reconcile a requested shard roster with what ``root`` holds.

    ``shards=None`` adopts whatever the directory records (manifest
    first, inferred layout for pre-manifest directories, flat for a
    fresh one).  An explicit request must match the record — a
    mismatch raises :class:`EvaluationError` naming both counts,
    because silently re-routing keys would turn every warm entry into
    a miss and write duplicates.
    """
    if shards is not None and shards < 1:
        raise EvaluationError("shards must be >= 1")
    manifest = read_cache_manifest(root)
    if manifest is not None:
        recorded: Optional[Tuple[int, str]] = (manifest["shards"], manifest["layout"])
    else:
        recorded = _infer_cache_layout(root)
    if recorded is None:
        if shards is None:
            return 1, layout or "flat"
        return shards, layout or ("flat" if shards == 1 else "sharded")
    recorded_shards, recorded_layout = recorded
    if shards is not None and shards != recorded_shards:
        raise EvaluationError(
            "cache directory %s was created with %d shard(s) but opened "
            "with shards=%d; shard routing is part of the on-disk layout, "
            "so reopen with shards=%d (or point at a fresh directory)"
            % (root, recorded_shards, shards, recorded_shards)
        )
    if layout is not None and layout != recorded_layout:
        raise EvaluationError(
            "cache directory %s uses the %s layout but was opened as %s "
            "(%d shard(s) both times); flat and shard-NN layouts do not "
            "mix, so reopen to match or point at a fresh directory"
            % (root, recorded_layout, layout, recorded_shards)
        )
    return recorded_shards, recorded_layout


class CacheBackend(object):
    """Protocol for key/value sample stores.

    ``get`` returns :data:`MISSING` (never raises) for absent keys;
    ``put`` may receive the originating job so persistent backends
    can write self-describing entries.
    """

    name = "backend"

    def get(self, key: str):
        raise NotImplementedError

    def get_many(self, keys: Sequence[str]) -> Dict[str, Optional[float]]:
        """Present entries for ``keys`` as a dict (absent keys are
        simply missing from it — never :data:`MISSING` values).

        The base implementation is a per-key :meth:`get` loop; backends
        with a cheaper bulk path (one lock acquisition, one directory
        listing) override it.
        """
        results: Dict[str, Optional[float]] = {}
        for key in keys:
            value = self.get(key)
            if value is not MISSING:
                results[key] = value
        return results

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not MISSING

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemoryBackend(CacheBackend):
    """The classic in-process dict store (dies with the process).

    Thread-safe: the evaluation service runs several concurrent
    scheduler runs against one shared cache, so every dict operation
    takes a lock rather than leaning on accidental GIL atomicity.
    """

    name = "memory"

    def __init__(self) -> None:
        self._store: Dict[str, Optional[float]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def get(self, key: str):
        with self._lock:
            return self._store.get(key, MISSING)

    def get_many(self, keys: Sequence[str]) -> Dict[str, Optional[float]]:
        """Bulk probe under a single lock acquisition."""
        with self._lock:
            store = self._store
            return {key: store[key] for key in keys if key in store}

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        with self._lock:
            self._store[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


class DiskBackend(CacheBackend):
    """Content-addressed JSON files under ``root``, one per entry.

    Layout is ``root/<key[:2]>/<key>.json`` (256-way directory fanout
    keeps listings sane at millions of entries).  Writes go through a
    temp file in the destination directory plus ``os.replace``, which
    is atomic on POSIX: concurrent writers of the *same* key race
    harmlessly (the entry is deterministic) and a kill mid-write
    leaves no partial *entry* behind.  It can leave an orphaned
    ``*.tmp`` file, though — those are swept by :meth:`clear` and
    (age-guarded) on every open, so kill-and-resume cycles do not
    accumulate litter.

    A small read-through memo avoids re-parsing a file on repeated
    lookups within one process; durability always comes from disk.

    Thread-safe: one disk-backed cache may serve several concurrent
    scheduler runs (``repro serve --cache-dir`` does exactly this), so
    the memo — a plain dict mutated on every read-through and write —
    is guarded by a lock.  File I/O itself stays outside the lock:
    the atomic ``os.replace`` write protocol already makes concurrent
    writers of the same key race harmlessly, and holding a lock across
    a disk read would serialize every lookup of every run.
    """

    name = "disk"

    #: Age (seconds) after which an orphaned ``*.tmp`` file is swept
    #: on open.  A temp file this old cannot belong to a live writer
    #: (writes are sub-second); it is litter from a writer killed
    #: between ``mkstemp`` and ``os.replace``.
    STALE_TMP_SECONDS = 60.0

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._memo: Dict[str, Optional[float]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        # Kill-and-resume is an advertised workflow, so orphaned temp
        # files are expected litter; sweep opportunistically on open
        # (age-guarded: a concurrent writer's in-flight temp survives).
        self._sweep_tmp(min_age_seconds=self.STALE_TMP_SECONDS)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    @staticmethod
    def _read_entry(path: str) -> Optional[dict]:
        """The entry at ``path``, or None if it is unreadable, torn,
        or written by another schema (all read as misses)."""
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if "seconds" not in entry:
            return None
        return entry

    def get(self, key: str):
        with self._lock:
            if key in self._memo:
                return self._memo[key]
        entry = self._read_entry(self._path(key))
        if entry is None:
            return MISSING
        value = entry["seconds"]
        with self._lock:
            self._memo[key] = value
        return value

    def get_many(self, keys: Sequence[str]) -> Dict[str, Optional[float]]:
        """Bulk probe: one ``listdir`` per fanout bucket.

        A cold sweep probing N absent keys one at a time pays N failed
        ``open`` calls; listing each touched bucket once and reading
        only the files actually present turns that into one syscall
        per *bucket*.  Memoized keys never reach the filesystem at
        all.
        """
        results: Dict[str, Optional[float]] = {}
        pending: List[str] = []
        with self._lock:
            memo = self._memo
            for key in keys:
                if key in memo:
                    results[key] = memo[key]
                else:
                    pending.append(key)
        if not pending:
            return results
        by_bucket: Dict[str, List[str]] = {}
        for key in pending:
            by_bucket.setdefault(key[:2], []).append(key)
        found: Dict[str, Optional[float]] = {}
        for bucket, bucket_keys in by_bucket.items():
            try:
                names = set(os.listdir(os.path.join(self.root, bucket)))
            except OSError:
                continue  # bucket directory absent: all misses
            for key in bucket_keys:
                if key + ".json" in names:
                    entry = self._read_entry(self._path(key))
                    if entry is not None:
                        found[key] = entry["seconds"]
        if found:
            with self._lock:
                self._memo.update(found)
            results.update(found)
        return results

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "seconds": value,
            "job": job.to_dict() if job is not None else None,
        }
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        with self._lock:
            self._memo[key] = value

    def _entry_paths(self) -> Iterator[str]:
        try:
            fanout = sorted(os.listdir(self.root))
        except OSError:
            return
        for bucket in fanout:
            bucket_dir = os.path.join(self.root, bucket)
            if not os.path.isdir(bucket_dir):
                continue
            for name in sorted(os.listdir(bucket_dir)):
                if name.endswith(".json"):
                    yield os.path.join(bucket_dir, name)

    def keys(self) -> List[str]:
        """Keys of every entry :meth:`get` could actually serve —
        stale-schema and torn files are excluded, matching ``get``."""
        return [
            os.path.basename(path)[: -len(".json")]
            for path in self._entry_paths()
            if self._read_entry(path) is not None
        ]

    def entries(self) -> Iterator[Tuple[MeasurementJob, Optional[float]]]:
        """Yield every readable, schema-current ``(job, sample)`` pair.

        Entries written without a job (or by another schema) are
        skipped — this is the inspection/rebuild path, so it tolerates
        partially foreign directories.
        """
        for path in self._entry_paths():
            entry = self._read_entry(path)
            if entry is None or entry.get("job") is None:
                continue
            try:
                job = MeasurementJob.from_dict(entry["job"])
            except (EvaluationError, KeyError, TypeError):
                continue
            yield job, entry["seconds"]

    def __len__(self) -> int:
        """How many entries are servable (consistent with ``get`` and
        ``keys``): a drained stale-schema directory counts as empty."""
        return len(self.keys())

    def _tmp_paths(self) -> Iterator[str]:
        """Every ``mkstemp`` leftover under the fanout directories."""
        try:
            fanout = os.listdir(self.root)
        except OSError:
            return
        for bucket in fanout:
            bucket_dir = os.path.join(self.root, bucket)
            if not os.path.isdir(bucket_dir):
                continue
            for name in os.listdir(bucket_dir):
                if name.endswith(".tmp"):
                    yield os.path.join(bucket_dir, name)

    def _sweep_tmp(self, min_age_seconds: float = 0.0) -> int:
        """Unlink orphaned temp files, returning how many went.

        A writer that dies between ``mkstemp`` and ``os.replace``
        leaves a ``*.tmp`` behind that no code path would ever touch
        again.  With ``min_age_seconds`` only files at least that old
        are removed (never a live writer's in-flight temp).
        """
        removed = 0
        now = time.time()
        for path in list(self._tmp_paths()):
            try:
                if min_age_seconds > 0.0:
                    if now - os.path.getmtime(path) < min_age_seconds:
                        continue
                os.unlink(path)
                removed += 1
            except OSError:
                pass  # raced with another sweeper or writer
        return removed

    def clear(self) -> None:
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
            except OSError:
                pass
        # clear() means "empty this store": take the temp litter too
        # (unconditionally — nobody clears a cache mid-write on
        # purpose, and the old behavior left *.tmp files forever).
        self._sweep_tmp()
        with self._lock:
            self._memo.clear()


class ShardedBackend(CacheBackend):
    """Deterministic key routing across N child backends.

    The shard of a key is a pure function of the key's first 8 hex
    digits, so any process holding the same shard roster places every
    entry identically — the precondition for multi-host fan-out with
    no placement coordination.
    """

    name = "sharded"

    def __init__(self, backends: Sequence[CacheBackend]) -> None:
        backends = list(backends)
        if not backends:
            raise EvaluationError("ShardedBackend needs at least one child backend")
        self.backends = backends

    @classmethod
    def on_disk(cls, root: str, shards: int) -> "ShardedBackend":
        """N :class:`DiskBackend` children under ``root/shard-NN``.

        Persists the shard roster in the root ``manifest.json`` and
        validates it on reopen: a count that disagrees with what the
        directory was created with raises :class:`EvaluationError`
        instead of silently re-routing keys.
        """
        count, _ = resolve_cache_layout(root, shards, "sharded")
        _write_cache_manifest(root, count, "sharded")
        return cls(
            [DiskBackend(os.path.join(os.fspath(root), "shard-%02d" % index))
             for index in range(count)]
        )

    def shard_index(self, key: str) -> int:
        return int(key[:8], 16) % len(self.backends)

    def shard_for(self, key: str) -> CacheBackend:
        return self.backends[self.shard_index(key)]

    def get(self, key: str):
        return self.shard_for(key).get(key)

    def get_many(self, keys: Sequence[str]) -> Dict[str, Optional[float]]:
        """Bulk probe: group keys by shard, one child probe each."""
        by_shard: Dict[int, List[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_index(key), []).append(key)
        results: Dict[str, Optional[float]] = {}
        for index, shard_keys in by_shard.items():
            results.update(self.backends[index].get_many(shard_keys))
        return results

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        self.shard_for(key).put(key, value, job)

    def __len__(self) -> int:
        return sum(len(backend) for backend in self.backends)

    def clear(self) -> None:
        for backend in self.backends:
            backend.clear()


class ResultCache(object):
    """Memo of completed measurements: job -> sample (seconds or None).

    ``hits``/``misses`` count lookups, so callers can verify that a
    re-run of an identical spec performed zero new simulations.  The
    storage itself is a pluggable :class:`CacheBackend`; the default
    :class:`MemoryBackend` preserves the original in-process behavior,
    while :meth:`on_disk` gives a persistent (optionally sharded)
    cache that a killed sweep resumes from.

    Thread-safe: one cache may back several concurrent scheduler runs
    (the evaluation service does exactly this), so the hit/miss
    counters, the key memo and each lookup/store are guarded by an
    internal lock — ``hits + misses`` always equals the number of
    ``lookup`` calls, with no lost increments under races.
    """

    def __init__(self, backend: Optional[CacheBackend] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        # Guards the counters, the key memo and the compound
        # lookup-then-count / store operations below.  Reentrant so a
        # backend callback could safely re-enter the cache.
        self._lock = threading.RLock()
        # job -> content key memo: hashing a job canonicalizes it to
        # JSON, which is worth doing once, not once per lookup.
        self._keys: Dict[MeasurementJob, str] = {}  # guarded-by: _lock

    @classmethod
    def on_disk(cls, cache_dir: str, shards: Optional[int] = None) -> "ResultCache":
        """A persistent cache under ``cache_dir`` (sharded if > 1).

        ``shards=None`` adopts the directory's recorded layout (its
        ``manifest.json``, inferred from the directory contents for
        pre-manifest caches; a fresh directory is flat).  An explicit
        count must match the record — reopening with a different
        roster raises :class:`EvaluationError` naming both counts.
        """
        requested_layout = None
        if shards is not None:
            requested_layout = "flat" if shards == 1 else "sharded"
        count, layout = resolve_cache_layout(cache_dir, shards, requested_layout)
        if layout == "flat":
            _write_cache_manifest(cache_dir, 1, "flat")
            return cls(DiskBackend(cache_dir))
        return cls(ShardedBackend.on_disk(cache_dir, count))

    def key(self, job: MeasurementJob) -> str:
        with self._lock:
            key = self._keys.get(job)
            if key is None:
                key = self._keys[job] = job_key(job)
            return key

    def __len__(self) -> int:
        return len(self.backend)

    def __contains__(self, job: MeasurementJob) -> bool:
        return self.key(job) in self.backend

    def lookup(self, job: MeasurementJob):
        """The cached sample, or the :data:`MISSING` sentinel
        (``None`` is a legitimate sample: "Not Available")."""
        with self._lock:
            value = self.backend.get(self.key(job))
            if value is MISSING:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def get_many(self, jobs) -> Dict[MeasurementJob, Optional[float]]:
        """Bulk :meth:`lookup`: cached samples for ``jobs`` as a dict.

        Jobs with no entry are simply absent from the result (never
        mapped to :data:`MISSING` — a cached ``None`` sample is "Not
        Available", so presence must be the membership test).  One
        lock acquisition covers key memoization, the backend's bulk
        probe (one directory listing per touched bucket on disk) and
        the counters; each *unique* job counts exactly one hit or
        miss, matching what a deduplicating per-job ``lookup`` loop
        would have recorded.
        """
        with self._lock:
            keys: Dict[MeasurementJob, str] = {}
            for job in jobs:
                if job not in keys:
                    key = self._keys.get(job)
                    if key is None:
                        key = self._keys[job] = job_key(job)
                    keys[job] = key
            bulk = getattr(self.backend, "get_many", None)
            if bulk is not None:
                found = bulk(list(keys.values()))
            else:  # duck-typed backend predating the bulk protocol
                found = {}
                for key in keys.values():
                    value = self.backend.get(key)
                    if value is not MISSING:
                        found[key] = value
            results: Dict[MeasurementJob, Optional[float]] = {}
            for job, key in keys.items():
                if key in found:
                    results[job] = found[key]
                    self.hits += 1
                else:
                    self.misses += 1
            return results

    def store(self, job: MeasurementJob, value: Optional[float]) -> None:
        with self._lock:
            self.backend.put(self.key(job), value, job)

    def peek(self, job: MeasurementJob) -> Optional[float]:
        """The cached sample, without touching the hit/miss counters."""
        with self._lock:
            value = self.backend.get(self.key(job))
        if value is MISSING:
            raise KeyError(job)
        return value

    def clear(self) -> None:
        with self._lock:
            self.backend.clear()
            self._keys.clear()
            self.hits = 0
            self.misses = 0
