"""Pluggable, persistent result caching: backends behind ResultCache.

The scheduler's memo of completed measurements used to be a plain
in-process dict; this module generalizes it into a small storage
stack so evaluation knowledge survives processes and can fan out
across hosts:

* :class:`CacheBackend` — the protocol every store implements:
  string keys, ``get``/``put``/``__contains__``/``__len__``/``clear``.
* :class:`MemoryBackend` — the original behavior, a dict.
* :class:`DiskBackend` — one content-addressed JSON file per entry
  under a cache directory, written atomically (temp file +
  ``os.replace``) so a killed sweep never leaves a torn entry.
  Entries are self-describing (they embed the job and a schema
  version); entries written by an older schema read as misses, so
  stale formats invalidate themselves instead of corrupting runs.
* :class:`ShardedBackend` — routes each key deterministically to one
  of N child backends, the layout for multi-host fan-out (give every
  host the shard roster and they agree on placement with no
  coordination).

Keys come from :func:`job_key`: the SHA-256 of the job's canonical
JSON plus :data:`CACHE_SCHEMA_VERSION`, so a job *is* its address —
two sweeps that share a configuration share the entry, and bumping
the schema version retires every old entry at once.

:class:`ResultCache` keeps its PR-1 interface (``lookup``/``store``/
``peek`` on jobs, hit/miss counters) but now delegates storage to any
backend; ``ResultCache()`` is still purely in-memory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.jobs import MeasurementJob
from repro.errors import EvaluationError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "MISSING",
    "job_key",
    "CacheBackend",
    "MemoryBackend",
    "DiskBackend",
    "ShardedBackend",
    "ResultCache",
]

#: Bump when the on-disk entry format (or the meaning of a sample)
#: changes: every entry written under another version reads as a
#: miss, so old cache directories drain instead of poisoning runs.
CACHE_SCHEMA_VERSION = 1


class _Missing(object):
    """Sentinel distinguishing "no entry" from a cached ``None``
    sample ("Not Available" is a legitimate measurement outcome)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


MISSING = _Missing()


def job_key(job: MeasurementJob) -> str:
    """The content address of a job: SHA-256 over its canonical JSON.

    Includes :data:`CACHE_SCHEMA_VERSION`, so a schema bump changes
    every address and old entries become unreachable by construction.
    """
    payload = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "job": job.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CacheBackend(object):
    """Protocol for key/value sample stores.

    ``get`` returns :data:`MISSING` (never raises) for absent keys;
    ``put`` may receive the originating job so persistent backends
    can write self-describing entries.
    """

    name = "backend"

    def get(self, key: str):
        raise NotImplementedError

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not MISSING

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemoryBackend(CacheBackend):
    """The classic in-process dict store (dies with the process).

    Thread-safe: the evaluation service runs several concurrent
    scheduler runs against one shared cache, so every dict operation
    takes a lock rather than leaning on accidental GIL atomicity.
    """

    name = "memory"

    def __init__(self) -> None:
        self._store: Dict[str, Optional[float]] = {}
        self._lock = threading.Lock()

    def get(self, key: str):
        with self._lock:
            return self._store.get(key, MISSING)

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        with self._lock:
            self._store[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


class DiskBackend(CacheBackend):
    """Content-addressed JSON files under ``root``, one per entry.

    Layout is ``root/<key[:2]>/<key>.json`` (256-way directory fanout
    keeps listings sane at millions of entries).  Writes go through a
    temp file in the destination directory plus ``os.replace``, which
    is atomic on POSIX: concurrent writers of the *same* key race
    harmlessly (the entry is deterministic) and a kill mid-write
    leaves no partial *entry* behind.  It can leave an orphaned
    ``*.tmp`` file, though — those are swept by :meth:`clear` and
    (age-guarded) on every open, so kill-and-resume cycles do not
    accumulate litter.

    A small read-through memo avoids re-parsing a file on repeated
    lookups within one process; durability always comes from disk.
    """

    name = "disk"

    #: Age (seconds) after which an orphaned ``*.tmp`` file is swept
    #: on open.  A temp file this old cannot belong to a live writer
    #: (writes are sub-second); it is litter from a writer killed
    #: between ``mkstemp`` and ``os.replace``.
    STALE_TMP_SECONDS = 60.0

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._memo: Dict[str, Optional[float]] = {}
        # Kill-and-resume is an advertised workflow, so orphaned temp
        # files are expected litter; sweep opportunistically on open
        # (age-guarded: a concurrent writer's in-flight temp survives).
        self._sweep_tmp(min_age_seconds=self.STALE_TMP_SECONDS)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    @staticmethod
    def _read_entry(path: str) -> Optional[dict]:
        """The entry at ``path``, or None if it is unreadable, torn,
        or written by another schema (all read as misses)."""
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if "seconds" not in entry:
            return None
        return entry

    def get(self, key: str):
        if key in self._memo:
            return self._memo[key]
        entry = self._read_entry(self._path(key))
        if entry is None:
            return MISSING
        value = entry["seconds"]
        self._memo[key] = value
        return value

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "seconds": value,
            "job": job.to_dict() if job is not None else None,
        }
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._memo[key] = value

    def _entry_paths(self) -> Iterator[str]:
        try:
            fanout = sorted(os.listdir(self.root))
        except OSError:
            return
        for bucket in fanout:
            bucket_dir = os.path.join(self.root, bucket)
            if not os.path.isdir(bucket_dir):
                continue
            for name in sorted(os.listdir(bucket_dir)):
                if name.endswith(".json"):
                    yield os.path.join(bucket_dir, name)

    def keys(self) -> List[str]:
        """Keys of every entry :meth:`get` could actually serve —
        stale-schema and torn files are excluded, matching ``get``."""
        return [
            os.path.basename(path)[: -len(".json")]
            for path in self._entry_paths()
            if self._read_entry(path) is not None
        ]

    def entries(self) -> Iterator[Tuple[MeasurementJob, Optional[float]]]:
        """Yield every readable, schema-current ``(job, sample)`` pair.

        Entries written without a job (or by another schema) are
        skipped — this is the inspection/rebuild path, so it tolerates
        partially foreign directories.
        """
        for path in self._entry_paths():
            entry = self._read_entry(path)
            if entry is None or entry.get("job") is None:
                continue
            try:
                job = MeasurementJob.from_dict(entry["job"])
            except (EvaluationError, KeyError, TypeError):
                continue
            yield job, entry["seconds"]

    def __len__(self) -> int:
        """How many entries are servable (consistent with ``get`` and
        ``keys``): a drained stale-schema directory counts as empty."""
        return len(self.keys())

    def _tmp_paths(self) -> Iterator[str]:
        """Every ``mkstemp`` leftover under the fanout directories."""
        try:
            fanout = os.listdir(self.root)
        except OSError:
            return
        for bucket in fanout:
            bucket_dir = os.path.join(self.root, bucket)
            if not os.path.isdir(bucket_dir):
                continue
            for name in os.listdir(bucket_dir):
                if name.endswith(".tmp"):
                    yield os.path.join(bucket_dir, name)

    def _sweep_tmp(self, min_age_seconds: float = 0.0) -> int:
        """Unlink orphaned temp files, returning how many went.

        A writer that dies between ``mkstemp`` and ``os.replace``
        leaves a ``*.tmp`` behind that no code path would ever touch
        again.  With ``min_age_seconds`` only files at least that old
        are removed (never a live writer's in-flight temp).
        """
        removed = 0
        now = time.time()
        for path in list(self._tmp_paths()):
            try:
                if min_age_seconds > 0.0:
                    if now - os.path.getmtime(path) < min_age_seconds:
                        continue
                os.unlink(path)
                removed += 1
            except OSError:
                pass  # raced with another sweeper or writer
        return removed

    def clear(self) -> None:
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
            except OSError:
                pass
        # clear() means "empty this store": take the temp litter too
        # (unconditionally — nobody clears a cache mid-write on
        # purpose, and the old behavior left *.tmp files forever).
        self._sweep_tmp()
        self._memo.clear()


class ShardedBackend(CacheBackend):
    """Deterministic key routing across N child backends.

    The shard of a key is a pure function of the key's first 8 hex
    digits, so any process holding the same shard roster places every
    entry identically — the precondition for multi-host fan-out with
    no placement coordination.
    """

    name = "sharded"

    def __init__(self, backends: Sequence[CacheBackend]) -> None:
        backends = list(backends)
        if not backends:
            raise EvaluationError("ShardedBackend needs at least one child backend")
        self.backends = backends

    @classmethod
    def on_disk(cls, root: str, shards: int) -> "ShardedBackend":
        """N :class:`DiskBackend` children under ``root/shard-NN``."""
        if shards < 1:
            raise EvaluationError("shards must be >= 1")
        return cls(
            [DiskBackend(os.path.join(os.fspath(root), "shard-%02d" % index))
             for index in range(shards)]
        )

    def shard_index(self, key: str) -> int:
        return int(key[:8], 16) % len(self.backends)

    def shard_for(self, key: str) -> CacheBackend:
        return self.backends[self.shard_index(key)]

    def get(self, key: str):
        return self.shard_for(key).get(key)

    def put(self, key: str, value: Optional[float], job: Optional[MeasurementJob] = None) -> None:
        self.shard_for(key).put(key, value, job)

    def __len__(self) -> int:
        return sum(len(backend) for backend in self.backends)

    def clear(self) -> None:
        for backend in self.backends:
            backend.clear()


class ResultCache(object):
    """Memo of completed measurements: job -> sample (seconds or None).

    ``hits``/``misses`` count lookups, so callers can verify that a
    re-run of an identical spec performed zero new simulations.  The
    storage itself is a pluggable :class:`CacheBackend`; the default
    :class:`MemoryBackend` preserves the original in-process behavior,
    while :meth:`on_disk` gives a persistent (optionally sharded)
    cache that a killed sweep resumes from.

    Thread-safe: one cache may back several concurrent scheduler runs
    (the evaluation service does exactly this), so the hit/miss
    counters, the key memo and each lookup/store are guarded by an
    internal lock — ``hits + misses`` always equals the number of
    ``lookup`` calls, with no lost increments under races.
    """

    def __init__(self, backend: Optional[CacheBackend] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self.hits = 0
        self.misses = 0
        # Guards the counters, the key memo and the compound
        # lookup-then-count / store operations below.  Reentrant so a
        # backend callback could safely re-enter the cache.
        self._lock = threading.RLock()
        # job -> content key memo: hashing a job canonicalizes it to
        # JSON, which is worth doing once, not once per lookup.
        self._keys: Dict[MeasurementJob, str] = {}

    @classmethod
    def on_disk(cls, cache_dir: str, shards: int = 1) -> "ResultCache":
        """A persistent cache under ``cache_dir`` (sharded if > 1)."""
        if shards < 1:
            raise EvaluationError("shards must be >= 1")
        if shards == 1:
            return cls(DiskBackend(cache_dir))
        return cls(ShardedBackend.on_disk(cache_dir, shards))

    def key(self, job: MeasurementJob) -> str:
        with self._lock:
            key = self._keys.get(job)
            if key is None:
                key = self._keys[job] = job_key(job)
            return key

    def __len__(self) -> int:
        return len(self.backend)

    def __contains__(self, job: MeasurementJob) -> bool:
        return self.key(job) in self.backend

    def lookup(self, job: MeasurementJob):
        """The cached sample, or the :data:`MISSING` sentinel
        (``None`` is a legitimate sample: "Not Available")."""
        with self._lock:
            value = self.backend.get(self.key(job))
            if value is MISSING:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def store(self, job: MeasurementJob, value: Optional[float]) -> None:
        with self._lock:
            self.backend.put(self.key(job), value, job)

    def peek(self, job: MeasurementJob) -> Optional[float]:
        """The cached sample, without touching the hit/miss counters."""
        value = self.backend.get(self.key(job))
        if value is MISSING:
            raise KeyError(job)
        return value

    def clear(self) -> None:
        with self._lock:
            self.backend.clear()
            self._keys.clear()
            self.hits = 0
            self.misses = 0
