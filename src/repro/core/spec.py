"""Declarative evaluation specs: the grid an evaluation should cover.

An :class:`EvaluationSpec` is pure data — tools x platforms x message
sizes x applications x weight profiles x seeds — validated eagerly
against the live registries and serializable to JSON.  It *describes*
an evaluation; :meth:`EvaluationSpec.jobs` expands it into the flat
list of :class:`~repro.core.jobs.MeasurementJob` simulations that a
:class:`~repro.core.scheduler.Scheduler` executes.  Because weight
profiles never influence a measurement, a spec with many profiles
still expands to one set of jobs: re-scoring is free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.jobs import (
    MeasurementJob,
    application_job,
    broadcast_job,
    global_sum_job,
    ring_job,
    sendrecv_job,
)
from repro.core.levels import STANDARD_LEVELS
from repro.core.weights import BALANCED, PRESET_PROFILES, WeightProfile
from repro.errors import EvaluationError, validate_noise

__all__ = ["DEFAULT_APP_PARAMS", "DEFAULT_TPL_SIZES", "EvaluationSpec"]

#: Message sizes (bytes) for the TPL sweeps: small / medium / large.
DEFAULT_TPL_SIZES = (1024, 16384, 65536)

#: Quick application workloads used for scoring runs (the full paper
#: workloads live in the figure benchmarks, where runtime is expected).
DEFAULT_APP_PARAMS = {
    "jpeg": {"height": 256, "width": 256},
    "fft2d": {"size": 64},
    "montecarlo": {"samples": 200_000},
    "psrs": {"keys": 50_000},
}

ProfileLike = Union[str, WeightProfile]


def _resolve_profile(entry: ProfileLike) -> WeightProfile:
    if isinstance(entry, WeightProfile):
        return entry
    if isinstance(entry, str):
        try:
            return PRESET_PROFILES[entry]
        except KeyError:
            raise EvaluationError(
                "unknown weight profile %r; available: %s"
                % (entry, ", ".join(sorted(PRESET_PROFILES)))
            )
    raise EvaluationError(
        "profiles must be preset names or WeightProfile instances, got %r" % (entry,)
    )


def _profile_to_dict(profile: WeightProfile) -> Union[str, dict]:
    preset = PRESET_PROFILES.get(profile.name)
    if preset is not None and preset.levels == profile.levels:
        return profile.name
    return {
        "name": profile.name,
        "levels": {level.key: weight for level, weight in profile.levels.items()},
    }


def _profile_from_dict(data: Union[str, dict]) -> WeightProfile:
    if isinstance(data, str):
        return _resolve_profile(data)
    levels_by_key = {level.key: level for level in STANDARD_LEVELS}
    try:
        weights = {levels_by_key[key]: w for key, w in data["levels"].items()}
        return WeightProfile(data["name"], weights)
    except KeyError as error:
        raise EvaluationError("malformed profile entry %r (%s)" % (data, error))


@dataclass
class EvaluationSpec:
    """A composable description of one evaluation sweep.

    Every axis is a sequence; the spec covers the full cross product.
    Construction validates everything against the *live* registries,
    so tools and platforms registered at run time work like the
    built-ins and typos fail before any simulation starts.

    ``noise`` is a scalar, not an axis: it sets the amplitude of the
    platforms' seeded stochastic network models for *every* job in the
    grid (``0.0`` = deterministic).  Combined with several ``seeds``
    it is what makes :meth:`~repro.core.results.ResultSet.seed_statistics`
    report real simulated variance.
    """

    tools: Sequence[str] = ("express", "p4", "pvm")
    platforms: Sequence[str] = ("sun-ethernet",)
    processors: int = 4
    tpl_sizes: Sequence[int] = DEFAULT_TPL_SIZES
    global_sum_ints: int = 25_000
    apps: Optional[Sequence[str]] = None
    app_params: Dict[str, dict] = field(default_factory=dict)
    profiles: Sequence[ProfileLike] = (BALANCED,)
    seeds: Sequence[int] = (0,)
    noise: float = 0.0

    def __post_init__(self) -> None:
        from repro.apps.suite import BENCHMARKED_APPS, EXTENSION_APPS
        from repro.hardware.catalog import PLATFORM_NAMES
        from repro.tools.registry import TOOL_CLASSES

        self.tools = tuple(self.tools)
        self.platforms = tuple(self.platforms)
        self.tpl_sizes = tuple(int(size) for size in self.tpl_sizes)
        self.seeds = tuple(int(seed) for seed in self.seeds)

        if not self.tools:
            raise EvaluationError("spec needs at least one tool")
        unknown = [tool for tool in self.tools if tool not in TOOL_CLASSES]
        if unknown:
            raise EvaluationError(
                "unknown tools: %s; available: %s"
                % (", ".join(unknown), ", ".join(sorted(TOOL_CLASSES)))
            )
        if len(set(self.tools)) != len(self.tools):
            raise EvaluationError("duplicate tool in spec")

        if not self.platforms:
            raise EvaluationError("spec needs at least one platform")
        unknown = [name for name in self.platforms if name not in PLATFORM_NAMES]
        if unknown:
            raise EvaluationError(
                "unknown platforms: %s; available: %s"
                % (", ".join(unknown), ", ".join(PLATFORM_NAMES))
            )
        if len(set(self.platforms)) != len(self.platforms):
            raise EvaluationError("duplicate platform in spec")

        if self.processors < 2:
            raise EvaluationError("evaluation needs at least 2 processors")
        if any(size <= 0 for size in self.tpl_sizes):
            raise EvaluationError("tpl_sizes must be positive")
        if len(set(self.tpl_sizes)) != len(self.tpl_sizes):
            raise EvaluationError("duplicate message size in spec")
        if self.global_sum_ints <= 0:
            raise EvaluationError("global_sum_ints must be positive")

        # Copy the per-app dicts too: spec.app_params must never alias
        # the module-level defaults (or another spec's workloads).
        params = {name: dict(workload) for name, workload in DEFAULT_APP_PARAMS.items()}
        for name, overrides in dict(self.app_params).items():
            params[name] = dict(overrides)
        self.app_params = params
        self.apps = (
            tuple(self.apps) if self.apps is not None else tuple(sorted(DEFAULT_APP_PARAMS))
        )
        if not self.apps:
            raise EvaluationError("spec needs at least one application")
        known_apps = set(BENCHMARKED_APPS) | set(EXTENSION_APPS)
        unknown = [app for app in self.apps if app not in known_apps]
        if unknown:
            raise EvaluationError(
                "unknown applications: %s; available: %s"
                % (", ".join(unknown), ", ".join(sorted(known_apps)))
            )

        if not self.seeds:
            raise EvaluationError("spec needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise EvaluationError("duplicate seed in spec")

        self.noise = validate_noise(self.noise, EvaluationError)

        if not self.profiles:
            raise EvaluationError("spec needs at least one weight profile")
        self.profiles = tuple(_resolve_profile(entry) for entry in self.profiles)
        names = [profile.name for profile in self.profiles]
        if len(set(names)) != len(names):
            raise EvaluationError("duplicate weight profile name in spec")

    # ------------------------------------------------------------------
    # Job expansion
    # ------------------------------------------------------------------

    def tpl_jobs(self, platform: str, seed: int) -> List[MeasurementJob]:
        """TPL jobs for one (platform, seed) cell, in report order."""
        jobs = []
        for nbytes in self.tpl_sizes:
            for tool in self.tools:
                jobs.append(sendrecv_job(tool, platform, nbytes, seed, self.noise))
            for tool in self.tools:
                jobs.append(
                    broadcast_job(tool, platform, nbytes, self.processors, seed, self.noise)
                )
            for tool in self.tools:
                jobs.append(
                    ring_job(tool, platform, nbytes, self.processors, seed, self.noise)
                )
        for tool in self.tools:
            jobs.append(
                global_sum_job(
                    tool, platform, self.global_sum_ints, self.processors, seed, self.noise
                )
            )
        return jobs

    def apl_jobs(self, platform: str, seed: int) -> List[MeasurementJob]:
        """APL jobs for one (platform, seed) cell, in report order."""
        jobs = []
        for app in self.apps:
            params = self.app_params.get(app, {})
            for tool in self.tools:
                jobs.append(
                    application_job(
                        app, tool, platform, self.processors, seed, self.noise, **params
                    )
                )
        return jobs

    def iter_jobs(self) -> Iterator[MeasurementJob]:
        """Stream the grid's jobs in report order, cell by cell.

        The scheduler consumes this lazily, so a huge sweep grid never
        materializes as one flat job list — only the current
        (platform, seed) cell's jobs exist at a time.
        """
        for platform in self.platforms:
            for seed in self.seeds:
                for job in self.tpl_jobs(platform, seed):
                    yield job
                for job in self.apl_jobs(platform, seed):
                    yield job

    def jobs(self) -> List[MeasurementJob]:
        """The flat job list covering the whole grid (may contain
        duplicates only if axes overlap, which validation forbids)."""
        return list(self.iter_jobs())

    def job_count(self) -> int:
        """How many jobs the grid expands to — closed form, no
        expansion (``Scheduler.start`` takes it on every run for the
        progress denominator).  Per (platform, seed) cell each tool
        contributes sendrecv+broadcast+ring per message size, one
        global sum, and one job per application."""
        per_tool = 3 * len(self.tpl_sizes) + 1 + len(self.apps)
        return per_tool * len(self.tools) * len(self.platforms) * len(self.seeds)

    def cells(self) -> List[Tuple[str, WeightProfile, int]]:
        """Every (platform, profile, seed) report the spec describes."""
        return [
            (platform, profile, seed)
            for platform in self.platforms
            for profile in self.profiles
            for seed in self.seeds
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "tools": list(self.tools),
            "platforms": list(self.platforms),
            "processors": self.processors,
            "tpl_sizes": list(self.tpl_sizes),
            "global_sum_ints": self.global_sum_ints,
            "apps": list(self.apps),
            "app_params": {name: dict(params) for name, params in self.app_params.items()},
            "profiles": [_profile_to_dict(profile) for profile in self.profiles],
            "seeds": list(self.seeds),
        }
        # Deterministic specs serialize exactly as they did before the
        # noise knob existed, so pre-existing spec files and golden
        # fixtures stay byte-identical.
        if self.noise:
            data["noise"] = self.noise
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluationSpec":
        data = dict(data)
        unknown = set(data) - {
            "tools", "platforms", "processors", "tpl_sizes", "global_sum_ints",
            "apps", "app_params", "profiles", "seeds", "noise",
        }
        if unknown:
            raise EvaluationError("unknown spec fields: %s" % ", ".join(sorted(unknown)))
        if "profiles" in data:
            data["profiles"] = [_profile_from_dict(entry) for entry in data["profiles"]]
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EvaluationSpec":
        return cls.from_dict(json.loads(text))

    def with_(self, **changes) -> "EvaluationSpec":
        """A copy with some axes replaced (composable sweep building)."""
        return replace(self, **changes)
