"""The multi-level evaluator: the paper's methodology, executable.

:class:`Evaluator` measures each tool at the Tool Performance Level
(primitive micro-benchmarks) and the Application Performance Level
(the four SU PDABS applications), scores the Application Development
Level from the usability matrix, and combines the three with a
:class:`~repro.core.weights.WeightProfile` into an overall ranking —
objective 1 of the paper: "enabling the selection of the most
appropriate PDC tools for a particular application class and system
configuration".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import measurements
from repro.core.levels import ADL, APL, EvaluationLevel, TPL
from repro.core.metrics import MeasurementSet, Measurement, aggregate_scores
from repro.core.usability import adl_score
from repro.core.weights import BALANCED, WeightProfile
from repro.errors import EvaluationError
from repro.tools.registry import PAPER_TOOL_NAMES, TOOL_CLASSES

__all__ = ["ToolEvaluation", "EvaluationReport", "Evaluator", "evaluate_tools"]

#: Message sizes (bytes) for the TPL sweeps: small / medium / large.
_DEFAULT_TPL_SIZES = (1024, 16384, 65536)

#: Quick application workloads used for scoring runs (the full paper
#: workloads live in the figure benchmarks, where runtime is expected).
_DEFAULT_APP_PARAMS = {
    "jpeg": {"height": 256, "width": 256},
    "fft2d": {"size": 64},
    "montecarlo": {"samples": 200_000},
    "psrs": {"keys": 50_000},
}


class ToolEvaluation(object):
    """All three level scores for one tool, plus the overall score."""

    def __init__(
        self,
        tool: str,
        level_scores: Dict[EvaluationLevel, float],
        overall: float,
        detail: Dict[str, Dict[str, float]],
    ) -> None:
        self.tool = tool
        self.level_scores = level_scores
        self.overall = overall
        self.detail = detail

    def __repr__(self) -> str:
        return "<ToolEvaluation %s overall=%.3f>" % (self.tool, self.overall)


class EvaluationReport(object):
    """The outcome of one evaluation: scores, ranking, rendering."""

    def __init__(
        self,
        platform_name: str,
        processors: int,
        profile: WeightProfile,
        evaluations: List[ToolEvaluation],
        tpl_sets: List[MeasurementSet],
        apl_sets: List[MeasurementSet],
    ) -> None:
        self.platform_name = platform_name
        self.processors = processors
        self.profile = profile
        self.evaluations = sorted(evaluations, key=lambda e: -e.overall)
        self.tpl_sets = tpl_sets
        self.apl_sets = apl_sets

    def __repr__(self) -> str:
        return "<EvaluationReport %s: %s>" % (
            self.platform_name,
            ", ".join("%s=%.2f" % (e.tool, e.overall) for e in self.evaluations),
        )

    def ranking(self) -> List[str]:
        """Tools ordered by overall score, best first."""
        return [evaluation.tool for evaluation in self.evaluations]

    def best_tool(self) -> str:
        return self.evaluations[0].tool

    def scores(self) -> Dict[str, Dict[str, float]]:
        """tool -> {"tpl": ..., "apl": ..., "adl": ..., "overall": ...}."""
        table = {}
        for evaluation in self.evaluations:
            row = {
                level.key: score for level, score in evaluation.level_scores.items()
            }
            row["overall"] = evaluation.overall
            table[evaluation.tool] = row
        return table

    def summary(self) -> str:
        """Human-readable report (lazy import keeps modules decoupled)."""
        from repro.core.report import render_report

        return render_report(self)


class Evaluator(object):
    """Configures and runs the three-level evaluation.

    Parameters
    ----------
    platform:
        Catalog platform name (e.g. ``"sun-ethernet"``).
    processors:
        Ranks for the collective/application benchmarks (default 4).
    tools:
        Tools to evaluate (default: the paper's three).
    tpl_sizes:
        Message sizes for the primitive sweeps.
    global_sum_ints:
        Vector length for the global-sum benchmark.
    app_params:
        Per-application workload overrides.
    seed:
        Root seed for all runs.
    """

    def __init__(
        self,
        platform: str,
        processors: int = 4,
        tools: Sequence[str] = PAPER_TOOL_NAMES,
        tpl_sizes: Sequence[int] = _DEFAULT_TPL_SIZES,
        global_sum_ints: int = 25_000,
        apps: Optional[Sequence[str]] = None,
        app_params: Optional[Dict[str, dict]] = None,
        seed: int = 0,
    ) -> None:
        # Check the live registry so tools registered at run time
        # (examples/custom_tool.py) evaluate like the built-ins.
        unknown = [tool for tool in tools if tool not in TOOL_CLASSES]
        if unknown:
            raise EvaluationError("unknown tools: %s" % ", ".join(unknown))
        if processors < 2:
            raise EvaluationError("evaluation needs at least 2 processors")
        self.platform = platform
        self.processors = processors
        self.tools = list(tools)
        self.tpl_sizes = list(tpl_sizes)
        self.global_sum_ints = global_sum_ints
        self.apps = list(apps) if apps is not None else sorted(_DEFAULT_APP_PARAMS)
        self.app_params = dict(_DEFAULT_APP_PARAMS)
        if app_params:
            for name, params in app_params.items():
                self.app_params[name] = params
        self.seed = seed

    # ------------------------------------------------------------------
    # Level measurements
    # ------------------------------------------------------------------

    def measure_tpl(self) -> List[MeasurementSet]:
        """All primitive measurement sets (one per primitive x size)."""
        sets = []
        for nbytes in self.tpl_sizes:
            sets.append(
                MeasurementSet(
                    "send/receive %dB" % nbytes,
                    [
                        Measurement(
                            tool,
                            measurements.measure_sendrecv(
                                tool, self.platform, nbytes, seed=self.seed
                            ),
                        )
                        for tool in self.tools
                    ],
                )
            )
            sets.append(
                MeasurementSet(
                    "broadcast %dB" % nbytes,
                    [
                        Measurement(
                            tool,
                            measurements.measure_broadcast(
                                tool, self.platform, nbytes,
                                processors=self.processors, seed=self.seed,
                            ),
                        )
                        for tool in self.tools
                    ],
                )
            )
            sets.append(
                MeasurementSet(
                    "ring %dB" % nbytes,
                    [
                        Measurement(
                            tool,
                            measurements.measure_ring(
                                tool, self.platform, nbytes,
                                processors=self.processors, seed=self.seed,
                            ),
                        )
                        for tool in self.tools
                    ],
                )
            )
        sets.append(
            MeasurementSet(
                "global sum %d ints" % self.global_sum_ints,
                [
                    Measurement(
                        tool,
                        measurements.measure_global_sum(
                            tool, self.platform, self.global_sum_ints,
                            processors=self.processors, seed=self.seed,
                        ),
                    )
                    for tool in self.tools
                ],
            )
        )
        return sets

    def measure_apl(self) -> List[MeasurementSet]:
        """Application measurement sets (one per application)."""
        sets = []
        for app_name in self.apps:
            params = self.app_params.get(app_name, {})
            sets.append(
                MeasurementSet(
                    app_name,
                    [
                        Measurement(
                            tool,
                            measurements.measure_application(
                                app_name, tool, self.platform,
                                processors=self.processors, seed=self.seed, **params,
                            ),
                        )
                        for tool in self.tools
                    ],
                )
            )
        return sets

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def run(self, profile: WeightProfile = BALANCED) -> EvaluationReport:
        """Measure everything and produce the weighted report."""
        tpl_sets = self.measure_tpl()
        apl_sets = self.measure_apl()

        tpl_scores = aggregate_scores([s.scores() for s in tpl_sets])
        apl_scores = aggregate_scores([s.scores() for s in apl_sets])
        adl_scores = {tool: adl_score(tool) for tool in self.tools}

        evaluations = []
        for tool in self.tools:
            level_scores = {
                TPL: tpl_scores[tool],
                APL: apl_scores[tool],
                ADL: adl_scores[tool],
            }
            overall = profile.overall(level_scores)
            detail = {
                "tpl": {s.name: s.scores()[tool] for s in tpl_sets},
                "apl": {s.name: s.scores()[tool] for s in apl_sets},
            }
            evaluations.append(ToolEvaluation(tool, level_scores, overall, detail))

        return EvaluationReport(
            self.platform, self.processors, profile, evaluations, tpl_sets, apl_sets
        )


def evaluate_tools(
    platform: str = "sun-ethernet",
    processors: int = 4,
    tools: Sequence[str] = PAPER_TOOL_NAMES,
    profile: WeightProfile = BALANCED,
    seed: int = 0,
    **evaluator_options,
) -> EvaluationReport:
    """One-call evaluation: the library's quickstart entry point.

    Examples
    --------
    >>> report = evaluate_tools(platform="sun-ethernet", processors=4)
    >>> report.best_tool()
    'p4'
    """
    evaluator = Evaluator(
        platform, processors=processors, tools=tools, seed=seed, **evaluator_options
    )
    return evaluator.run(profile)
