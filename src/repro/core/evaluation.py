"""The multi-level evaluator: compatibility facade over the plan API.

The methodology itself now lives in three composable layers:

* :mod:`repro.core.spec` — :class:`EvaluationSpec`, the declarative
  grid (tools x platforms x sizes x apps x profiles x seeds) that
  expands into hashable :class:`~repro.core.jobs.MeasurementJob`\\ s;
* :mod:`repro.core.scheduler` — :class:`Scheduler`, which executes
  jobs through a pluggable serial or process-pool executor behind a
  content-keyed result cache, so nothing is ever simulated twice;
* :mod:`repro.core.results` — :class:`ResultSet`, which re-weights
  one set of cached samples into a scored
  :class:`EvaluationReport` per (platform, profile, seed) cell.

:class:`Evaluator` and :func:`evaluate_tools` are thin shims kept for
the paper-shaped single-platform workflow: they build a one-cell spec,
run it through a private scheduler (so repeated calls on one evaluator
reuse measurements), and return the classic report — objective 1 of
the paper: "enabling the selection of the most appropriate PDC tools
for a particular application class and system configuration".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.levels import EvaluationLevel
from repro.core.metrics import MeasurementSet
from repro.core.weights import BALANCED, WeightProfile
from repro.errors import EvaluationError
from repro.tools.registry import PAPER_TOOL_NAMES, TOOL_CLASSES

__all__ = ["ToolEvaluation", "EvaluationReport", "Evaluator", "evaluate_tools"]


class ToolEvaluation(object):
    """All three level scores for one tool, plus the overall score."""

    def __init__(
        self,
        tool: str,
        level_scores: Dict[EvaluationLevel, float],
        overall: float,
        detail: Dict[str, Dict[str, float]],
    ) -> None:
        self.tool = tool
        self.level_scores = level_scores
        self.overall = overall
        self.detail = detail

    def __repr__(self) -> str:
        return "<ToolEvaluation %s overall=%.3f>" % (self.tool, self.overall)


class EvaluationReport(object):
    """The outcome of one evaluation: scores, ranking, rendering."""

    def __init__(
        self,
        platform_name: str,
        processors: int,
        profile: WeightProfile,
        evaluations: List[ToolEvaluation],
        tpl_sets: List[MeasurementSet],
        apl_sets: List[MeasurementSet],
    ) -> None:
        self.platform_name = platform_name
        self.processors = processors
        self.profile = profile
        self.evaluations = sorted(evaluations, key=lambda e: -e.overall)
        self.tpl_sets = tpl_sets
        self.apl_sets = apl_sets

    def __repr__(self) -> str:
        return "<EvaluationReport %s: %s>" % (
            self.platform_name,
            ", ".join("%s=%.2f" % (e.tool, e.overall) for e in self.evaluations),
        )

    def ranking(self) -> List[str]:
        """Tools ordered by overall score, best first."""
        return [evaluation.tool for evaluation in self.evaluations]

    def best_tool(self) -> str:
        return self.evaluations[0].tool

    def scores(self) -> Dict[str, Dict[str, float]]:
        """tool -> {"tpl": ..., "apl": ..., "adl": ..., "overall": ...}."""
        table = {}
        for evaluation in self.evaluations:
            row = {
                level.key: score for level, score in evaluation.level_scores.items()
            }
            row["overall"] = evaluation.overall
            table[evaluation.tool] = row
        return table

    def summary(self) -> str:
        """Human-readable report (lazy import keeps modules decoupled)."""
        from repro.core.report import render_report

        return render_report(self)


class Evaluator(object):
    """Configures and runs the three-level evaluation on one platform.

    A shim over the plan API: parameters become a one-platform
    :class:`~repro.core.spec.EvaluationSpec` and all measurement goes
    through a private :class:`~repro.core.scheduler.Scheduler`, so
    calling :meth:`measure_tpl`, :meth:`measure_apl` and :meth:`run`
    (even with several profiles) simulates each job exactly once.

    Parameters
    ----------
    platform:
        Catalog platform name (e.g. ``"sun-ethernet"``).
    processors:
        Ranks for the collective/application benchmarks (default 4).
    tools:
        Tools to evaluate (default: the paper's three).
    tpl_sizes:
        Message sizes for the primitive sweeps.
    global_sum_ints:
        Vector length for the global-sum benchmark.
    app_params:
        Per-application workload overrides.
    seed:
        Root seed for all runs.
    """

    def __init__(
        self,
        platform: str,
        processors: int = 4,
        tools: Sequence[str] = PAPER_TOOL_NAMES,
        tpl_sizes: Optional[Sequence[int]] = None,
        global_sum_ints: int = 25_000,
        apps: Optional[Sequence[str]] = None,
        app_params: Optional[Dict[str, dict]] = None,
        seed: int = 0,
    ) -> None:
        from repro.core.scheduler import Scheduler
        from repro.core.spec import DEFAULT_TPL_SIZES, EvaluationSpec

        # Check the live registry so tools registered at run time
        # (examples/custom_tool.py) evaluate like the built-ins.
        unknown = [tool for tool in tools if tool not in TOOL_CLASSES]
        if unknown:
            raise EvaluationError("unknown tools: %s" % ", ".join(unknown))
        if processors < 2:
            raise EvaluationError("evaluation needs at least 2 processors")
        self._spec = EvaluationSpec(
            tools=tuple(tools),
            platforms=(platform,),
            processors=processors,
            tpl_sizes=tuple(tpl_sizes) if tpl_sizes is not None else DEFAULT_TPL_SIZES,
            global_sum_ints=global_sum_ints,
            apps=tuple(apps) if apps is not None else None,
            app_params=dict(app_params) if app_params else {},
            seeds=(seed,),
        )
        self._scheduler = Scheduler()

    # -- spec views kept as attributes of the historical API.  The
    # configuration is frozen at construction: these are read-only
    # copies, and mutating them does not change what runs. ----------

    @property
    def platform(self) -> str:
        return self._spec.platforms[0]

    @property
    def processors(self) -> int:
        return self._spec.processors

    @property
    def tools(self) -> List[str]:
        return list(self._spec.tools)

    @property
    def tpl_sizes(self) -> List[int]:
        return list(self._spec.tpl_sizes)

    @property
    def global_sum_ints(self) -> int:
        return self._spec.global_sum_ints

    @property
    def apps(self) -> List[str]:
        return list(self._spec.apps)

    @property
    def app_params(self) -> Dict[str, dict]:
        return {name: dict(params) for name, params in self._spec.app_params.items()}

    @property
    def seed(self) -> int:
        return self._spec.seeds[0]

    def _results(self):
        """Run (or re-read) every job of the spec through the cache."""
        return self._scheduler.run(self._spec)

    # ------------------------------------------------------------------
    # Level measurements
    # ------------------------------------------------------------------

    def measure_tpl(self) -> List[MeasurementSet]:
        """All primitive measurement sets (one per primitive x size).

        Runs only the TPL jobs (not the whole spec), so a TPL-only
        query never simulates the applications.
        """
        from repro.core.results import collect_tpl_sets

        values = self._scheduler.run_jobs(self._spec.tpl_jobs(self.platform, self.seed))
        return collect_tpl_sets(self._spec, self.platform, self.seed, values)

    def measure_apl(self) -> List[MeasurementSet]:
        """Application measurement sets (one per application)."""
        from repro.core.results import collect_apl_sets

        values = self._scheduler.run_jobs(self._spec.apl_jobs(self.platform, self.seed))
        return collect_apl_sets(self._spec, self.platform, self.seed, values)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def run(self, profile: WeightProfile = BALANCED) -> EvaluationReport:
        """Measure everything (once) and produce the weighted report."""
        return self._results().report(self.platform, profile, self.seed)


def evaluate_tools(
    platform: str = "sun-ethernet",
    processors: int = 4,
    tools: Sequence[str] = PAPER_TOOL_NAMES,
    profile: WeightProfile = BALANCED,
    seed: int = 0,
    **evaluator_options,
) -> EvaluationReport:
    """One-call evaluation: the library's quickstart entry point.

    Examples
    --------
    >>> report = evaluate_tools(platform="sun-ethernet", processors=4)
    >>> report.best_tool()
    'p4'
    """
    evaluator = Evaluator(
        platform, processors=processors, tools=tools, seed=seed, **evaluator_options
    )
    return evaluator.run(profile)
