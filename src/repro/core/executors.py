"""Execution backends behind one streaming ``Executor`` protocol.

Earlier revisions grew an ad-hoc executor duo — ``run(jobs)`` returning
a list and ``run_instrumented(jobs, retries)`` returning a generator —
and every new backend had to implement both with subtly matching
semantics.  This module collapses them into a single protocol method::

    submit(jobs, retries=1) -> Iterator[JobOutcome]

``jobs`` may be any (possibly lazy) iterable; outcomes stream back
**in job order** while later jobs may still be executing, which is
what lets the scheduler persist each finished measurement immediately
(kill/cancel-and-resume) and feed live progress events.  The uniform
lifecycle is ``close()`` / context manager, and capability flags
(:attr:`Executor.name`, :attr:`Executor.supports_streaming`,
:attr:`Executor.max_workers`) let callers introspect a backend without
``isinstance`` checks.  Three backends implement it:

* :class:`SerialExecutor` — in-process, one job at a time (default).
* :class:`ProcessPoolExecutor` — ``concurrent.futures`` worker
  processes, jobs chunked through a sliding window over a persistent,
  lazily-created pool.
* :class:`AsyncExecutor` — an asyncio event loop (semaphore-bounded
  ``asyncio.to_thread`` concurrency) driven in a background thread,
  so asyncio-native deployments and the synchronous scheduler share
  one backend.

A fourth backend lives in :mod:`repro.distributed`:
``RemoteExecutor`` publishes jobs to an on-disk queue that
``repro worker`` processes pull from, sharing results through the
sharded disk cache — it implements exactly ``submit`` and passes the
protocol-conformance suite in ``tests/core/test_executor_protocol.py``
unchanged.

The legacy entry points survive as thin conveniences on the base
class: ``run(jobs)`` drains ``submit`` into a value list and
``run_instrumented`` is an alias for ``submit``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import os
import queue
import threading
import time
from collections import deque
from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence, Union

from repro.core.jobs import MeasurementJob, execute_job
from repro.errors import EvaluationError

__all__ = [
    "JobOutcome",
    "execute_job_instrumented",
    "execute_job_chunk",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "AsyncExecutor",
    "EXECUTOR_BACKENDS",
    "resolve_workers",
    "create_executor",
]


class JobOutcome(NamedTuple):
    """What instrumented execution reports per job."""

    value: Optional[float]
    wall_seconds: float
    attempts: int


def execute_job_instrumented(job: MeasurementJob, retries: int = 1) -> JobOutcome:
    """Run one job, timing it and retrying transient failures.

    Module-level so it pickles into :mod:`concurrent.futures` worker
    processes.
    """
    if retries < 1:
        raise EvaluationError("retries must be >= 1")
    start = time.perf_counter()
    for attempt in range(1, retries + 1):
        try:
            value = execute_job(job)
        except EvaluationError:
            raise  # misconfiguration: retrying cannot help
        except Exception:
            if attempt == retries:
                raise
        else:
            return JobOutcome(value, time.perf_counter() - start, attempt)
    raise AssertionError("unreachable")  # pragma: no cover


def execute_job_chunk(jobs: Sequence[MeasurementJob], retries: int = 1) -> List[JobOutcome]:
    """Run a chunk of jobs in one worker round-trip (module-level so it
    pickles into :mod:`concurrent.futures` worker processes)."""
    return [execute_job_instrumented(job, retries) for job in jobs]


class Executor(object):
    """The execution-backend protocol: ``submit`` plus a lifecycle.

    Subclasses implement :meth:`submit`; everything else — the legacy
    ``run``/``run_instrumented`` entry points, ``close`` and the
    context-manager protocol — comes from this base class.  Backends
    with real resources (a worker pool) override :meth:`close`.
    """

    #: Short machine-readable backend name (lands in telemetry).
    name = "executor"

    #: True when ``submit`` yields outcomes as they finish rather than
    #: materializing the whole batch first.  Every built-in backend
    #: streams; the flag exists so tooling can warn about third-party
    #: backends that buffer (their kill/cancel persistence is coarser).
    supports_streaming = True

    #: Upper bound on concurrently executing jobs (1 = serial).
    max_workers = 1

    def submit(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        """Execute ``jobs``, yielding one :class:`JobOutcome` per job
        **in job order**.  ``jobs`` may be lazy; implementations must
        not materialize it wholesale.  Closing the returned generator
        early must drop work that has not started."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent; a closed executor
        may be reused — resources are rebuilt lazily)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- legacy conveniences (pre-protocol API) ------------------------

    def run(self, jobs: Iterable[MeasurementJob]) -> List[Optional[float]]:
        """Values only, as a list (drains :meth:`submit`)."""
        return [outcome.value for outcome in self.submit(jobs)]

    def run_instrumented(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        """Alias for :meth:`submit` (the pre-protocol spelling)."""
        return self.submit(jobs, retries)


class SerialExecutor(Executor):
    """Run jobs one after another in this process (the default)."""

    name = "serial"
    max_workers = 1

    def submit(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        # A generator, deliberately: the scheduler persists each
        # outcome as it arrives, so a killed sweep keeps every job it
        # finished instead of losing the whole batch.
        for job in jobs:
            yield execute_job_instrumented(job, retries)


class ProcessPoolExecutor(Executor):
    """Fan jobs out over ``max_workers`` worker processes.

    Jobs and samples are plain picklable values, so this is a thin
    wrapper over :class:`concurrent.futures.ProcessPoolExecutor`;
    result order matches job order.

    The underlying pool is created lazily on the first batch and
    **reused across calls**: repeated ``submit`` passes (the common
    shape under sweep traffic — one ``Scheduler.run`` per spec) pay
    worker startup once, not once per pass.  Call :meth:`close` (or
    use the executor as a context manager) to shut the workers down;
    an executor left open is reclaimed at interpreter exit.

    Tools registered at run time (:func:`repro.tools.registry.register_tool`)
    reach workers only on fork-based platforms (Linux): under the
    ``spawn`` start method (macOS/Windows) each worker re-imports the
    registry without the registration, so use :class:`SerialExecutor`
    for custom tools there.
    """

    name = "process-pool"

    #: Jobs shipped per worker round-trip (IPC amortization without
    #: delaying result streaming much).
    chunk_jobs = 4

    #: Chunks kept in flight per worker: deep enough that no worker
    #: idles while results stream back, shallow enough that a huge
    #: grid never materializes on this side.
    window_factor = 4

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise EvaluationError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def submit(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        # Streams results in job order while the pool keeps working:
        # chunks of jobs are submitted through a sliding window (no
        # barrier — as each oldest chunk's results are yielded, fresh
        # chunks are consumed from the (possibly lazy) iterable), so
        # the scheduler persists finished work while later jobs are
        # still simulating and a huge grid never materializes here.
        jobs = iter(jobs)
        in_flight: deque = deque()
        window = self.max_workers * self.window_factor
        try:
            while True:
                while len(in_flight) < window:
                    chunk = list(itertools.islice(jobs, self.chunk_jobs))
                    if not chunk:
                        break
                    in_flight.append(
                        self._ensure_pool().submit(execute_job_chunk, chunk, retries)
                    )
                if not in_flight:
                    return
                for outcome in in_flight.popleft().result():
                    yield outcome
        except concurrent.futures.BrokenExecutor:
            # A dead worker poisons the whole pool: drop it so the
            # next pass starts fresh instead of failing forever.
            self.close()
            raise
        finally:
            # The consumer may abandon the generator early — an
            # exception mid-sweep, itertools.islice, ctrl-C, a
            # RunHandle cancel.  Without this, every chunk still in
            # the window keeps simulating in the pool (and new
            # consumers queue behind it).  Cancel whatever has not
            # started; chunks already executing run to completion,
            # which is as good as process pools offer.
            for future in in_flight:
                future.cancel()


_NO_MORE_JOBS = object()


class AsyncExecutor(Executor):
    """Execute jobs on an asyncio event loop, ``max_workers`` at a time.

    Each job runs in :func:`asyncio.to_thread` behind an
    :class:`asyncio.Semaphore`, so up to ``max_workers`` simulations
    overlap while the loop stays responsive.  The loop itself runs in
    a dedicated background thread (``asyncio.run``), which is what
    lets this backend serve the synchronous :meth:`submit` protocol:
    outcomes cross back over a queue, in job order, as they finish.

    This is the asyncio counterpart of :class:`ProcessPoolExecutor`
    for workloads that are not CPU-bound in Python alone (simulations
    releasing the GIL in numpy, future remote/IO-bound backends), and
    the reference for the ROADMAP's async scheduler-backend item.
    It holds no persistent resources: ``close`` is a no-op and every
    ``submit`` call drives its own short-lived loop.
    """

    name = "async"

    #: Jobs admitted to the loop beyond the ones actively executing —
    #: bounds how far a lazy job iterable is consumed ahead.
    window_factor = 2

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise EvaluationError("max_workers must be >= 1")
        self.max_workers = max_workers

    def submit(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        if retries < 1:
            raise EvaluationError("retries must be >= 1")
        window = self.max_workers * self.window_factor
        # Bounded: real backpressure.  The loop cannot run more than
        # window queued + window in-flight outcomes ahead of the
        # consumer, so a slow consumer (persisting to disk) never
        # strands O(grid) finished-but-unstored outcomes in memory —
        # store-as-completed kill/resume granularity stays comparable
        # to the pool backend's.
        outcomes: queue.Queue = queue.Queue(maxsize=window)
        stop = threading.Event()

        def deliver(item) -> bool:
            """Put onto the bounded queue unless the consumer walked
            away (then nobody will ever drain it: abandon instead of
            blocking forever)."""
            while not stop.is_set():
                try:
                    outcomes.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def pump() -> None:
            try:
                asyncio.run(self._drive(iter(jobs), retries, deliver, stop))
            except BaseException as error:  # noqa: BLE001 — relayed to consumer
                deliver(("error", error))
            else:
                deliver(("done", None))

        thread = threading.Thread(
            target=pump, name="repro-async-executor", daemon=True
        )
        thread.start()
        try:
            while True:
                kind, payload = outcomes.get()
                if kind == "outcome":
                    yield payload
                elif kind == "done":
                    return
                else:
                    raise payload
        finally:
            # Consumer finished or abandoned the stream: tell the loop
            # to stop admitting jobs and wait for it to wind down (in-
            # flight jobs finish; queued ones are cancelled).
            stop.set()
            thread.join()

    async def _drive(self, jobs, retries, deliver, stop) -> None:
        semaphore = asyncio.Semaphore(self.max_workers)

        async def bounded(job):
            async with semaphore:
                return await asyncio.to_thread(execute_job_instrumented, job, retries)

        window = self.max_workers * self.window_factor
        in_flight: deque = deque()
        try:
            while not stop.is_set():
                while len(in_flight) < window:
                    job = next(jobs, _NO_MORE_JOBS)
                    if job is _NO_MORE_JOBS:
                        break
                    in_flight.append(asyncio.ensure_future(bounded(job)))
                if not in_flight:
                    return
                # Await strictly in submission order so outcomes leave
                # in job order even when later jobs finish first.  The
                # deliver() below intentionally blocks this loop when
                # the consumer lags (already-started to_thread jobs
                # keep running; no *new* work is admitted) — that IS
                # the backpressure.
                if not deliver(("outcome", await in_flight.popleft())):
                    return
        finally:
            for task in in_flight:
                task.cancel()
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)


#: Backend names :func:`create_executor` understands.
EXECUTOR_BACKENDS = ("serial", "process", "async", "remote")


def resolve_workers(jobs: Union[int, str, None]) -> int:
    """Normalize a ``--jobs``-style request to a worker count.

    ``"auto"`` (or ``None``) means one worker per CPU.  Anything else
    must be a positive integer — the check runs *here*, before any
    spec expansion or pool construction, so a bad value fails with a
    clear :class:`~repro.errors.ReproError` instead of an unhelpful
    downstream crash.
    """
    if jobs is None or (isinstance(jobs, str) and jobs.strip().lower() == "auto"):
        return os.cpu_count() or 1
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise EvaluationError(
            "jobs must be a positive integer or 'auto', got %r" % (jobs,)
        )
    if jobs < 1:
        raise EvaluationError(
            "jobs must be >= 1, got %d (use 'auto' for one worker per CPU)" % jobs
        )
    return jobs


def create_executor(
    jobs: Union[int, str, None] = 1,
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> Executor:
    """Executor for a ``--jobs N [--backend B]`` style request.

    ``jobs`` accepts a positive integer or ``"auto"`` (one worker per
    CPU).  ``backend`` picks the implementation explicitly — one of
    :data:`EXECUTOR_BACKENDS` — while the default keeps the classic
    behavior: serial for one worker, a process pool otherwise.  The
    ``remote`` backend additionally needs ``queue_dir``, the shared
    job-queue directory its ``repro worker`` fleet watches; ``jobs``
    then sizes the coordinator's admission window, not a local pool.
    """
    workers = resolve_workers(jobs)
    if backend is None:
        backend = "serial" if workers == 1 else "process"
    if backend != "remote" and queue_dir is not None:
        raise EvaluationError(
            "queue_dir only applies to the remote backend, not %r" % backend
        )
    if backend == "serial":
        return SerialExecutor()
    if backend == "process":
        return ProcessPoolExecutor(max_workers=workers)
    if backend == "async":
        return AsyncExecutor(max_workers=workers)
    if backend == "remote":
        if queue_dir is None:
            raise EvaluationError(
                "the remote backend needs a queue directory (--queue DIR) "
                "shared with its repro worker processes"
            )
        # Imported here: repro.distributed builds on this module.
        from repro.distributed.executor import RemoteExecutor

        return RemoteExecutor(queue_dir=queue_dir, max_workers=workers)
    raise EvaluationError(
        "unknown executor backend %r; available: %s"
        % (backend, ", ".join(EXECUTOR_BACKENDS))
    )
