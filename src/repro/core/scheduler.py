"""Job scheduling: streaming runs, the result cache, and telemetry.

The :class:`Scheduler` turns an
:class:`~repro.core.spec.EvaluationSpec` into a
:class:`~repro.core.results.ResultSet`.  Each
:class:`~repro.core.jobs.MeasurementJob` is an independent simulation,
so execution is embarrassingly parallel: any
:class:`~repro.core.executors.Executor` backend can run it
(:class:`~repro.core.executors.SerialExecutor` in-process,
:class:`~repro.core.executors.ProcessPoolExecutor` over worker
processes, :class:`~repro.core.executors.AsyncExecutor` on an asyncio
loop).  Finished samples land in a
:class:`~repro.core.cache.ResultCache` keyed by the job's content
address — pass ``cache_dir=`` for a persistent on-disk cache a killed
(or cancelled) sweep resumes from, and ``shards=`` to spread it over
N sub-stores.  ``engine="analytic"`` / ``engine="auto"`` answer
eligible misses from the vectorized closed-form models in
:mod:`repro.analytic` instead of simulating them (bit-identical where
admitted; ``auto`` falls back to the event kernel elsewhere).

Execution itself is a *streaming* API.  :meth:`Scheduler.start`
returns a :class:`RunHandle` — the run executes in a background
thread while the handle exposes

* :meth:`RunHandle.events` — typed
  :class:`~repro.core.progress.RunEvent` records as they happen,
* :meth:`RunHandle.progress` — done/total/hit-rate/ETA snapshots,
* :meth:`RunHandle.cancel` — cooperative cancellation (in-flight work
  finishes and persists; queued work is dropped), and
* :meth:`RunHandle.result` — block until done and get the
  :class:`~repro.core.results.ResultSet`.

:meth:`Scheduler.run` and :meth:`Scheduler.run_jobs` are thin blocking
wrappers over :meth:`start`, so the classic call sites (CLI, bench
runner, the ``Evaluator`` shim) keep their exact semantics — including
store-as-completed cache persistence and the golden fixtures.

Every executed or cache-served job leaves a :class:`JobTelemetry`
record (wall time, executor, hit/miss, attempt count) in
``Scheduler.telemetry``; :meth:`Scheduler.run` hands the relevant
slice to the :class:`~repro.core.results.ResultSet` so exports carry
provenance alongside samples.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Optional

from repro.core.cache import MISSING, CacheBackend, ResultCache
from repro.core.executors import (
    AsyncExecutor,
    EXECUTOR_BACKENDS,
    Executor,
    JobOutcome,
    ProcessPoolExecutor,
    SerialExecutor,
    create_executor,
    execute_job_chunk,
    execute_job_instrumented,
    resolve_workers,
)
from repro.core.jobs import MeasurementJob
from repro.core.progress import (
    CacheHit,
    JobFinished,
    JobStarted,
    Progress,
    RunCompleted,
    RunEvent,
)
from repro.errors import EvaluationError, RunCancelled

__all__ = [
    "ResultCache",
    "JobOutcome",
    "JobTelemetry",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "AsyncExecutor",
    "EXECUTOR_BACKENDS",
    "create_executor",
    "resolve_workers",
    "execute_job_instrumented",
    "execute_job_chunk",
    "RunHandle",
    "Scheduler",
]

# Backward-compatible alias: the sentinel moved to repro.core.cache.
_MISSING = MISSING


@dataclass(frozen=True)
class JobTelemetry:
    """Provenance of one sample in one scheduler pass.

    ``wall_seconds`` is ``None`` when the executor could not report
    per-job timing (a custom executor without ``submit``); cache hits
    record ``0.0`` — the sample cost nothing this pass.  ``engine``
    records how the sample was produced — ``"event"`` for a
    discrete-event simulation, ``"analytic"`` for a closed-form
    evaluation — so exports distinguish computed from simulated.
    """

    job: MeasurementJob  # schema: external - keyed by the job in telemetry maps
    executor: str
    cache_hit: bool
    wall_seconds: Optional[float]
    attempts: int
    engine: str = "event"

    def to_dict(self) -> dict:
        """Export form.  ``job`` is deliberately absent: telemetry is
        stored and exported in mappings keyed by the job, so embedding
        it would duplicate every job in every export row."""
        return {
            "executor": self.executor,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
            "attempts": self.attempts,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, job: MeasurementJob, data: dict) -> "JobTelemetry":
        """Rebuild a record from its export row plus the job it was
        keyed under (the inverse of a ``{job: record.to_dict()}``
        mapping entry)."""
        return cls(
            job=job,
            executor=data["executor"],
            cache_hit=bool(data["cache_hit"]),
            wall_seconds=data["wall_seconds"],
            attempts=int(data["attempts"]),
            engine=data.get("engine", "event"),
        )


class RunHandle(object):
    """A live, observable, cancellable evaluation run.

    Created by :meth:`Scheduler.start` / :meth:`Scheduler.start_jobs`;
    the run itself executes in a daemon worker thread while this
    handle is the control surface.  Any number of :meth:`events`
    iterators may consume the stream (each sees every event from the
    beginning); :meth:`progress` and :meth:`values` snapshot state
    without consuming anything.

    Cancellation is cooperative: :meth:`cancel` returns immediately,
    the run stops *dispatching* new jobs, jobs already handed to the
    executor finish and persist to the cache, and the run ends with a
    :class:`~repro.core.progress.RunCompleted` event flagged
    ``cancelled``.  :meth:`result` then raises
    :class:`~repro.errors.RunCancelled` — re-running the spec over the
    same cache resumes exactly like a killed sweep.  Cancelling after
    the last job was dispatched is a no-op (nothing left to drop).
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        jobs: Iterable[MeasurementJob],
        total: Optional[int],
        spec=None,
        on_event: Optional[Callable[[RunEvent], None]] = None,
        buffer_events: bool = True,
    ) -> None:
        self._scheduler = scheduler
        self._spec = spec
        self._on_event = on_event
        self._buffer_events = buffer_events
        self._total = total
        self._values: Dict[MeasurementJob, Optional[float]] = {}
        self._events = []
        self._cond = threading.Condition()
        self._cancel_event = threading.Event()
        self._cancelled = False
        self._finished = False
        self._error: Optional[BaseException] = None
        self._dispatched = 0
        self._simulated = 0
        self._cache_hits = 0
        self._started_at = time.perf_counter()
        self._elapsed: Optional[float] = None
        self._thread = threading.Thread(
            target=self._work, args=(jobs,), name="repro-run", daemon=True
        )
        self._thread.start()

    # -- worker side (called from the run thread / executor threads) --

    def _work(self, jobs: Iterable[MeasurementJob]) -> None:
        try:
            self._scheduler._drive(jobs, self)
        except BaseException as error:  # noqa: BLE001 — re-raised in result()
            self._error = error
        finally:
            with self._cond:
                self._finished = True
                if self._elapsed is None:
                    self._elapsed = time.perf_counter() - self._started_at
                self._cond.notify_all()

    def _notify(self, event: RunEvent) -> None:
        # Outside the lock: a misbehaving callback must not be able to
        # deadlock progress()/events() consumers.
        if self._on_event is not None:
            self._on_event(event)

    def _append(self, event: RunEvent) -> None:
        """Under ``self._cond``.  Skipping the replay buffer when no
        events() consumer can exist keeps blocking ``run``/``run_jobs``
        at O(1) event memory — a huge grid must not retain 2N+1 event
        records nobody will read."""
        if self._buffer_events:
            self._events.append(event)

    def _job_started(self, job: MeasurementJob) -> None:
        with self._cond:
            event = JobStarted(job, self._dispatched)
            self._dispatched += 1
            self._values[job] = None  # reserve first-occurrence order
            self._append(event)
            self._cond.notify_all()
        self._notify(event)

    def _cache_hit(self, job: MeasurementJob, value: Optional[float]) -> None:
        with self._cond:
            event = CacheHit(job, value)
            self._cache_hits += 1
            self._values[job] = value
            self._append(event)
            self._cond.notify_all()
        self._notify(event)

    def _job_finished(
        self, job: MeasurementJob, outcome: JobOutcome, engine: str = "event"
    ) -> None:
        with self._cond:
            event = JobFinished(
                job, outcome.value, outcome.wall_seconds, outcome.attempts, engine
            )
            self._simulated += 1
            self._values[job] = outcome.value
            self._append(event)
            self._cond.notify_all()
        self._notify(event)

    def _mark_cancelled(self) -> None:
        with self._cond:
            self._cancelled = True

    def _drop_reservations(self, jobs: Iterable[MeasurementJob]) -> None:
        """Forget dispatched-but-never-finished jobs (a cancelled run
        whose executor dropped queued work): their ``None``
        reservations must not read as samples."""
        with self._cond:
            for job in jobs:
                self._values.pop(job, None)

    def _completed(self) -> None:
        with self._cond:
            self._elapsed = time.perf_counter() - self._started_at
            event = RunCompleted(
                total=self._simulated + self._cache_hits,
                simulated=self._simulated,
                cache_hits=self._cache_hits,
                cancelled=self._cancelled,
                wall_seconds=self._elapsed,
            )
            self._append(event)
            self._cond.notify_all()
        self._notify(event)

    # -- consumer side ------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once the run has actually observed a cancel request
        (not merely had one issued)."""
        return self._cancelled

    @property
    def running(self) -> bool:
        return not self._finished

    @property
    def spec(self):
        return self._spec

    def cancel(self) -> None:
        """Request cooperative cancellation and return immediately.

        No new jobs are dispatched after the request is observed;
        in-flight work finishes and its samples persist to the cache.
        Idempotent; a no-op if the run already dispatched everything.
        """
        self._cancel_event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run ends; True if it did within ``timeout``."""
        with self._cond:
            self._cond.wait_for(lambda: self._finished, timeout)
            return self._finished

    def events(self) -> Iterator[RunEvent]:
        """Iterate the run's typed events, from the beginning, live.

        Blocks between events while the run is active and ends after
        the final event.  Several iterators may run concurrently; each
        sees the full stream.
        """
        if not self._buffer_events:
            raise EvaluationError(
                "this run does not buffer events (blocking run()/run_jobs "
                "keep event memory at O(1)); use Scheduler.start(), or its "
                "on_event callback, to stream them"
            )
        index = 0
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: index < len(self._events) or self._finished
                )
                if index >= len(self._events):
                    return
                event = self._events[index]
            index += 1
            yield event

    def progress(self) -> Progress:
        """An immutable done/total/hit-rate/ETA snapshot, any time."""
        with self._cond:
            elapsed = self._elapsed
            if elapsed is None:
                elapsed = time.perf_counter() - self._started_at
            return Progress(
                total=self._total,
                dispatched=self._dispatched,
                completed=self._simulated + self._cache_hits,
                simulated=self._simulated,
                cache_hits=self._cache_hits,
                elapsed_seconds=elapsed,
                cancelled=self._cancelled,
                finished=self._finished,
            )

    def values(self) -> Dict[MeasurementJob, Optional[float]]:
        """Snapshot of the samples gathered so far (partial while the
        run is live; dispatched-but-unfinished jobs read ``None``)."""
        with self._cond:
            return dict(self._values)

    def result(self, timeout: Optional[float] = None):
        """Block until the run ends and return its result.

        Started from a spec this is the familiar
        :class:`~repro.core.results.ResultSet`; started from bare jobs
        it is the ``job -> sample`` dict.  A failed run re-raises the
        worker's exception; a cancelled run raises
        :class:`~repro.errors.RunCancelled`.

        An interrupt (ctrl-C) while waiting cancels the run
        cooperatively and *joins the worker first*, so every completed
        outcome is flushed to the cache before the KeyboardInterrupt
        propagates — an interrupted sweep resumes like a killed one.
        """
        try:
            finished = self.wait(timeout)
        except BaseException:
            self.cancel()
            self._thread.join()
            raise
        if not finished:
            raise EvaluationError(
                "run still executing after %gs (cancel() it, or wait "
                "without a timeout)" % timeout
            )
        if self._error is not None:
            raise self._error
        if self._cancelled:
            raise RunCancelled(
                "run cancelled after %d simulated + %d cached of %s jobs; "
                "completed samples are persisted — re-run the spec over the "
                "same cache to resume"
                % (self._simulated, self._cache_hits,
                   "?" if self._total is None else self._total)
            )
        if self._spec is None:
            return dict(self._values)
        from repro.core.results import ResultSet

        telemetry = {
            job: self._scheduler.telemetry[job]
            for job in self._values
            if job in self._scheduler.telemetry
        }
        return ResultSet(self._spec, self._values, telemetry=telemetry)


class Scheduler(object):
    """Executes specs: expand, dedupe, consult the cache, fan out.

    Parameters
    ----------
    executor:
        Any :class:`~repro.core.executors.Executor` (default serial).
        Pre-protocol executors still work: objects offering only
        ``run_instrumented(jobs, retries)`` or ``run(jobs)`` are
        adapted (the latter without per-job timing or streaming).
    cache:
        A shared :class:`~repro.core.cache.ResultCache`; pass one
        cache to several schedulers (or several ``run`` calls) to
        share measurements across sweeps.
    cache_backend:
        Alternatively, a bare :class:`~repro.core.cache.CacheBackend`
        to wrap in a fresh ``ResultCache``.
    cache_dir:
        Alternatively, a directory for a persistent on-disk cache
        (optionally split over ``shards`` sub-stores; the default
        ``None`` adopts the directory's recorded shard roster); an
        interrupted sweep re-launched with the same directory
        simulates only the jobs the first run never finished.
    retries:
        Attempts per job before an unexpected simulation failure
        propagates (1 = no retry).
    engine:
        How cache misses are answered: ``"event"`` (default) runs
        every miss as a discrete-event simulation on the executor;
        ``"analytic"`` answers every miss from the vectorized
        closed-form models in :mod:`repro.analytic` and *raises* on a
        job they cannot reproduce bit-identically (noise, contended
        traffic patterns, unmodeled kinds); ``"auto"`` answers the
        analytic-eligible misses in closed form and falls back to the
        event kernel for the rest.  Analytic batches bypass the
        executor entirely and share one curve-level cache
        (:attr:`analytic`) across every run of this scheduler.

    One scheduler drives one run at a time: start the next
    :class:`RunHandle` after the previous one ended (the executor and
    telemetry map are shared state).
    """

    #: Engine choices ``__init__`` accepts.
    ENGINES = ("event", "analytic", "auto")

    #: Jobs probed against the cache per bulk ``get_many`` round-trip
    #: (one lock acquisition and, on disk, one directory listing per
    #: touched fanout bucket — instead of one probe per job).
    PROBE_CHUNK = 256

    def __init__(
        self,
        executor=None,
        cache: Optional[ResultCache] = None,
        cache_backend: Optional[CacheBackend] = None,
        cache_dir: Optional[str] = None,
        shards: Optional[int] = None,
        retries: int = 1,
        engine: str = "event",
    ) -> None:
        if sum(option is not None for option in (cache, cache_backend, cache_dir)) > 1:
            raise EvaluationError(
                "pass at most one of cache=, cache_backend= and cache_dir="
            )
        if retries < 1:
            raise EvaluationError("retries must be >= 1")
        if engine not in self.ENGINES:
            raise EvaluationError(
                "unknown engine %r; available: %s"
                % (engine, ", ".join(self.ENGINES))
            )
        self.engine = engine
        #: The :class:`~repro.analytic.AnalyticEngine` (with its
        #: curve-level cache) serving this scheduler's closed-form
        #: batches; ``None`` under the pure event engine.
        self.analytic = None
        if engine != "event":
            # Imported lazily: the analytic models pull in numpy, which
            # the pure event path must not require at import time.
            from repro.analytic import AnalyticEngine

            self.analytic = AnalyticEngine()
        self.executor = executor if executor is not None else SerialExecutor()
        if cache is not None:
            self.cache = cache
        elif cache_backend is not None:
            self.cache = ResultCache(cache_backend)
        elif cache_dir is not None:
            self.cache = ResultCache.on_disk(cache_dir, shards=shards)
        else:
            self.cache = ResultCache()
        self.retries = retries
        #: Simulations actually executed (cache misses) over this
        #: scheduler's lifetime — the acceptance counter.
        self.simulations_run = 0
        #: job -> :class:`JobTelemetry` for every job this scheduler
        #: has served (latest pass wins on re-runs).
        self.telemetry: Dict[MeasurementJob, JobTelemetry] = {}

    @property
    def executor_name(self) -> str:
        return getattr(self.executor, "name", type(self.executor).__name__)

    def _execute(self, pending: Iterable[MeasurementJob]) -> Iterator[JobOutcome]:
        submit = getattr(self.executor, "submit", None)
        if submit is not None:
            return iter(submit(pending, retries=self.retries))
        # Pre-protocol executors: `run_instrumented` is the old
        # streaming spelling; plain `run(jobs)` executors predate
        # telemetry (and streaming) entirely — hand them a real list;
        # samples come back untimed, so wall_seconds is honestly
        # unknown.
        runner = getattr(self.executor, "run_instrumented", None)
        if runner is not None:
            return iter(runner(pending, retries=self.retries))
        return iter(
            JobOutcome(value, None, 1) for value in self.executor.run(list(pending))
        )

    def _drive(self, jobs: Iterable[MeasurementJob], handle: RunHandle) -> None:
        """The streaming core: dedupe, consult the cache, dispatch
        misses, persist outcomes as they arrive, narrate everything
        through ``handle``.  Runs on the handle's worker thread (the
        job iterable itself may be consumed from an executor-internal
        thread — :class:`~repro.core.executors.AsyncExecutor`)."""
        in_flight: deque = deque()
        seen = set()
        analytic = self.analytic

        def serve_analytic(batch) -> None:
            """Answer a chunk's analytic-eligible misses inline — one
            vectorized model call per curve, no executor round-trip.
            The jobs were announced (``_job_started``) in stream order
            as they were collected, so result ordering matches the
            event engine's exactly.  Runs on whatever thread is
            consuming ``misses()``; every handle/cache/telemetry
            surface it touches is locked."""
            start = time.perf_counter()
            values = analytic.compute_many(batch)
            wall = (time.perf_counter() - start) / len(batch)
            for job in batch:
                outcome = JobOutcome(values[job], wall, 1)
                self.cache.store(job, outcome.value)
                self.telemetry[job] = JobTelemetry(
                    job, "analytic", False, outcome.wall_seconds, 1,
                    engine="analytic",
                )
                self.simulations_run += 1
                handle._job_finished(job, outcome, engine="analytic")

        def misses() -> Iterator[MeasurementJob]:
            source = iter(jobs)
            while True:
                # Probe the cache a chunk at a time: one get_many call
                # replaces PROBE_CHUNK individual lookups (and, on
                # disk, one listdir per bucket replaces one open
                # attempt per job).  Chunking also batches the
                # analytic engine's work into few vectorized calls.
                chunk = list(itertools.islice(source, self.PROBE_CHUNK))
                if not chunk:
                    return
                cached = self.cache.get_many(
                    job for job in chunk if job not in seen
                )
                batch = []
                for job in chunk:
                    if handle._cancel_event.is_set():
                        # Cooperative cancel: stop dispatching.
                        # Everything already yielded keeps executing
                        # (and persisting); this job, the rest of the
                        # stream, and the unserved analytic batch are
                        # dropped (the batch's announced-but-never-
                        # finished reservations must not read as
                        # samples).
                        handle._drop_reservations(batch)
                        handle._mark_cancelled()
                        return
                    if job in seen:
                        continue
                    seen.add(job)
                    if job in cached:
                        self.telemetry[job] = JobTelemetry(
                            job, self.executor_name, True, 0.0, 0
                        )
                        handle._cache_hit(job, cached[job])
                        continue
                    if analytic is not None:
                        if analytic.eligible(job):
                            # Announce now (stream order), answer at
                            # the end of the chunk in one batch.
                            handle._job_started(job)
                            batch.append(job)
                            continue
                        if self.engine == "analytic":
                            raise EvaluationError(
                                "engine='analytic' cannot serve job %s: %s "
                                "(use engine='auto' to fall back to the "
                                "event kernel)"
                                % (job.label(), analytic.why_ineligible(job))
                            )
                    in_flight.append(job)
                    handle._job_started(job)
                    yield job
                if batch:
                    serve_analytic(batch)

        # Store each outcome as the executor yields it: a sweep killed
        # (or crashed, or cancelled) mid-batch keeps every job it
        # finished, which is what makes --cache-dir resume skip all
        # completed work.
        for outcome in self._execute(misses()):
            if not in_flight:
                raise EvaluationError(
                    "executor %s returned more outcomes than jobs"
                    % self.executor_name
                )
            job = in_flight.popleft()
            self.cache.store(job, outcome.value)
            self.telemetry[job] = JobTelemetry(
                job, self.executor_name, False, outcome.wall_seconds, outcome.attempts
            )
            self.simulations_run += 1
            handle._job_finished(job, outcome)
        if in_flight:
            if handle.cancelled:
                # The built-in executors finish everything dispatched,
                # but a cancelled custom backend may drop queued jobs;
                # their reservations must not masquerade as samples.
                handle._drop_reservations(in_flight)
            else:
                raise EvaluationError(
                    "executor %s returned %d outcome(s) too few"
                    % (self.executor_name, len(in_flight))
                )
        handle._completed()

    # -- the streaming API --------------------------------------------

    def start(
        self,
        spec,
        on_event: Optional[Callable[[RunEvent], None]] = None,
        buffer_events: bool = True,
    ) -> RunHandle:
        """Begin running ``spec`` and return its :class:`RunHandle`.

        Returns immediately; the sweep executes on a background
        thread.  ``on_event`` (optional) is called synchronously for
        every :class:`~repro.core.progress.RunEvent` — note it may
        fire from executor-internal threads.  ``buffer_events=False``
        disables the :meth:`RunHandle.events` replay buffer (O(1)
        event memory; ``on_event`` and ``progress()`` still work) —
        what the blocking wrappers do for huge grids.
        """
        expand = getattr(spec, "iter_jobs", spec.jobs)
        counter = getattr(spec, "job_count", None)
        total = counter() if counter is not None else None
        return RunHandle(
            self, expand(), total=total, spec=spec, on_event=on_event,
            buffer_events=buffer_events,
        )

    def start_jobs(
        self,
        jobs: Iterable[MeasurementJob],
        total: Optional[int] = None,
        on_event: Optional[Callable[[RunEvent], None]] = None,
        buffer_events: bool = True,
    ) -> RunHandle:
        """Like :meth:`start` for a bare job iterable (lazy iterables
        welcome — they are consumed as the run advances).  ``total``
        feeds progress/ETA; it defaults to ``len(jobs)`` when the
        iterable is sized and stays unknown otherwise."""
        if total is None:
            try:
                total = len(jobs)  # type: ignore[arg-type]
            except TypeError:
                total = None
        return RunHandle(
            self, jobs, total=total, on_event=on_event,
            buffer_events=buffer_events,
        )

    # -- blocking wrappers (the classic API) --------------------------

    def run_jobs(
        self, jobs: Iterable[MeasurementJob]
    ) -> Dict[MeasurementJob, Optional[float]]:
        """Samples for ``jobs``, simulating only what the cache lacks.

        A thin blocking wrapper over :meth:`start_jobs`.  ``jobs`` may
        be any iterable — in particular a streaming spec expansion
        (:meth:`EvaluationSpec.iter_jobs`); it is consumed lazily, so
        a huge grid never materializes as a full job list.

        A job's ``noise`` amplitude is part of its content address,
        so noisy and deterministic runs of the same configuration are
        distinct cache entries — a noisy sweep never serves (or
        poisons) a deterministic one.
        """
        # No events() consumer can exist for a blocking call: skip the
        # replay buffer so huge grids stay at O(1) event memory.
        return self.start_jobs(jobs, buffer_events=False).result()

    def run(self, spec, on_event: Optional[Callable[[RunEvent], None]] = None):
        """Run a whole spec and wrap the samples in a ResultSet.

        A thin blocking wrapper over :meth:`start`; pass ``on_event``
        to observe the run without managing the handle yourself.
        """
        return self.start(spec, on_event=on_event, buffer_events=False).result()

    def close(self) -> None:
        """Release executor resources (a persistent worker pool, if any)."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
