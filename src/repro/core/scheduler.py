"""Job scheduling: executors, the result cache, and per-job telemetry.

The :class:`Scheduler` turns an
:class:`~repro.core.spec.EvaluationSpec` into a
:class:`~repro.core.results.ResultSet`.  Each
:class:`~repro.core.jobs.MeasurementJob` is an independent simulation,
so execution is embarrassingly parallel: the executor is pluggable —
:class:`SerialExecutor` runs in-process,
:class:`ProcessPoolExecutor` fans jobs out over worker processes via
:mod:`concurrent.futures`.  Finished samples land in a
:class:`~repro.core.cache.ResultCache` keyed by the job's content
address, behind any :class:`~repro.core.cache.CacheBackend` — pass
``cache_dir=`` for a persistent on-disk cache a killed sweep resumes
from, and ``shards=`` to spread it over N sub-stores.

Every executed or cache-served job leaves a :class:`JobTelemetry`
record (wall time, executor, hit/miss, attempt count) in
``Scheduler.telemetry``; :meth:`Scheduler.run` hands the relevant
slice to the :class:`~repro.core.results.ResultSet` so exports carry
provenance alongside samples.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence

from repro.core.cache import MISSING, CacheBackend, ResultCache
from repro.core.jobs import MeasurementJob, execute_job
from repro.errors import EvaluationError

__all__ = [
    "ResultCache",
    "JobOutcome",
    "JobTelemetry",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "create_executor",
    "execute_job_instrumented",
    "Scheduler",
]

# Backward-compatible alias: the sentinel moved to repro.core.cache.
_MISSING = MISSING


class JobOutcome(NamedTuple):
    """What instrumented execution reports per job."""

    value: Optional[float]
    wall_seconds: float
    attempts: int


@dataclass(frozen=True)
class JobTelemetry:
    """Provenance of one sample in one scheduler pass.

    ``wall_seconds`` is ``None`` when the executor could not report
    per-job timing (a custom executor without ``run_instrumented``);
    cache hits record ``0.0`` — the sample cost nothing this pass.
    """

    job: MeasurementJob
    executor: str
    cache_hit: bool
    wall_seconds: Optional[float]
    attempts: int

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
            "attempts": self.attempts,
        }


def execute_job_chunk(jobs: Sequence[MeasurementJob], retries: int = 1) -> List[JobOutcome]:
    """Run a chunk of jobs in one worker round-trip (module-level so it
    pickles into :mod:`concurrent.futures` worker processes)."""
    return [execute_job_instrumented(job, retries) for job in jobs]


def execute_job_instrumented(job: MeasurementJob, retries: int = 1) -> JobOutcome:
    """Run one job, timing it and retrying transient failures.

    Module-level so it pickles into :mod:`concurrent.futures` worker
    processes.
    """
    if retries < 1:
        raise EvaluationError("retries must be >= 1")
    start = time.perf_counter()
    for attempt in range(1, retries + 1):
        try:
            value = execute_job(job)
        except EvaluationError:
            raise  # misconfiguration: retrying cannot help
        except Exception:
            if attempt == retries:
                raise
        else:
            return JobOutcome(value, time.perf_counter() - start, attempt)
    raise AssertionError("unreachable")  # pragma: no cover


class SerialExecutor(object):
    """Run jobs one after another in this process (the default)."""

    name = "serial"

    def run(self, jobs: Iterable[MeasurementJob]) -> List[Optional[float]]:
        return [execute_job(job) for job in jobs]

    def run_instrumented(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        # A generator, deliberately: the scheduler persists each
        # outcome as it arrives, so a killed sweep keeps every job it
        # finished instead of losing the whole batch.
        for job in jobs:
            yield execute_job_instrumented(job, retries)


class ProcessPoolExecutor(object):
    """Fan jobs out over ``max_workers`` worker processes.

    Jobs and samples are plain picklable values, so this is a thin
    wrapper over :class:`concurrent.futures.ProcessPoolExecutor`;
    result order matches job order.

    The underlying pool is created lazily on the first batch and
    **reused across calls**: repeated ``run``/``run_instrumented``
    passes (the common shape under sweep traffic — one ``Scheduler.run``
    per spec) pay worker startup once, not once per pass.  Call
    :meth:`close` (or use the executor as a context manager) to shut
    the workers down; an executor left open is reclaimed at
    interpreter exit.

    Tools registered at run time (:func:`repro.tools.registry.register_tool`)
    reach workers only on fork-based platforms (Linux): under the
    ``spawn`` start method (macOS/Windows) each worker re-imports the
    registry without the registration, so use :class:`SerialExecutor`
    for custom tools there.
    """

    name = "process-pool"

    #: Jobs shipped per worker round-trip in :meth:`run_instrumented`
    #: (IPC amortization without delaying result streaming much).
    chunk_jobs = 4

    #: Chunks kept in flight per worker: deep enough that no worker
    #: idles while results stream back, shallow enough that a huge
    #: grid never materializes on this side.
    window_factor = 4

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise EvaluationError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
        return self._pool

    def _chunksize(self, njobs: int) -> int:
        """IPC amortization: aim for ~4 chunks per worker, capped so a
        straggler chunk cannot idle the rest of the pool for long."""
        return max(1, min(32, njobs // (self.max_workers * 4)))

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessPoolExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def run(self, jobs: Iterable[MeasurementJob]) -> List[Optional[float]]:
        jobs = list(jobs)
        if not jobs:
            return []
        pool = self._ensure_pool()
        try:
            return list(
                pool.map(execute_job, jobs, chunksize=self._chunksize(len(jobs)))
            )
        except concurrent.futures.BrokenExecutor:
            # A dead worker poisons the whole pool: drop it so the
            # next pass starts fresh instead of failing forever.
            self.close()
            raise

    def run_instrumented(
        self, jobs: Iterable[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        # Streams results in job order while the pool keeps working:
        # chunks of jobs are submitted through a sliding window (no
        # barrier — as each oldest chunk's results are yielded, fresh
        # chunks are consumed from the (possibly lazy) iterable), so
        # the scheduler persists finished work while later jobs are
        # still simulating and a huge grid never materializes here.
        jobs = iter(jobs)
        in_flight: deque = deque()
        window = self.max_workers * self.window_factor
        try:
            while True:
                while len(in_flight) < window:
                    chunk = list(itertools.islice(jobs, self.chunk_jobs))
                    if not chunk:
                        break
                    in_flight.append(
                        self._ensure_pool().submit(execute_job_chunk, chunk, retries)
                    )
                if not in_flight:
                    return
                for outcome in in_flight.popleft().result():
                    yield outcome
        except concurrent.futures.BrokenExecutor:
            self.close()
            raise
        finally:
            # The consumer may abandon the generator early — an
            # exception mid-sweep, itertools.islice, ctrl-C.  Without
            # this, every chunk still in the window keeps simulating
            # in the pool (and new consumers queue behind it).  Cancel
            # whatever has not started; chunks already executing run
            # to completion, which is as good as process pools offer.
            for future in in_flight:
                future.cancel()


def create_executor(jobs: int = 1):
    """Executor for a ``--jobs N`` style request: serial for 1."""
    if jobs < 1:
        raise EvaluationError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor()
    return ProcessPoolExecutor(max_workers=jobs)


class Scheduler(object):
    """Executes specs: expand, dedupe, consult the cache, fan out.

    Parameters
    ----------
    executor:
        Any object with ``run(jobs) -> samples`` (default serial);
        executors that also offer ``run_instrumented(jobs, retries)``
        get per-job wall times and retry handling.
    cache:
        A shared :class:`~repro.core.cache.ResultCache`; pass one
        cache to several schedulers (or several ``run`` calls) to
        share measurements across sweeps.
    cache_backend:
        Alternatively, a bare :class:`~repro.core.cache.CacheBackend`
        to wrap in a fresh ``ResultCache``.
    cache_dir:
        Alternatively, a directory for a persistent on-disk cache
        (optionally split over ``shards`` sub-stores); an interrupted
        sweep re-launched with the same directory simulates only the
        jobs the first run never finished.
    retries:
        Attempts per job before an unexpected simulation failure
        propagates (1 = no retry).
    """

    def __init__(
        self,
        executor=None,
        cache: Optional[ResultCache] = None,
        cache_backend: Optional[CacheBackend] = None,
        cache_dir: Optional[str] = None,
        shards: int = 1,
        retries: int = 1,
    ) -> None:
        if sum(option is not None for option in (cache, cache_backend, cache_dir)) > 1:
            raise EvaluationError(
                "pass at most one of cache=, cache_backend= and cache_dir="
            )
        if retries < 1:
            raise EvaluationError("retries must be >= 1")
        self.executor = executor if executor is not None else SerialExecutor()
        if cache is not None:
            self.cache = cache
        elif cache_backend is not None:
            self.cache = ResultCache(cache_backend)
        elif cache_dir is not None:
            self.cache = ResultCache.on_disk(cache_dir, shards=shards)
        else:
            self.cache = ResultCache()
        self.retries = retries
        #: Simulations actually executed (cache misses) over this
        #: scheduler's lifetime — the acceptance counter.
        self.simulations_run = 0
        #: job -> :class:`JobTelemetry` for every job this scheduler
        #: has served (latest pass wins on re-runs).
        self.telemetry: Dict[MeasurementJob, JobTelemetry] = {}

    @property
    def executor_name(self) -> str:
        return getattr(self.executor, "name", type(self.executor).__name__)

    def _execute(self, pending: Iterable[MeasurementJob]) -> Iterator[JobOutcome]:
        runner = getattr(self.executor, "run_instrumented", None)
        if runner is not None:
            return iter(runner(pending, retries=self.retries))
        # Plain `run(jobs)` executors predate telemetry (and streaming):
        # hand them a real list; samples come back untimed, so
        # wall_seconds is honestly unknown.
        return iter(
            JobOutcome(value, None, 1) for value in self.executor.run(list(pending))
        )

    def run_jobs(
        self, jobs: Iterable[MeasurementJob]
    ) -> Dict[MeasurementJob, Optional[float]]:
        """Samples for ``jobs``, simulating only what the cache lacks.

        ``jobs`` may be any iterable — in particular a streaming spec
        expansion (:meth:`EvaluationSpec.iter_jobs`).  It is consumed
        lazily: cache hits resolve during the scan and misses flow
        straight into the executor, so a huge grid never materializes
        as a full job list on this side.

        A job's ``noise`` amplitude is part of its content address,
        so noisy and deterministic runs of the same configuration are
        distinct cache entries — a noisy sweep never serves (or
        poisons) a deterministic one.
        """
        results: Dict[MeasurementJob, Optional[float]] = {}
        in_flight: deque = deque()
        seen = set()

        def misses() -> Iterator[MeasurementJob]:
            for job in jobs:
                if job in seen:
                    continue
                seen.add(job)
                value = self.cache.lookup(job)
                if value is MISSING:
                    # Reserve the job's slot now so the result dict
                    # keeps first-occurrence order (exports iterate it).
                    results[job] = None
                    in_flight.append(job)
                    yield job
                else:
                    results[job] = value
                    self.telemetry[job] = JobTelemetry(
                        job, self.executor_name, True, 0.0, 0
                    )

        # Store each outcome as the executor yields it: a sweep killed
        # (or crashed) mid-batch keeps every job it finished, which is
        # what makes --cache-dir resume skip all completed work.
        for outcome in self._execute(misses()):
            if not in_flight:
                raise EvaluationError(
                    "executor %s returned more outcomes than jobs"
                    % self.executor_name
                )
            job = in_flight.popleft()
            self.cache.store(job, outcome.value)
            self.telemetry[job] = JobTelemetry(
                job, self.executor_name, False, outcome.wall_seconds, outcome.attempts
            )
            self.simulations_run += 1
            results[job] = outcome.value
        if in_flight:
            raise EvaluationError(
                "executor %s returned %d outcome(s) too few"
                % (self.executor_name, len(in_flight))
            )
        return results

    def run(self, spec):
        """Run a whole spec and wrap the samples in a ResultSet."""
        from repro.core.results import ResultSet

        expand = getattr(spec, "iter_jobs", spec.jobs)
        values = self.run_jobs(expand())
        telemetry = {
            job: self.telemetry[job] for job in values if job in self.telemetry
        }
        return ResultSet(spec, values, telemetry=telemetry)

    def close(self) -> None:
        """Release executor resources (a persistent worker pool, if any)."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
