"""Job scheduling: executors and the content-keyed result cache.

The :class:`Scheduler` turns an
:class:`~repro.core.spec.EvaluationSpec` into a
:class:`~repro.core.results.ResultSet`.  Each
:class:`~repro.core.jobs.MeasurementJob` is an independent simulation,
so execution is embarrassingly parallel: the executor is pluggable —
:class:`SerialExecutor` runs in-process,
:class:`ProcessPoolExecutor` fans jobs out over worker processes via
:mod:`concurrent.futures`.  Finished samples land in a
:class:`ResultCache` keyed by the job itself ``(kind, tool, platform,
processors, params, seed)``, so repeated sweeps, overlapping grids and
multi-profile re-scoring never re-simulate.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.jobs import MeasurementJob, execute_job
from repro.errors import EvaluationError

__all__ = [
    "ResultCache",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "create_executor",
    "Scheduler",
]

_MISSING = object()


class ResultCache(object):
    """Memo of completed measurements: job -> sample (seconds or None).

    ``hits``/``misses`` count lookups, so callers can verify that a
    re-run of an identical spec performed zero new simulations.
    """

    def __init__(self) -> None:
        self._store: Dict[MeasurementJob, Optional[float]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, job: MeasurementJob) -> bool:
        return job in self._store

    def lookup(self, job: MeasurementJob):
        """The cached sample, or the module-private MISSING sentinel
        (``None`` is a legitimate sample: "Not Available")."""
        value = self._store.get(job, _MISSING)
        if value is _MISSING:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, job: MeasurementJob, value: Optional[float]) -> None:
        self._store[job] = value

    def peek(self, job: MeasurementJob) -> Optional[float]:
        """The cached sample, without touching the hit/miss counters."""
        return self._store[job]

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


class SerialExecutor(object):
    """Run jobs one after another in this process (the default)."""

    name = "serial"

    def run(self, jobs: Sequence[MeasurementJob]) -> List[Optional[float]]:
        return [execute_job(job) for job in jobs]


class ProcessPoolExecutor(object):
    """Fan jobs out over ``max_workers`` worker processes.

    Jobs and samples are plain picklable values, so this is a thin
    wrapper over :class:`concurrent.futures.ProcessPoolExecutor`;
    result order matches job order.

    Tools registered at run time (:func:`repro.tools.registry.register_tool`)
    reach workers only on fork-based platforms (Linux): under the
    ``spawn`` start method (macOS/Windows) each worker re-imports the
    registry without the registration, so use :class:`SerialExecutor`
    for custom tools there.
    """

    name = "process-pool"

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise EvaluationError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(self, jobs: Sequence[MeasurementJob]) -> List[Optional[float]]:
        if not jobs:
            return []
        workers = min(self.max_workers, len(jobs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_job, jobs))


def create_executor(jobs: int = 1):
    """Executor for a ``--jobs N`` style request: serial for 1."""
    if jobs < 1:
        raise EvaluationError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor()
    return ProcessPoolExecutor(max_workers=jobs)


class Scheduler(object):
    """Executes specs: expand, dedupe, consult the cache, fan out.

    Parameters
    ----------
    executor:
        Any object with ``run(jobs) -> samples`` (default serial).
    cache:
        A shared :class:`ResultCache`; pass one cache to several
        schedulers (or several ``run`` calls) to share measurements
        across sweeps.
    """

    def __init__(self, executor=None, cache: Optional[ResultCache] = None) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache if cache is not None else ResultCache()
        #: Simulations actually executed (cache misses) over this
        #: scheduler's lifetime — the acceptance counter.
        self.simulations_run = 0

    def run_jobs(
        self, jobs: Iterable[MeasurementJob]
    ) -> Dict[MeasurementJob, Optional[float]]:
        """Samples for ``jobs``, simulating only what the cache lacks."""
        jobs = list(jobs)
        pending = []
        seen = set()
        for job in jobs:
            if job in seen:
                continue
            seen.add(job)
            if self.cache.lookup(job) is _MISSING:
                pending.append(job)
        samples = self.executor.run(pending)
        for job, sample in zip(pending, samples):
            self.cache.store(job, sample)
        self.simulations_run += len(pending)
        return {job: self.cache.peek(job) for job in jobs}

    def run(self, spec):
        """Run a whole spec and wrap the samples in a ResultSet."""
        from repro.core.results import ResultSet

        values = self.run_jobs(spec.jobs())
        return ResultSet(spec, values)
