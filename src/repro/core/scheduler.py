"""Job scheduling: executors, the result cache, and per-job telemetry.

The :class:`Scheduler` turns an
:class:`~repro.core.spec.EvaluationSpec` into a
:class:`~repro.core.results.ResultSet`.  Each
:class:`~repro.core.jobs.MeasurementJob` is an independent simulation,
so execution is embarrassingly parallel: the executor is pluggable —
:class:`SerialExecutor` runs in-process,
:class:`ProcessPoolExecutor` fans jobs out over worker processes via
:mod:`concurrent.futures`.  Finished samples land in a
:class:`~repro.core.cache.ResultCache` keyed by the job's content
address, behind any :class:`~repro.core.cache.CacheBackend` — pass
``cache_dir=`` for a persistent on-disk cache a killed sweep resumes
from, and ``shards=`` to spread it over N sub-stores.

Every executed or cache-served job leaves a :class:`JobTelemetry`
record (wall time, executor, hit/miss, attempt count) in
``Scheduler.telemetry``; :meth:`Scheduler.run` hands the relevant
slice to the :class:`~repro.core.results.ResultSet` so exports carry
provenance alongside samples.
"""

from __future__ import annotations

import concurrent.futures
import functools
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence

from repro.core.cache import MISSING, CacheBackend, ResultCache
from repro.core.jobs import MeasurementJob, execute_job
from repro.errors import EvaluationError

__all__ = [
    "ResultCache",
    "JobOutcome",
    "JobTelemetry",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "create_executor",
    "execute_job_instrumented",
    "Scheduler",
]

# Backward-compatible alias: the sentinel moved to repro.core.cache.
_MISSING = MISSING


class JobOutcome(NamedTuple):
    """What instrumented execution reports per job."""

    value: Optional[float]
    wall_seconds: float
    attempts: int


@dataclass(frozen=True)
class JobTelemetry:
    """Provenance of one sample in one scheduler pass.

    ``wall_seconds`` is ``None`` when the executor could not report
    per-job timing (a custom executor without ``run_instrumented``);
    cache hits record ``0.0`` — the sample cost nothing this pass.
    """

    job: MeasurementJob
    executor: str
    cache_hit: bool
    wall_seconds: Optional[float]
    attempts: int

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "cache_hit": self.cache_hit,
            "wall_seconds": self.wall_seconds,
            "attempts": self.attempts,
        }


def execute_job_instrumented(job: MeasurementJob, retries: int = 1) -> JobOutcome:
    """Run one job, timing it and retrying transient failures.

    Module-level (and called via :func:`functools.partial`) so it
    pickles into :mod:`concurrent.futures` worker processes.
    """
    if retries < 1:
        raise EvaluationError("retries must be >= 1")
    start = time.perf_counter()
    for attempt in range(1, retries + 1):
        try:
            value = execute_job(job)
        except EvaluationError:
            raise  # misconfiguration: retrying cannot help
        except Exception:
            if attempt == retries:
                raise
        else:
            return JobOutcome(value, time.perf_counter() - start, attempt)
    raise AssertionError("unreachable")  # pragma: no cover


class SerialExecutor(object):
    """Run jobs one after another in this process (the default)."""

    name = "serial"

    def run(self, jobs: Sequence[MeasurementJob]) -> List[Optional[float]]:
        return [execute_job(job) for job in jobs]

    def run_instrumented(
        self, jobs: Sequence[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        # A generator, deliberately: the scheduler persists each
        # outcome as it arrives, so a killed sweep keeps every job it
        # finished instead of losing the whole batch.
        for job in jobs:
            yield execute_job_instrumented(job, retries)


class ProcessPoolExecutor(object):
    """Fan jobs out over ``max_workers`` worker processes.

    Jobs and samples are plain picklable values, so this is a thin
    wrapper over :class:`concurrent.futures.ProcessPoolExecutor`;
    result order matches job order.

    Tools registered at run time (:func:`repro.tools.registry.register_tool`)
    reach workers only on fork-based platforms (Linux): under the
    ``spawn`` start method (macOS/Windows) each worker re-imports the
    registry without the registration, so use :class:`SerialExecutor`
    for custom tools there.
    """

    name = "process-pool"

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise EvaluationError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(self, jobs: Sequence[MeasurementJob]) -> List[Optional[float]]:
        if not jobs:
            return []
        workers = min(self.max_workers, len(jobs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_job, jobs))

    def run_instrumented(
        self, jobs: Sequence[MeasurementJob], retries: int = 1
    ) -> Iterator[JobOutcome]:
        # Streams results as ``pool.map`` yields them (in job order),
        # so the scheduler persists finished work while later jobs
        # are still simulating.
        if not jobs:
            return
        worker = functools.partial(execute_job_instrumented, retries=retries)
        workers = min(self.max_workers, len(jobs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            for outcome in pool.map(worker, jobs):
                yield outcome


def create_executor(jobs: int = 1):
    """Executor for a ``--jobs N`` style request: serial for 1."""
    if jobs < 1:
        raise EvaluationError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor()
    return ProcessPoolExecutor(max_workers=jobs)


class Scheduler(object):
    """Executes specs: expand, dedupe, consult the cache, fan out.

    Parameters
    ----------
    executor:
        Any object with ``run(jobs) -> samples`` (default serial);
        executors that also offer ``run_instrumented(jobs, retries)``
        get per-job wall times and retry handling.
    cache:
        A shared :class:`~repro.core.cache.ResultCache`; pass one
        cache to several schedulers (or several ``run`` calls) to
        share measurements across sweeps.
    cache_backend:
        Alternatively, a bare :class:`~repro.core.cache.CacheBackend`
        to wrap in a fresh ``ResultCache``.
    cache_dir:
        Alternatively, a directory for a persistent on-disk cache
        (optionally split over ``shards`` sub-stores); an interrupted
        sweep re-launched with the same directory simulates only the
        jobs the first run never finished.
    retries:
        Attempts per job before an unexpected simulation failure
        propagates (1 = no retry).
    """

    def __init__(
        self,
        executor=None,
        cache: Optional[ResultCache] = None,
        cache_backend: Optional[CacheBackend] = None,
        cache_dir: Optional[str] = None,
        shards: int = 1,
        retries: int = 1,
    ) -> None:
        if sum(option is not None for option in (cache, cache_backend, cache_dir)) > 1:
            raise EvaluationError(
                "pass at most one of cache=, cache_backend= and cache_dir="
            )
        if retries < 1:
            raise EvaluationError("retries must be >= 1")
        self.executor = executor if executor is not None else SerialExecutor()
        if cache is not None:
            self.cache = cache
        elif cache_backend is not None:
            self.cache = ResultCache(cache_backend)
        elif cache_dir is not None:
            self.cache = ResultCache.on_disk(cache_dir, shards=shards)
        else:
            self.cache = ResultCache()
        self.retries = retries
        #: Simulations actually executed (cache misses) over this
        #: scheduler's lifetime — the acceptance counter.
        self.simulations_run = 0
        #: job -> :class:`JobTelemetry` for every job this scheduler
        #: has served (latest pass wins on re-runs).
        self.telemetry: Dict[MeasurementJob, JobTelemetry] = {}

    @property
    def executor_name(self) -> str:
        return getattr(self.executor, "name", type(self.executor).__name__)

    def _execute(self, pending: List[MeasurementJob]) -> Iterator[JobOutcome]:
        runner = getattr(self.executor, "run_instrumented", None)
        if runner is not None:
            return iter(runner(pending, retries=self.retries))
        # Plain `run(jobs)` executors predate telemetry: samples come
        # back untimed, so wall_seconds is honestly unknown.
        return iter(
            JobOutcome(value, None, 1) for value in self.executor.run(pending)
        )

    def run_jobs(
        self, jobs: Iterable[MeasurementJob]
    ) -> Dict[MeasurementJob, Optional[float]]:
        """Samples for ``jobs``, simulating only what the cache lacks."""
        jobs = list(jobs)
        pending = []
        seen = set()
        for job in jobs:
            if job in seen:
                continue
            seen.add(job)
            if self.cache.lookup(job) is MISSING:
                pending.append(job)
            else:
                self.telemetry[job] = JobTelemetry(
                    job, self.executor_name, True, 0.0, 0
                )
        # Store each outcome as the executor yields it: a sweep killed
        # (or crashed) mid-batch keeps every job it finished, which is
        # what makes --cache-dir resume skip all completed work.
        for job, outcome in zip(pending, self._execute(pending)):
            self.cache.store(job, outcome.value)
            self.telemetry[job] = JobTelemetry(
                job, self.executor_name, False, outcome.wall_seconds, outcome.attempts
            )
            self.simulations_run += 1
        return {job: self.cache.peek(job) for job in jobs}

    def run(self, spec):
        """Run a whole spec and wrap the samples in a ResultSet."""
        from repro.core.results import ResultSet

        values = self.run_jobs(spec.jobs())
        telemetry = {
            job: self.telemetry[job] for job in values if job in self.telemetry
        }
        return ResultSet(spec, values, telemetry=telemetry)
