"""Small-sample statistics for multi-seed score aggregation.

Seeds are the replication axis of an :class:`~repro.core.spec.EvaluationSpec`:
one spec run under seeds ``(0, 1, 2, ...)`` yields one overall score
per seed for every (platform, profile, tool) cell, and reports should
state the mean with an honest uncertainty.  With a handful of seeds a
normal interval is too tight, so confidence intervals use Student's t
critical values (two-sided, table for small df, normal limit beyond);
``scipy`` stays out of the dependency set.

Everything is plain python floats — sample sizes here are seeds, not
measurements, so vectorization would buy nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import EvaluationError

__all__ = ["SampleStats", "summarize", "t_critical"]

#: Two-sided Student's t critical values by degrees of freedom, for
#: the confidence levels reports offer.  The table covers df 1..30;
#: df > 30 *intentionally* falls back to the normal-limit critical
#: value (the ``0`` entry) — at df 31 the 95% t value is ~2.04 vs
#: 1.96 normal (a ~4% narrower interval, shrinking with df) and the
#: seeds axis never gets that deep in practice, so a longer table
#: would be precision theater.
_T_TABLE: Dict[float, Sequence[float]] = {
    0.90: (1.645, 6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
           1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740,
           1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
           1.703, 1.701, 1.699, 1.697),
    0.95: (1.960, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
           2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
           2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
           2.052, 2.048, 2.045, 2.042),
    0.99: (2.576, 63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
           3.250, 3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898,
           2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
           2.771, 2.763, 2.756, 2.750),
}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student's t critical value for ``df`` degrees of
    freedom.

    ``df`` beyond the table (> 30) deliberately uses the normal-limit
    value — a documented approximation, not an oversight: the
    interval comes out ~4% narrow at df 31 and the error shrinks
    from there.
    """
    try:
        table = _T_TABLE[confidence]
    except KeyError:
        raise EvaluationError(
            "unsupported confidence %r; available: %s"
            % (confidence, ", ".join("%.2f" % level for level in sorted(_T_TABLE)))
        )
    if df < 1:
        raise EvaluationError("degrees of freedom must be >= 1")
    if df < len(table):
        return table[df]
    return table[0]


@dataclass(frozen=True)
class SampleStats:
    """Mean / sample stddev / CI half-width of one score sample."""

    n: int
    mean: float
    stddev: float
    ci_halfwidth: float
    confidence: float = 0.95

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "stddev": self.stddev,
            "ci_halfwidth": self.ci_halfwidth,
            "confidence": self.confidence,
        }

    def __str__(self) -> str:
        return "%.3f ±%.3f" % (self.mean, self.ci_halfwidth)


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SampleStats:
    """Mean, sample stddev (ddof=1) and t-based CI half-width.

    A single sample is legal and degenerate by design: stddev and the
    interval collapse to exactly ``0.0`` — never ``NaN`` — so
    single-seed specs flow through the same reporting path.
    """
    values = [float(value) for value in samples]
    if not values:
        raise EvaluationError("cannot summarize an empty sample")
    n = len(values)
    mean = math.fsum(values) / n
    if n == 1:
        return SampleStats(n, mean, 0.0, 0.0, confidence)
    variance = math.fsum((value - mean) ** 2 for value in values) / (n - 1)
    stddev = math.sqrt(variance)
    halfwidth = t_critical(n - 1, confidence) * stddev / math.sqrt(n)
    return SampleStats(n, mean, stddev, halfwidth, confidence)
