"""The paper's ADL assessment of p4, PVM and Express (Section 3.3.1).

This table is reproduced verbatim from the paper; it is *assessment
data*, the input the methodology scores, not something the simulation
measures.  The MPI extension column is our own assessment applying
the same criteria to 1995-era MPICH, used only by the extension
benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.criteria import ADL_CRITERIA, NS, PS, Rating, WS
from repro.errors import EvaluationError

__all__ = ["USABILITY_MATRIX", "usability_ratings", "adl_score"]

#: criterion key -> {tool name -> Rating}.  The p4/PVM/Express columns
#: are the paper's table, row by row.
USABILITY_MATRIX: Dict[str, Dict[str, Rating]] = {
    "programming-models": {"p4": WS, "pvm": WS, "express": WS, "mpi": WS},
    "language-interface": {"p4": WS, "pvm": WS, "express": WS, "mpi": WS},
    "ease-of-programming": {"p4": PS, "pvm": WS, "express": PS, "mpi": PS},
    "debugging-support": {"p4": PS, "pvm": PS, "express": WS, "mpi": PS},
    "customization": {"p4": PS, "pvm": NS, "express": PS, "mpi": PS},
    "error-handling": {"p4": PS, "pvm": PS, "express": PS, "mpi": PS},
    "run-time-interface": {"p4": PS, "pvm": WS, "express": WS, "mpi": PS},
    "integration": {"p4": PS, "pvm": WS, "express": NS, "mpi": PS},
    "portability": {"p4": WS, "pvm": WS, "express": WS, "mpi": WS},
}


def usability_ratings(tool_name: str) -> Dict[str, Rating]:
    """All criterion ratings for one tool.

    Raises
    ------
    EvaluationError
        If the tool has no assessment column.
    """
    ratings = {}
    for criterion in ADL_CRITERIA:
        row = USABILITY_MATRIX[criterion.key]
        if tool_name not in row:
            raise EvaluationError(
                "no usability assessment for tool %r (criterion %s)"
                % (tool_name, criterion.key)
            )
        ratings[criterion.key] = row[tool_name]
    return ratings


def adl_score(tool_name: str, criteria: Iterable = ADL_CRITERIA) -> float:
    """Weighted ADL score in [0, 1] for one tool."""
    criteria = list(criteria)
    total_weight = sum(criterion.weight for criterion in criteria)
    if total_weight <= 0:
        raise EvaluationError("ADL criteria weights sum to zero")
    ratings = usability_ratings(tool_name)
    weighted = sum(
        criterion.weight * ratings[criterion.key].score for criterion in criteria
    )
    return weighted / total_weight
