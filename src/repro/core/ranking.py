"""Primitive-class rankings: the paper's Table 4 machinery.

Table 4 summarizes, per platform and primitive class, the order in
which the tools finish.  :func:`primitive_rankings` regenerates that
ordering from fresh measurements; :func:`summary_table` renders the
same row/column layout the paper prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import measurements
from repro.core.metrics import rank_by_value
from repro.tools.registry import PAPER_TOOL_NAMES

__all__ = ["PRIMITIVE_CLASSES", "primitive_rankings", "summary_table"]

#: The primitive classes of Table 4, in column order.
PRIMITIVE_CLASSES = ("snd/rcv", "broadcast", "ring", "global sum")


def primitive_rankings(
    platform_name: str,
    nbytes: int = 65536,
    vector_ints: int = 25_000,
    processors: int = 4,
    tools: Sequence[str] = PAPER_TOOL_NAMES,
    seed: int = 0,
) -> Dict[str, List[str]]:
    """Tool orderings (best first) per primitive class on a platform.

    Tools that do not provide a primitive are *omitted* from its
    ranking, exactly as Table 4 leaves PVM out of the global-sum
    column.
    """
    values_by_class: Dict[str, Dict[str, Optional[float]]] = {
        "snd/rcv": {
            tool: measurements.measure_sendrecv(tool, platform_name, nbytes, seed=seed)
            for tool in tools
        },
        "broadcast": {
            tool: measurements.measure_broadcast(
                tool, platform_name, nbytes, processors=processors, seed=seed
            )
            for tool in tools
        },
        "ring": {
            tool: measurements.measure_ring(
                tool, platform_name, nbytes, processors=processors, seed=seed
            )
            for tool in tools
        },
        "global sum": {
            tool: measurements.measure_global_sum(
                tool, platform_name, vector_ints, processors=processors, seed=seed
            )
            for tool in tools
        },
    }
    rankings = {}
    for class_name, values in values_by_class.items():
        supported = {tool: value for tool, value in values.items() if value is not None}
        rankings[class_name] = rank_by_value(supported)
    return rankings


def summary_table(rankings_by_platform: Dict[str, Dict[str, List[str]]]) -> str:
    """Render Table 4: platforms as column groups, ranks as rows."""
    lines = []
    for platform_name, rankings in rankings_by_platform.items():
        lines.append(platform_name)
        columns = [c for c in PRIMITIVE_CLASSES if c in rankings]
        widths = [max(len(c), 10) for c in columns]
        header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
        lines.append("  " + header)
        depth = max(len(rankings[c]) for c in columns)
        for position in range(depth):
            cells = []
            for column, width in zip(columns, widths):
                order = rankings[column]
                cell = order[position] if position < len(order) else ""
                cells.append(cell.ljust(width))
            lines.append("  " + "  ".join(cells).rstrip())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
