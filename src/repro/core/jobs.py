"""Measurement jobs: the atomic, cacheable unit of evaluation work.

A :class:`MeasurementJob` names one simulation — a primitive
micro-benchmark or an application run for one tool on one platform
with fixed parameters and seed.  Jobs are frozen and hashable, so a
job is its own cache key: two sweeps that share a configuration share
the measurement.  :func:`execute_job` maps a job onto the matching
function in :mod:`repro.core.measurements`; it is a module-level
function so jobs can ship to ``concurrent.futures`` worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import EvaluationError, validate_noise

__all__ = [
    "JOB_KINDS",
    "MeasurementJob",
    "execute_job",
    "sendrecv_job",
    "broadcast_job",
    "ring_job",
    "global_sum_job",
    "application_job",
]

#: Every job kind :func:`execute_job` can run.
JOB_KINDS = ("sendrecv", "broadcast", "ring", "global_sum", "application")


@dataclass(frozen=True)
class MeasurementJob:
    """One simulation to run: ``(kind, tool, platform, params, seed, noise)``.

    ``params`` is a sorted tuple of ``(name, value)`` pairs rather
    than a dict so the job stays hashable; :meth:`params_dict` gives
    the convenient view back.  ``noise`` is the seeded stochastic
    amplitude handed to :func:`~repro.hardware.catalog.build_platform`
    (``0.0`` = deterministic); it is part of the job's content
    address, so noisy and deterministic runs never share a cache
    entry.
    """

    kind: str
    tool: str
    platform: str
    processors: int
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    seed: int = 0
    noise: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise EvaluationError(
                "unknown job kind %r; available: %s" % (self.kind, ", ".join(JOB_KINDS))
            )
        object.__setattr__(self, "params", tuple(sorted(tuple(self.params))))
        object.__setattr__(
            self, "noise", validate_noise(self.noise, EvaluationError)
        )

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready description (the persistent cache's entry body).

        ``noise`` appears only when nonzero: deterministic jobs keep
        the exact serialization (and therefore the exact cache keys)
        they had before the knob existed, so existing cache
        directories and golden fixtures stay valid.
        """
        data = {
            "kind": self.kind,
            "tool": self.tool,
            "platform": self.platform,
            "processors": self.processors,
            "params": [[name, value] for name, value in self.params],
            "seed": self.seed,
        }
        if self.noise:
            data["noise"] = self.noise
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MeasurementJob":
        """Rebuild a job from :meth:`to_dict` output (JSON turns the
        param pairs into lists; re-tuple them so the job hashes)."""
        return cls(
            kind=data["kind"],
            tool=data["tool"],
            platform=data["platform"],
            processors=int(data["processors"]),
            params=tuple((name, value) for name, value in data["params"]),
            seed=int(data["seed"]),
            noise=float(data.get("noise", 0.0)),
        )

    def short_label(self) -> str:
        """Compact ``kind tool@platform`` tag — sized for the one-line
        progress displays fed by the streaming run events, where the
        full :meth:`label` (params, seed, noise) would not fit."""
        return "%s %s@%s" % (self.kind, self.tool, self.platform)

    def label(self) -> str:
        """Short human-readable description (for logs and traces)."""
        inner = ", ".join("%s=%s" % item for item in self.params)
        text = "%s[%s] %s@%s/%d seed=%d" % (
            self.kind, inner, self.tool, self.platform, self.processors, self.seed,
        )
        if self.noise:
            text += " noise=%g" % self.noise
        return text


def sendrecv_job(
    tool: str, platform: str, nbytes: int, seed: int = 0, noise: float = 0.0
) -> MeasurementJob:
    """Round-trip echo between ranks 0 and 1 (always a 2-rank run)."""
    return MeasurementJob("sendrecv", tool, platform, 2, (("nbytes", nbytes),), seed, noise)


def broadcast_job(
    tool: str, platform: str, nbytes: int, processors: int, seed: int = 0,
    noise: float = 0.0,
) -> MeasurementJob:
    return MeasurementJob(
        "broadcast", tool, platform, processors, (("nbytes", nbytes),), seed, noise
    )


def ring_job(
    tool: str, platform: str, nbytes: int, processors: int, seed: int = 0,
    noise: float = 0.0,
) -> MeasurementJob:
    return MeasurementJob("ring", tool, platform, processors, (("nbytes", nbytes),), seed, noise)


def global_sum_job(
    tool: str, platform: str, vector_ints: int, processors: int, seed: int = 0,
    noise: float = 0.0,
) -> MeasurementJob:
    return MeasurementJob(
        "global_sum", tool, platform, processors, (("vector_ints", vector_ints),), seed, noise
    )


def application_job(
    app: str, tool: str, platform: str, processors: int, seed: int = 0,
    noise: float = 0.0, **app_params
) -> MeasurementJob:
    params = (("app", app),) + tuple(app_params.items())
    return MeasurementJob("application", tool, platform, processors, params, seed, noise)


def execute_job(job: MeasurementJob) -> Optional[float]:
    """Run one job's simulation and return its sample (seconds).

    ``None`` marks "Not Available" (a tool missing the primitive),
    exactly as in :mod:`repro.core.measurements`.
    """
    from repro.core import measurements

    params = job.params_dict()
    if job.kind == "sendrecv":
        return measurements.measure_sendrecv(
            job.tool, job.platform, params["nbytes"],
            processors=job.processors, seed=job.seed, noise=job.noise,
        )
    if job.kind == "broadcast":
        return measurements.measure_broadcast(
            job.tool, job.platform, params["nbytes"],
            processors=job.processors, seed=job.seed, noise=job.noise,
        )
    if job.kind == "ring":
        return measurements.measure_ring(
            job.tool, job.platform, params["nbytes"],
            processors=job.processors, seed=job.seed, noise=job.noise,
        )
    if job.kind == "global_sum":
        return measurements.measure_global_sum(
            job.tool, job.platform, params["vector_ints"],
            processors=job.processors, seed=job.seed, noise=job.noise,
        )
    if job.kind == "application":
        app_name = params.pop("app")
        return measurements.measure_application(
            app_name, job.tool, job.platform,
            processors=job.processors, seed=job.seed, noise=job.noise, **params,
        )
    raise EvaluationError("unknown job kind %r" % job.kind)
