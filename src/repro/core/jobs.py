"""Measurement jobs: the atomic, cacheable unit of evaluation work.

A :class:`MeasurementJob` names one simulation — a primitive
micro-benchmark or an application run for one tool on one platform
with fixed parameters and seed.  Jobs are frozen and hashable, so a
job is its own cache key: two sweeps that share a configuration share
the measurement.  :func:`execute_job` maps a job onto the matching
function in :mod:`repro.core.measurements`; it is a module-level
function so jobs can ship to ``concurrent.futures`` worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import EvaluationError

__all__ = [
    "JOB_KINDS",
    "MeasurementJob",
    "execute_job",
    "sendrecv_job",
    "broadcast_job",
    "ring_job",
    "global_sum_job",
    "application_job",
]

#: Every job kind :func:`execute_job` can run.
JOB_KINDS = ("sendrecv", "broadcast", "ring", "global_sum", "application")


@dataclass(frozen=True)
class MeasurementJob:
    """One simulation to run: ``(kind, tool, platform, params, seed)``.

    ``params`` is a sorted tuple of ``(name, value)`` pairs rather
    than a dict so the job stays hashable; :meth:`params_dict` gives
    the convenient view back.
    """

    kind: str
    tool: str
    platform: str
    processors: int
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise EvaluationError(
                "unknown job kind %r; available: %s" % (self.kind, ", ".join(JOB_KINDS))
            )
        object.__setattr__(self, "params", tuple(sorted(tuple(self.params))))

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready description (the persistent cache's entry body)."""
        return {
            "kind": self.kind,
            "tool": self.tool,
            "platform": self.platform,
            "processors": self.processors,
            "params": [[name, value] for name, value in self.params],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MeasurementJob":
        """Rebuild a job from :meth:`to_dict` output (JSON turns the
        param pairs into lists; re-tuple them so the job hashes)."""
        return cls(
            kind=data["kind"],
            tool=data["tool"],
            platform=data["platform"],
            processors=int(data["processors"]),
            params=tuple((name, value) for name, value in data["params"]),
            seed=int(data["seed"]),
        )

    def label(self) -> str:
        """Short human-readable description (for logs and traces)."""
        inner = ", ".join("%s=%s" % item for item in self.params)
        return "%s[%s] %s@%s/%d seed=%d" % (
            self.kind, inner, self.tool, self.platform, self.processors, self.seed,
        )


def sendrecv_job(tool: str, platform: str, nbytes: int, seed: int = 0) -> MeasurementJob:
    """Round-trip echo between ranks 0 and 1 (always a 2-rank run)."""
    return MeasurementJob("sendrecv", tool, platform, 2, (("nbytes", nbytes),), seed)


def broadcast_job(
    tool: str, platform: str, nbytes: int, processors: int, seed: int = 0
) -> MeasurementJob:
    return MeasurementJob("broadcast", tool, platform, processors, (("nbytes", nbytes),), seed)


def ring_job(
    tool: str, platform: str, nbytes: int, processors: int, seed: int = 0
) -> MeasurementJob:
    return MeasurementJob("ring", tool, platform, processors, (("nbytes", nbytes),), seed)


def global_sum_job(
    tool: str, platform: str, vector_ints: int, processors: int, seed: int = 0
) -> MeasurementJob:
    return MeasurementJob(
        "global_sum", tool, platform, processors, (("vector_ints", vector_ints),), seed
    )


def application_job(
    app: str, tool: str, platform: str, processors: int, seed: int = 0, **app_params
) -> MeasurementJob:
    params = (("app", app),) + tuple(app_params.items())
    return MeasurementJob("application", tool, platform, processors, params, seed)


def execute_job(job: MeasurementJob) -> Optional[float]:
    """Run one job's simulation and return its sample (seconds).

    ``None`` marks "Not Available" (a tool missing the primitive),
    exactly as in :mod:`repro.core.measurements`.
    """
    from repro.core import measurements

    params = job.params_dict()
    if job.kind == "sendrecv":
        return measurements.measure_sendrecv(
            job.tool, job.platform, params["nbytes"],
            processors=job.processors, seed=job.seed,
        )
    if job.kind == "broadcast":
        return measurements.measure_broadcast(
            job.tool, job.platform, params["nbytes"],
            processors=job.processors, seed=job.seed,
        )
    if job.kind == "ring":
        return measurements.measure_ring(
            job.tool, job.platform, params["nbytes"],
            processors=job.processors, seed=job.seed,
        )
    if job.kind == "global_sum":
        return measurements.measure_global_sum(
            job.tool, job.platform, params["vector_ints"],
            processors=job.processors, seed=job.seed,
        )
    if job.kind == "application":
        app_name = params.pop("app")
        return measurements.measure_application(
            app_name, job.tool, job.platform,
            processors=job.processors, seed=job.seed, **params,
        )
    raise EvaluationError("unknown job kind %r" % job.kind)
