"""Usability criteria and the WS/PS/NS rating scale (Section 2.3).

The paper rates each Application-Development-Level criterion as
well supported (WS), partially supported (PS) or not supported (NS).
Scores map WS -> 1.0, PS -> 0.5, NS -> 0.0 so they compose with the
performance levels' [0, 1] ratio scores.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import EvaluationError

__all__ = ["Rating", "WS", "PS", "NS", "Criterion", "ADL_CRITERIA"]


class Rating(object):
    """One point on the paper's support scale."""

    __slots__ = ("code", "label", "score")

    def __init__(self, code: str, label: str, score: float) -> None:
        self.code = code
        self.label = label
        self.score = score

    def __repr__(self) -> str:
        return "<Rating %s (%.1f)>" % (self.code, self.score)

    def __eq__(self, other) -> bool:
        if isinstance(other, Rating):
            return self.code == other.code
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.code)

    @classmethod
    def from_code(cls, code: str) -> "Rating":
        try:
            return _RATINGS[code.upper()]
        except KeyError:
            raise EvaluationError(
                "unknown rating %r; expected one of %s" % (code, ", ".join(_RATINGS))
            )


WS = Rating("WS", "well supported", 1.0)
PS = Rating("PS", "partially supported", 0.5)
NS = Rating("NS", "not supported", 0.0)

_RATINGS: Dict[str, Rating] = {r.code: r for r in (WS, PS, NS)}


class Criterion(object):
    """One ADL criterion, with a default weight in the ADL score."""

    __slots__ = ("key", "title", "weight")

    def __init__(self, key: str, title: str, weight: float = 1.0) -> None:
        if weight < 0:
            raise EvaluationError("criterion weight must be non-negative")
        self.key = key
        self.title = title
        self.weight = weight

    def __repr__(self) -> str:
        return "<Criterion %s w=%g>" % (self.key, self.weight)


#: The nine rows of the paper's usability table (Section 3.3.1), in
#: presentation order.  Weights default to equal importance; weight
#: profiles may override per-criterion emphasis.
ADL_CRITERIA: Tuple[Criterion, ...] = (
    Criterion("programming-models", "Programming Models Supported"),
    Criterion("language-interface", "Language Interface"),
    Criterion("ease-of-programming", "Ease of Programming"),
    Criterion("debugging-support", "Debugging Support"),
    Criterion("customization", "Customization"),
    Criterion("error-handling", "Error Handling"),
    Criterion("run-time-interface", "Run-Time Interface"),
    Criterion("integration", "Integration with other Software Systems"),
    Criterion("portability", "Portability"),
)
