"""Text rendering of evaluation reports."""

from __future__ import annotations

from repro.core.criteria import ADL_CRITERIA
from repro.core.levels import ADL, APL, TPL
from repro.core.usability import usability_ratings

__all__ = ["render_report", "render_usability_table"]


def _rule(width: int = 72) -> str:
    return "-" * width


def render_report(report) -> str:
    """Render an :class:`~repro.core.evaluation.EvaluationReport`."""
    lines = []
    lines.append(_rule())
    lines.append("Multi-Level Tool Evaluation Report")
    lines.append(_rule())
    lines.append("Platform:   %s (%d processors)" % (report.platform_name, report.processors))
    weights = ", ".join(
        "%s=%.2f" % (level.key.upper(), weight)
        for level, weight in sorted(report.profile.levels.items(), key=lambda i: i[0].key)
    )
    lines.append("Weights:    %s (%s)" % (weights, report.profile.name))
    lines.append("")

    lines.append(
        "%-10s %8s %8s %8s %9s  %s" % ("Tool", "TPL", "APL", "ADL", "Overall", "Rank")
    )
    for position, evaluation in enumerate(report.evaluations, start=1):
        lines.append(
            "%-10s %8.3f %8.3f %8.3f %9.3f  %4d"
            % (
                evaluation.tool,
                evaluation.level_scores[TPL],
                evaluation.level_scores[APL],
                evaluation.level_scores[ADL],
                evaluation.overall,
                position,
            )
        )
    lines.append("")

    lines.append("TPL detail (score = best time / tool time; 0 = not available)")
    for measurement_set in report.tpl_sets:
        scores = measurement_set.scores()
        row = "  %-24s " % measurement_set.name
        row += "  ".join(
            "%s=%.3f" % (evaluation.tool, scores[evaluation.tool])
            for evaluation in report.evaluations
        )
        lines.append(row)
    lines.append("")

    lines.append("APL detail")
    for measurement_set in report.apl_sets:
        values = measurement_set.values()
        row = "  %-24s " % measurement_set.name
        row += "  ".join(
            "%s=%.3fs" % (evaluation.tool, values[evaluation.tool])
            for evaluation in report.evaluations
        )
        lines.append(row)
    lines.append("")

    lines.append("Best tool for this configuration: %s" % report.best_tool())
    lines.append(_rule())
    return "\n".join(lines)


def render_usability_table(tools=("p4", "pvm", "express")) -> str:
    """Render the ADL matrix in the paper's Section 3.3.1 layout."""
    ratings = {tool: usability_ratings(tool) for tool in tools}
    width = max(len(criterion.title) for criterion in ADL_CRITERIA) + 2
    lines = []
    header = "Criterion".ljust(width) + "".join(tool.ljust(10) for tool in tools)
    lines.append(header)
    lines.append("-" * len(header))
    for criterion in ADL_CRITERIA:
        row = criterion.title.ljust(width)
        row += "".join(ratings[tool][criterion.key].code.ljust(10) for tool in tools)
        lines.append(row)
    return "\n".join(lines)
