"""Weight profiles: tailoring the evaluation to a user class.

Section 2: "By using weight factors, an overall tool evaluation can be
tailored to take into account the most relevant factors associated
with certain types of users" — the paper's example being the end user
(response time) versus the system manager (utilization/throughput).
A profile fixes the relative importance of the three levels; the
presets encode the obvious user classes and custom profiles are one
constructor call.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.levels import ADL, APL, EvaluationLevel, TPL
from repro.errors import EvaluationError

__all__ = ["WeightProfile", "BALANCED", "END_USER", "APPLICATION_DEVELOPER", "TOOL_DEVELOPER", "PRESET_PROFILES"]


class WeightProfile(object):
    """Relative importance of each evaluation level.

    Weights need not sum to one; they are normalized internally.
    """

    def __init__(self, name: str, level_weights: Mapping[EvaluationLevel, float]) -> None:
        if not level_weights:
            raise EvaluationError("a weight profile needs at least one level")
        weights = {}
        for level, weight in level_weights.items():
            if not isinstance(level, EvaluationLevel):
                raise EvaluationError("weight keys must be EvaluationLevel, got %r" % (level,))
            if weight < 0:
                raise EvaluationError("level weight must be non-negative")
            weights[level] = float(weight)
        total = sum(weights.values())
        if total <= 0:
            raise EvaluationError("level weights sum to zero")
        self.name = name
        self._weights = {level: weight / total for level, weight in weights.items()}

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s=%.2f" % (level.key, weight) for level, weight in sorted(
                self._weights.items(), key=lambda item: item[0].key
            )
        )
        return "<WeightProfile %s: %s>" % (self.name, inner)

    def weight(self, level: EvaluationLevel) -> float:
        """Normalized weight of ``level`` (0 if absent)."""
        return self._weights.get(level, 0.0)

    @property
    def levels(self) -> Dict[EvaluationLevel, float]:
        return dict(self._weights)

    def overall(self, level_scores: Mapping[EvaluationLevel, float]) -> float:
        """Combine per-level scores into the overall tool score."""
        missing = [level.key for level in self._weights if level not in level_scores]
        if missing:
            raise EvaluationError("missing scores for levels: %s" % ", ".join(missing))
        return sum(
            weight * level_scores[level] for level, weight in self._weights.items()
        )


#: Equal emphasis on all three levels.
BALANCED = WeightProfile("balanced", {TPL: 1.0, APL: 1.0, ADL: 1.0})

#: An end user running existing applications: response time rules.
END_USER = WeightProfile("end-user", {TPL: 0.2, APL: 0.6, ADL: 0.2})

#: A team building new applications: development support matters most.
APPLICATION_DEVELOPER = WeightProfile("application-developer", {TPL: 0.2, APL: 0.3, ADL: 0.5})

#: A tool/library developer studying primitive efficiency.
TOOL_DEVELOPER = WeightProfile("tool-developer", {TPL: 0.6, APL: 0.3, ADL: 0.1})

PRESET_PROFILES = {
    profile.name: profile
    for profile in (BALANCED, END_USER, APPLICATION_DEVELOPER, TOOL_DEVELOPER)
}
