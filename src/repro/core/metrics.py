"""Metric normalization: turning measurements into comparable scores.

The methodology compares tools, so scores are *relative*: for a
lower-is-better measurement set, each tool scores
``best_value / own_value`` — 1.0 for the winner, shrinking toward 0
as a tool falls behind.  A tool that cannot perform an operation at
all (PVM's missing global sum) scores 0 for it, which is the natural
quantification of "Not Available".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import EvaluationError

__all__ = ["Measurement", "MeasurementSet", "ratio_scores", "aggregate_scores", "rank_by_value"]


class Measurement(object):
    """One timed observation."""

    __slots__ = ("tool", "value", "unit")

    def __init__(self, tool: str, value: Optional[float], unit: str = "s") -> None:
        if value is not None and value < 0:
            raise EvaluationError("measurement value must be non-negative")
        self.tool = tool
        self.value = value
        self.unit = unit

    def __repr__(self) -> str:
        if self.value is None:
            return "<Measurement %s: n/a>" % self.tool
        return "<Measurement %s: %g%s>" % (self.tool, self.value, self.unit)

    @property
    def available(self) -> bool:
        return self.value is not None


class MeasurementSet(object):
    """All tools' measurements of one quantity (lower is better)."""

    def __init__(self, name: str, measurements: Iterable[Measurement]) -> None:
        self.name = name
        self.measurements = list(measurements)
        tools = [m.tool for m in self.measurements]
        if len(set(tools)) != len(tools):
            raise EvaluationError("duplicate tool in measurement set %r" % name)

    def __repr__(self) -> str:
        return "<MeasurementSet %s (%d tools)>" % (self.name, len(self.measurements))

    def values(self) -> Dict[str, Optional[float]]:
        return {m.tool: m.value for m in self.measurements}

    def scores(self) -> Dict[str, float]:
        return ratio_scores(self.values())

    def ranking(self) -> List[str]:
        return rank_by_value(self.values())


def ratio_scores(values: Dict[str, Optional[float]]) -> Dict[str, float]:
    """best/value scores in [0, 1]; unavailable (None) scores 0."""
    available = {tool: v for tool, v in values.items() if v is not None}
    if not available:
        return {tool: 0.0 for tool in values}
    best = min(available.values())
    scores = {}
    for tool, value in values.items():
        if value is None:
            scores[tool] = 0.0
        elif value <= 0:
            scores[tool] = 1.0
        else:
            scores[tool] = best / value if best > 0 else 1.0
    return scores


def aggregate_scores(
    score_sets: Iterable[Dict[str, float]],
    weights: Optional[Iterable[float]] = None,
) -> Dict[str, float]:
    """Weighted mean of several per-tool score dicts.

    All dicts must cover the same tools.
    """
    score_sets = [dict(s) for s in score_sets]
    if not score_sets:
        raise EvaluationError("nothing to aggregate")
    if weights is None:
        weights = [1.0] * len(score_sets)
    weights = [float(w) for w in weights]
    if len(weights) != len(score_sets):
        raise EvaluationError("got %d weights for %d sets" % (len(weights), len(score_sets)))
    if any(w < 0 for w in weights):
        raise EvaluationError("weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise EvaluationError("weights sum to zero")

    tools = set(score_sets[0])
    for score_set in score_sets[1:]:
        if set(score_set) != tools:
            raise EvaluationError("score sets cover different tools")
    return {
        tool: sum(w * s[tool] for w, s in zip(weights, score_sets)) / total
        for tool in tools
    }


def rank_by_value(values: Dict[str, Optional[float]]) -> List[str]:
    """Tools ordered best (smallest) first; unavailable tools last."""
    available = sorted(
        (tool for tool, v in values.items() if v is not None),
        key=lambda tool: (values[tool], tool),
    )
    missing = sorted(tool for tool, v in values.items() if v is None)
    return available + missing
