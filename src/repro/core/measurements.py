"""Measurement runners: one function per benchmarked quantity.

Each function builds a fresh platform (so runs are independent and
deterministic given the seed), instantiates the tool, executes the
benchmark program and returns simulated seconds.  These are the
primitives behind both the evaluator's scoring and the table/figure
benchmarks in ``repro.bench``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.suite import create_application
from repro.errors import UnsupportedOperationError
from repro.hardware.catalog import build_platform
from repro.tools.profiles import ToolProfile
from repro.tools.registry import create_tool

__all__ = [
    "measure_sendrecv",
    "measure_broadcast",
    "measure_ring",
    "measure_global_sum",
    "measure_barrier",
    "measure_application",
]


def _make(tool_name, platform_name, processors, seed, profile, noise=0.0):
    platform = build_platform(platform_name, processors=processors, seed=seed, noise=noise)
    return create_tool(tool_name, platform, profile)


def measure_sendrecv(
    tool_name: str,
    platform_name: str,
    nbytes: int,
    processors: int = 2,
    seed: int = 0,
    profile: Optional[ToolProfile] = None,
    noise: float = 0.0,
) -> float:
    """Round-trip echo time (seconds) between ranks 0 and 1.

    This is the paper's Table 3 experiment: rank 0 sends ``nbytes``,
    rank 1 echoes them back, and the elapsed round trip is reported.
    """
    tool = _make(tool_name, platform_name, processors, seed, profile, noise)

    def program(comm):
        if comm.rank == 0:
            start = comm.env.now
            yield from comm.send(1, nbytes=nbytes, tag="ping")
            yield from comm.recv(src=1, tag="pong")
            return comm.env.now - start
        if comm.rank == 1:
            yield from comm.recv(src=0, tag="ping")
            yield from comm.send(0, nbytes=nbytes, tag="pong")
        return None

    return tool.run_spmd(program, nprocs=max(processors, 2))[0]


def measure_broadcast(
    tool_name: str,
    platform_name: str,
    nbytes: int,
    processors: int = 4,
    seed: int = 0,
    profile: Optional[ToolProfile] = None,
    noise: float = 0.0,
) -> float:
    """Time (seconds) until every rank holds the root's message."""
    tool = _make(tool_name, platform_name, processors, seed, profile, noise)

    def program(comm):
        payload = b"" if comm.rank == 0 else None
        yield from comm.broadcast(0, payload=payload, nbytes=nbytes)
        return comm.env.now

    return max(tool.run_spmd(program, nprocs=processors))


def measure_ring(
    tool_name: str,
    platform_name: str,
    nbytes: int,
    processors: int = 4,
    seed: int = 0,
    profile: Optional[ToolProfile] = None,
    noise: float = 0.0,
) -> float:
    """Ring communication time: all nodes send right and receive left.

    The paper's TPL ring experiment ("all nodes send and receive"):
    completion is when the last node holds its neighbour's message.
    """
    tool = _make(tool_name, platform_name, processors, seed, profile, noise)

    def program(comm):
        yield from comm.ring_shift(nbytes=nbytes)
        return comm.env.now

    return max(tool.run_spmd(program, nprocs=processors))


def measure_global_sum(
    tool_name: str,
    platform_name: str,
    vector_ints: int,
    processors: int = 4,
    seed: int = 0,
    profile: Optional[ToolProfile] = None,
    noise: float = 0.0,
) -> Optional[float]:
    """Global vector-sum time, or ``None`` if the tool has no global
    operation (PVM: Table 1 "Not Available")."""
    tool = _make(tool_name, platform_name, processors, seed, profile, noise)

    def program(comm):
        vector = np.ones(vector_ints, dtype=np.int32)
        try:
            yield from comm.global_sum(vector)
        except UnsupportedOperationError:
            return None
        return comm.env.now

    results = tool.run_spmd(program, nprocs=processors)
    if any(result is None for result in results):
        return None
    return max(results)


def measure_barrier(
    tool_name: str,
    platform_name: str,
    processors: int = 4,
    seed: int = 0,
    profile: Optional[ToolProfile] = None,
    noise: float = 0.0,
) -> float:
    """Barrier synchronization time across ``processors`` ranks."""
    tool = _make(tool_name, platform_name, processors, seed, profile, noise)

    def program(comm):
        yield from comm.barrier()
        return comm.env.now

    return max(tool.run_spmd(program, nprocs=processors))


def measure_application(
    app_name: str,
    tool_name: str,
    platform_name: str,
    processors: int,
    seed: int = 0,
    check: bool = False,
    profile: Optional[ToolProfile] = None,
    noise: float = 0.0,
    **app_params,
) -> float:
    """End-to-end application time (seconds) — the APL experiment."""
    application = create_application(app_name, **app_params)
    platform = build_platform(platform_name, processors=max(processors, 1), seed=seed, noise=noise)
    tool = create_tool(tool_name, platform, profile)
    run = application.run(tool, processors=processors, check=check)
    return run.elapsed_seconds
