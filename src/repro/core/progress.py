"""Typed run events and progress snapshots for streaming execution.

A :class:`~repro.core.scheduler.RunHandle` narrates its run as a
stream of frozen event records — :class:`JobStarted` when a cache miss
is dispatched to the executor, :class:`CacheHit` when the cache serves
a sample, :class:`JobFinished` when a simulation's outcome lands, and
one final :class:`RunCompleted`.  Consumers (the CLI's ``--progress``
line, ``run_evaluation(on_event=...)``, dashboards) pattern-match on
the event type; the classes carry data only, no behavior.

:class:`Progress` is the complementary *pull* view: an immutable
snapshot of done/total counters with derived hit-rate and ETA, cheap
enough to take on every event.

Events also cross process boundaries: the evaluation service streams
them over Server-Sent Events, so every event serializes to a JSON-safe
dict (:func:`event_to_dict`) tagged with a stable ``type`` string, and
:func:`event_from_dict` rebuilds the typed record on the consumer side
— a remote client pattern-matches on the exact same classes as a local
:meth:`~repro.core.scheduler.RunHandle.events` consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.jobs import MeasurementJob
from repro.errors import EvaluationError

__all__ = [
    "RunEvent",
    "JobStarted",
    "CacheHit",
    "JobFinished",
    "RunCompleted",
    "Progress",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
]


@dataclass(frozen=True)
class RunEvent:
    """Base class: something observable happened during a run."""

    #: Stable wire tag; subclasses override.  Part of the service's
    #: SSE protocol, so renaming one is a breaking API change.
    type = "event"

    def to_dict(self) -> dict:
        """A JSON-safe description of this event, tagged with
        :attr:`type` (jobs serialize through
        :meth:`~repro.core.jobs.MeasurementJob.to_dict`)."""
        raise NotImplementedError


@dataclass(frozen=True)
class JobStarted(RunEvent):
    """A cache miss was dispatched to the executor.

    ``index`` is the dispatch sequence number (0-based, counting only
    executed jobs — cache hits never start).
    """

    job: MeasurementJob
    index: int

    type = "job_started"

    def to_dict(self) -> dict:
        return {"type": self.type, "job": self.job.to_dict(), "index": self.index}


@dataclass(frozen=True)
class CacheHit(RunEvent):
    """The cache served ``job`` without simulating."""

    job: MeasurementJob
    value: Optional[float]

    type = "cache_hit"

    def to_dict(self) -> dict:
        return {"type": self.type, "job": self.job.to_dict(), "value": self.value}


@dataclass(frozen=True)
class JobFinished(RunEvent):
    """A dispatched job's outcome landed (and was persisted).

    ``engine`` records *how* the sample was produced: ``"event"`` for
    a discrete-event simulation, ``"analytic"`` for a closed-form
    evaluation by :class:`~repro.analytic.AnalyticEngine`.  Pre-engine
    event dicts deserialize with the ``"event"`` default.
    """

    job: MeasurementJob
    value: Optional[float]
    wall_seconds: Optional[float]
    attempts: int
    engine: str = "event"

    type = "job_finished"

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "job": self.job.to_dict(),
            "value": self.value,
            "wall_seconds": self.wall_seconds,
            "attempts": self.attempts,
            "engine": self.engine,
        }


@dataclass(frozen=True)
class RunCompleted(RunEvent):
    """The run is over — normally or via cooperative cancellation."""

    total: int
    simulated: int
    cache_hits: int
    cancelled: bool
    wall_seconds: float

    type = "run_completed"

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "total": self.total,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "cancelled": self.cancelled,
            "wall_seconds": self.wall_seconds,
        }


#: Wire tag -> event class, the registry both serialization directions
#: share (and the authoritative list of what the service streams).
EVENT_TYPES = {
    cls.type: cls for cls in (JobStarted, CacheHit, JobFinished, RunCompleted)
}


def event_to_dict(event: RunEvent) -> dict:
    """``event.to_dict()`` with a type check — the service boundary
    rejects foreign objects loudly instead of streaming garbage."""
    if not isinstance(event, RunEvent):
        raise EvaluationError("not a RunEvent: %r" % (event,))
    return event.to_dict()


def event_from_dict(data: dict) -> RunEvent:
    """Rebuild the typed event a :func:`event_to_dict` dict describes.

    The inverse a remote consumer (the service client) applies to each
    SSE payload, so it can pattern-match on :class:`JobStarted` /
    :class:`JobFinished` / :class:`CacheHit` / :class:`RunCompleted`
    exactly like a local one.
    """
    try:
        kind = data["type"]
    except (TypeError, KeyError):
        raise EvaluationError("event dict has no 'type' tag: %r" % (data,))
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise EvaluationError(
            "unknown event type %r; known: %s"
            % (kind, ", ".join(sorted(EVENT_TYPES)))
        )
    fields = {key: value for key, value in data.items() if key != "type"}
    if "job" in fields:
        fields["job"] = MeasurementJob.from_dict(fields["job"])
    try:
        return cls(**fields)
    except TypeError as error:
        raise EvaluationError("malformed %s event: %s" % (kind, error))


@dataclass(frozen=True)
class Progress:
    """An immutable done/total snapshot of a streaming run.

    ``total`` is ``None`` when the run was started from a bare job
    iterable of unknown size (no ETA then).  ``completed`` counts both
    simulated jobs and cache hits; ``dispatched`` counts jobs handed
    to the executor (so ``dispatched - simulated`` are in flight).
    """

    total: Optional[int]
    dispatched: int
    completed: int
    simulated: int
    cache_hits: int
    elapsed_seconds: float
    cancelled: bool
    finished: bool

    @property
    def remaining(self) -> Optional[int]:
        if self.total is None:
            return None
        return max(0, self.total - self.completed)

    @property
    def hit_rate(self) -> float:
        """Fraction of completed jobs served from the cache."""
        if self.completed == 0:
            return 0.0
        return self.cache_hits / self.completed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Remaining wall time, extrapolated from throughput so far
        (``None`` until the first job completes or when ``total`` is
        unknown; ``0.0`` once the run is finished).

        The rate comes from *simulated* jobs, not all completed ones:
        cache hits resolve in microseconds, so on a resumed sweep —
        hundreds of hits served up front, real simulation still ahead
        — a completed-based rate would report a near-zero ETA for
        hours of work.  Assuming every remaining job simulates errs
        the other way (an overestimate when more hits are coming),
        which is the honest side to miss on.  Until the first miss
        (pure hits so far) the hit-serving rate is all there is.
        """
        if self.finished:
            return 0.0
        if self.total is None or self.completed == 0:
            return None
        if self.simulated == 0:
            return self.elapsed_seconds * self.remaining / self.completed
        return self.elapsed_seconds * self.remaining / self.simulated

    def render(self) -> str:
        """One human-readable status line (the CLI's progress line)."""
        total = "?" if self.total is None else str(self.total)
        parts = [
            "%d/%s jobs" % (self.completed, total),
            "%d simulated" % self.simulated,
            "%d cache hits" % self.cache_hits,
        ]
        if self.finished:
            parts.append("cancelled" if self.cancelled else "done")
            parts.append("in %.2fs" % self.elapsed_seconds)
        else:
            eta = self.eta_seconds
            if eta is not None:
                parts.append("eta %.1fs" % eta)
        return " | ".join(parts)
