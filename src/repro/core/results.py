"""Structured results: one measurement pass, many scored reports.

A :class:`ResultSet` holds the samples of every
:class:`~repro.core.jobs.MeasurementJob` a spec expanded to, keyed by
the job itself.  From those it derives — *without re-simulating* —
a full :class:`~repro.core.evaluation.EvaluationReport` for any
(platform, weight profile, seed) cell of the grid, cross-platform /
cross-profile comparison tables, and a JSON export of both raw
samples and scores.  Re-weighting is a pure function of stored
samples, which is what makes multi-profile sweeps free.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

from repro.core.evaluation import EvaluationReport, ToolEvaluation
from repro.core.jobs import MeasurementJob
from repro.core.levels import ADL, APL, TPL
from repro.core.metrics import Measurement, MeasurementSet, aggregate_scores
from repro.core.stats import SampleStats, summarize
from repro.core.usability import adl_score
from repro.core.weights import WeightProfile
from repro.errors import EvaluationError

__all__ = ["ResultSet", "collect_tpl_sets", "collect_apl_sets"]


def _collect(jobs, name, values) -> MeasurementSet:
    return MeasurementSet(name, [Measurement(job.tool, values[job]) for job in jobs])


def collect_tpl_sets(spec, platform: str, seed: int, values) -> List[MeasurementSet]:
    """Group TPL job samples into the classic named measurement sets."""
    by_kind_size = {}
    for job in spec.tpl_jobs(platform, seed):
        by_kind_size.setdefault((job.kind, job.params), []).append(job)
    sets = []
    names = {"sendrecv": "send/receive %dB", "broadcast": "broadcast %dB",
             "ring": "ring %dB"}
    for (kind, params), jobs in by_kind_size.items():
        params = dict(params)
        if kind == "global_sum":
            name = "global sum %d ints" % params["vector_ints"]
        else:
            name = names[kind] % params["nbytes"]
        sets.append(_collect(jobs, name, values))
    return sets


def collect_apl_sets(spec, platform: str, seed: int, values) -> List[MeasurementSet]:
    """Group APL job samples into one measurement set per application."""
    by_app = {}
    for job in spec.apl_jobs(platform, seed):
        by_app.setdefault(job.params_dict()["app"], []).append(job)
    return [_collect(jobs, app, values) for app, jobs in by_app.items()]


class ResultSet(object):
    """Samples for every job of one spec, and the scoring on top."""

    def __init__(
        self,
        spec,
        values: Dict[MeasurementJob, Optional[float]],
        telemetry: Optional[Dict[MeasurementJob, "JobTelemetry"]] = None,
    ) -> None:
        missing = [job for job in spec.jobs() if job not in values]
        if missing:
            raise EvaluationError(
                "result set is missing %d of the spec's jobs (first: %s) — "
                "a cancelled or partial run cannot score; re-run the spec "
                "over the same cache to fill the grid"
                % (len(missing), missing[0].label())
            )
        self.spec = spec
        self.values = dict(values)
        #: job -> :class:`~repro.core.scheduler.JobTelemetry` for the
        #: pass that produced this set (may be empty for hand-built
        #: sets; scoring never consults it).
        self.telemetry = dict(telemetry) if telemetry else {}
        # Reconstruction memos: (platform, seed, level) -> measurement
        # sets, and the full scored grid.  Safe because a ResultSet is
        # immutable once built; they keep multi-profile re-scoring and
        # repeated exports (comparison + statistics + to_dict all walk
        # the same cells) from redoing the work.
        self._sets = {}
        self._reports = None

    def __repr__(self) -> str:
        return "<ResultSet %d samples, %d report cells>" % (
            len(self.values), len(self.spec.cells()),
        )

    def value(self, job: MeasurementJob) -> Optional[float]:
        return self.values[job]

    # ------------------------------------------------------------------
    # Reconstruction of measurement sets
    # ------------------------------------------------------------------

    def _check_cell(self, platform: str, seed: Optional[int]) -> int:
        if platform not in self.spec.platforms:
            raise EvaluationError("platform %r not in spec" % platform)
        if seed is None:
            return self.spec.seeds[0]
        if seed not in self.spec.seeds:
            raise EvaluationError("seed %r not in spec" % seed)
        return seed

    def tpl_sets(self, platform: str, seed: Optional[int] = None) -> List[MeasurementSet]:
        """The named TPL measurement sets for one (platform, seed)."""
        seed = self._check_cell(platform, seed)
        key = (platform, seed, "tpl")
        if key not in self._sets:
            self._sets[key] = collect_tpl_sets(self.spec, platform, seed, self.values)
        return self._sets[key]

    def apl_sets(self, platform: str, seed: Optional[int] = None) -> List[MeasurementSet]:
        """The per-application measurement sets for one (platform, seed)."""
        seed = self._check_cell(platform, seed)
        key = (platform, seed, "apl")
        if key not in self._sets:
            self._sets[key] = collect_apl_sets(self.spec, platform, seed, self.values)
        return self._sets[key]

    # ------------------------------------------------------------------
    # Scoring (pure re-weighting; never re-simulates)
    # ------------------------------------------------------------------

    def _resolve_profile(self, profile) -> WeightProfile:
        if profile is None:
            return self.spec.profiles[0]
        if isinstance(profile, WeightProfile):
            return profile
        for candidate in self.spec.profiles:
            if candidate.name == profile:
                return candidate
        raise EvaluationError(
            "profile %r not in spec; available: %s"
            % (profile, ", ".join(p.name for p in self.spec.profiles))
        )

    def report(
        self,
        platform: Optional[str] = None,
        profile: Union[WeightProfile, str, None] = None,
        seed: Optional[int] = None,
    ) -> EvaluationReport:
        """The scored report for one grid cell (defaults: first of
        each axis).  ``profile`` may be any :class:`WeightProfile`,
        even one outside the spec — re-weighting is free."""
        platform = platform if platform is not None else self.spec.platforms[0]
        seed = self._check_cell(platform, seed)
        profile = self._resolve_profile(profile)

        tpl_sets = self.tpl_sets(platform, seed)
        apl_sets = self.apl_sets(platform, seed)
        tpl_scores = aggregate_scores([s.scores() for s in tpl_sets])
        apl_scores = aggregate_scores([s.scores() for s in apl_sets])
        adl_scores = {tool: adl_score(tool) for tool in self.spec.tools}

        evaluations = []
        for tool in self.spec.tools:
            level_scores = {
                TPL: tpl_scores[tool],
                APL: apl_scores[tool],
                ADL: adl_scores[tool],
            }
            overall = profile.overall(level_scores)
            detail = {
                "tpl": {s.name: s.scores()[tool] for s in tpl_sets},
                "apl": {s.name: s.scores()[tool] for s in apl_sets},
            }
            evaluations.append(ToolEvaluation(tool, level_scores, overall, detail))

        return EvaluationReport(
            platform, self.spec.processors, profile, evaluations, tpl_sets, apl_sets
        )

    def reports(self) -> Dict[Tuple[str, str, int], EvaluationReport]:
        """(platform, profile name, seed) -> report, over the grid."""
        if self._reports is None:
            self._reports = {
                (platform, profile.name, seed): self.report(platform, profile, seed)
                for platform, profile, seed in self.spec.cells()
            }
        return self._reports

    def best_tools(self) -> Dict[Tuple[str, str, int], str]:
        """The winning tool of every grid cell."""
        return {cell: report.best_tool() for cell, report in self.reports().items()}

    # ------------------------------------------------------------------
    # Multi-seed statistics
    # ------------------------------------------------------------------

    def seed_statistics(
        self, confidence: float = 0.95
    ) -> Dict[Tuple[str, str, str], SampleStats]:
        """(platform, profile name, tool) -> stats of the overall
        score across the spec's seeds.

        Seeds are the replication axis, so this is the statistically
        honest view of the grid: mean, sample stddev and a t-based
        confidence interval per cell.  A single-seed spec degenerates
        cleanly (stddev and CI are exactly ``0.0``, never NaN).
        """
        reports = self.reports()
        stats = {}
        for platform in self.spec.platforms:
            for profile in self.spec.profiles:
                overalls = {tool: [] for tool in self.spec.tools}
                for seed in self.spec.seeds:
                    scores = reports[(platform, profile.name, seed)].scores()
                    for tool in self.spec.tools:
                        overalls[tool].append(scores[tool]["overall"])
                for tool, samples in overalls.items():
                    stats[(platform, profile.name, tool)] = summarize(
                        samples, confidence
                    )
        return stats

    # ------------------------------------------------------------------
    # Rendering and export
    # ------------------------------------------------------------------

    def comparison(self, stats: bool = False, confidence: float = 0.95) -> str:
        """A cross-platform / cross-profile overall-score table.

        With ``stats=True``, seeds aggregate instead of printing one
        row each: every (platform, profile) row shows ``mean ±CI``
        per tool and the winner by mean score.
        """
        if stats:
            return self._comparison_stats(confidence)
        reports = self.reports()
        lines = []
        width = max([12] + [len(tool) for tool in self.spec.tools]) + 2
        header = "Configuration".ljust(34) + "".join(
            tool.ljust(width) for tool in self.spec.tools
        ) + "best"
        lines.append(header)
        lines.append("-" * len(header))
        for (platform, profile_name, seed), report in reports.items():
            label = "%s/%s" % (platform, profile_name)
            if len(self.spec.seeds) > 1:
                label += "#%d" % seed
            scores = report.scores()
            row = label.ljust(34)
            row += "".join(
                ("%.3f" % scores[tool]["overall"]).ljust(width)
                for tool in self.spec.tools
            )
            row += report.best_tool()
            lines.append(row)
        return "\n".join(lines)

    def _comparison_stats(self, confidence: float) -> str:
        stats = self.seed_statistics(confidence)
        lines = [
            "overall score: mean ±%g%% CI over %d seed%s"
            % (confidence * 100, len(self.spec.seeds),
               "" if len(self.spec.seeds) == 1 else "s")
        ]
        width = max([14] + [len(tool) for tool in self.spec.tools]) + 2
        header = "Configuration".ljust(34) + "".join(
            tool.ljust(width) for tool in self.spec.tools
        ) + "best"
        lines.append(header)
        lines.append("-" * len(header))
        for platform in self.spec.platforms:
            for profile in self.spec.profiles:
                cells = {
                    tool: stats[(platform, profile.name, tool)]
                    for tool in self.spec.tools
                }
                row = ("%s/%s" % (platform, profile.name)).ljust(34)
                row += "".join(
                    str(cells[tool]).ljust(width) for tool in self.spec.tools
                )
                row += max(cells, key=lambda tool: cells[tool].mean)
                lines.append(row)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        samples = []
        for job, value in self.values.items():
            sample = {
                "kind": job.kind,
                "tool": job.tool,
                "platform": job.platform,
                "processors": job.processors,
                "params": job.params_dict(),
                "seed": job.seed,
                "seconds": value,
            }
            # Deterministic exports stay byte-identical to the
            # pre-noise format (golden fixtures pin this).
            if job.noise:
                sample["noise"] = job.noise
            samples.append(sample)
        scores = {}
        for (platform, profile_name, seed), report in self.reports().items():
            key = "%s/%s/seed%d" % (platform, profile_name, seed)
            scores[key] = report.scores()
        statistics = {}
        for (platform, profile_name, tool), stats in self.seed_statistics().items():
            cell = "%s/%s" % (platform, profile_name)
            statistics.setdefault(cell, {})[tool] = stats.to_dict()
        data = {
            "spec": self.spec.to_dict(),
            "samples": samples,
            "scores": scores,
            "statistics": statistics,
        }
        if self.telemetry:
            data["telemetry"] = self._telemetry_dict()
        return data

    def _telemetry_dict(self) -> dict:
        jobs = []
        for job, record in self.telemetry.items():
            entry = {
                "kind": job.kind,
                "tool": job.tool,
                "platform": job.platform,
                "processors": job.processors,
                "params": job.params_dict(),
                "seed": job.seed,
            }
            if job.noise:
                entry["noise"] = job.noise
            entry.update(record.to_dict())
            jobs.append(entry)
        walls = [
            record.wall_seconds
            for record in self.telemetry.values()
            if not record.cache_hit and record.wall_seconds is not None
        ]
        summary = {
            "simulated": sum(
                1 for record in self.telemetry.values() if not record.cache_hit
            ),
            "cache_hits": sum(
                1 for record in self.telemetry.values() if record.cache_hit
            ),
            "total_wall_seconds": sum(walls) if walls else 0.0,
            "executors": sorted({r.executor for r in self.telemetry.values()}),
        }
        return {"summary": summary, "jobs": jobs}

    def to_json(self, path: Optional[str] = None) -> str:
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text
