"""The three evaluation levels of the methodology (Section 2).

* **TPL** — Tool Performance Level: primitive micro-benchmarks.
* **APL** — Application Performance Level: end-to-end applications.
* **ADL** — Application Development Level: usability criteria.

"Other levels can be added if necessary" (Section 2) — the level
registry is open: :class:`EvaluationLevel` instances are hashable
values and the weighting machinery accepts any of them.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["EvaluationLevel", "TPL", "APL", "ADL", "STANDARD_LEVELS"]


class EvaluationLevel(object):
    """One perspective from which tools are evaluated."""

    __slots__ = ("key", "title", "description")

    def __init__(self, key: str, title: str, description: str) -> None:
        self.key = key
        self.title = title
        self.description = description

    def __repr__(self) -> str:
        return "<EvaluationLevel %s>" % self.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other) -> bool:
        if isinstance(other, EvaluationLevel):
            return self.key == other.key
        return NotImplemented


TPL = EvaluationLevel(
    "tpl",
    "Tool Performance Level",
    "Performance of the tool's primitives (send/receive, broadcast, "
    "ring, global operations) on distributed platforms.",
)

APL = EvaluationLevel(
    "apl",
    "Application Performance Level",
    "Execution time of representative parallel/distributed "
    "applications implemented with the tool.",
)

ADL = EvaluationLevel(
    "adl",
    "Application Development Level",
    "The tool's support for developing applications: programming "
    "models, languages, development interface, run-time interface, "
    "integration and portability.",
)

#: The paper's three levels, in presentation order.
STANDARD_LEVELS: Tuple[EvaluationLevel, ...] = (TPL, APL, ADL)
