"""The paper's contribution: the multi-level evaluation methodology."""

from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    CacheBackend,
    DiskBackend,
    MemoryBackend,
    ResultCache,
    ShardedBackend,
    job_key,
)
from repro.core.criteria import ADL_CRITERIA, Criterion, NS, PS, Rating, WS
from repro.core.evaluation import (
    EvaluationReport,
    Evaluator,
    ToolEvaluation,
    evaluate_tools,
)
from repro.core.jobs import MeasurementJob, execute_job
from repro.core.levels import ADL, APL, EvaluationLevel, STANDARD_LEVELS, TPL
from repro.core.metrics import (
    Measurement,
    MeasurementSet,
    aggregate_scores,
    rank_by_value,
    ratio_scores,
)
from repro.core.ranking import PRIMITIVE_CLASSES, primitive_rankings, summary_table
from repro.core.results import ResultSet
from repro.core.executors import (
    EXECUTOR_BACKENDS,
    Executor,
    JobOutcome,
    resolve_workers,
)
from repro.core.progress import (
    CacheHit,
    JobFinished,
    JobStarted,
    Progress,
    RunCompleted,
    RunEvent,
)
from repro.core.scheduler import (
    AsyncExecutor,
    JobTelemetry,
    ProcessPoolExecutor,
    RunHandle,
    Scheduler,
    SerialExecutor,
    create_executor,
)
from repro.core.spec import DEFAULT_APP_PARAMS, DEFAULT_TPL_SIZES, EvaluationSpec
from repro.core.stats import SampleStats, summarize, t_critical
from repro.core.usability import USABILITY_MATRIX, adl_score, usability_ratings
from repro.core.weights import (
    APPLICATION_DEVELOPER,
    BALANCED,
    END_USER,
    PRESET_PROFILES,
    TOOL_DEVELOPER,
    WeightProfile,
)

__all__ = [
    "ADL",
    "ADL_CRITERIA",
    "APL",
    "APPLICATION_DEVELOPER",
    "AsyncExecutor",
    "BALANCED",
    "CACHE_SCHEMA_VERSION",
    "CacheBackend",
    "CacheHit",
    "Criterion",
    "EXECUTOR_BACKENDS",
    "Executor",
    "DEFAULT_APP_PARAMS",
    "DEFAULT_TPL_SIZES",
    "DiskBackend",
    "END_USER",
    "EvaluationLevel",
    "EvaluationReport",
    "EvaluationSpec",
    "Evaluator",
    "JobFinished",
    "JobOutcome",
    "JobStarted",
    "JobTelemetry",
    "Measurement",
    "MeasurementJob",
    "MeasurementSet",
    "MemoryBackend",
    "NS",
    "ProcessPoolExecutor",
    "Progress",
    "ResultCache",
    "ResultSet",
    "RunCompleted",
    "RunEvent",
    "RunHandle",
    "SampleStats",
    "Scheduler",
    "SerialExecutor",
    "ShardedBackend",
    "PRESET_PROFILES",
    "PRIMITIVE_CLASSES",
    "PS",
    "Rating",
    "STANDARD_LEVELS",
    "TOOL_DEVELOPER",
    "TPL",
    "ToolEvaluation",
    "USABILITY_MATRIX",
    "WS",
    "WeightProfile",
    "adl_score",
    "aggregate_scores",
    "create_executor",
    "evaluate_tools",
    "execute_job",
    "job_key",
    "primitive_rankings",
    "rank_by_value",
    "ratio_scores",
    "resolve_workers",
    "summarize",
    "summary_table",
    "t_critical",
    "usability_ratings",
]
