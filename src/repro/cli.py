"""Command-line interface.

Usage::

    python -m repro list
    python -m repro evaluate --platform sun-ethernet --profile end-user
    python -m repro evaluate --platforms sun-ethernet alpha-fddi \
        --profile balanced end-user --jobs 4 --json sweep.json
    python -m repro experiment table3 fig4
    python -m repro usability
    python -m repro serve --port 8765 --db runs.db --cache-dir .repro-cache
    python -m repro check src/ --format json
    python -m repro evaluate --seeds 0 1 2 --history-db history.db
    python -m repro history gate --db history.db latest~1 latest
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__

__all__ = ["build_parser", "main"]


def _jobs_argument(text: str):
    """``--jobs`` accepts a worker count or ``auto`` (one per CPU).

    Range validation (>= 1) happens in ``create_executor`` so the API
    and the CLI share one error message; argparse only rejects values
    that are neither integers nor ``auto``.
    """
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a worker count or 'auto', got %r" % text
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multi-level evaluation of parallel/distributed computing tools "
            "(reproduction of Hariri et al., 1995)."
        ),
    )
    parser.add_argument("--version", action="version", version="repro %s" % __version__)
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list platforms, tools, experiments and profiles")

    evaluate = sub.add_parser(
        "evaluate",
        help="run the three-level evaluation",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
caching & statistics:
  --cache-dir DIR persists every measurement as a content-addressed
  JSON entry: a sweep killed halfway and re-launched with the same
  directory simulates only the jobs it never finished (0 on a clean
  re-run), and overlapping sweeps share entries.  --shards N splits
  the directory into N deterministic sub-stores for multi-host
  fan-out.  --seeds 0 1 2 replicates every measurement; --stats then
  reports each (platform, profile, tool) cell as mean ±95% CI over
  the seeds instead of one row per seed.  --json exports samples,
  scores, per-cell statistics and per-job telemetry (wall time,
  executor, cache hit/miss, attempts).

simulated variance:
  By default simulations are exactly deterministic, so every seed
  yields the same sample and multi-seed CIs collapse to ±0.  --noise
  [SCALE] turns on each platform's seeded stochastic network model
  (Ethernet CSMA/CD backoff, FDDI token-rotation jitter, ATM/crossbar
  switch jitter) at SCALE times its nominal amplitude (bare --noise
  means 1.0).  Runs stay reproducible — the same (platform,
  processors, seed, noise) always simulates the same timings — but
  different seeds now measure real variance, which is what --stats is
  for.  Noisy and deterministic runs never share cache entries.

  example (resumable, statistically grounded sweep):
    repro evaluate --platforms sun-ethernet alpha-fddi \\
        --profile balanced end-user --seeds 0 1 2 --noise \\
        --cache-dir .repro-cache --jobs 4 --stats --json sweep.json

analytic engine:
  --engine picks how cache misses are answered.  event (default)
  simulates every job on the discrete-event kernel.  analytic
  evaluates whole (platform, tool, size) sub-grids as vectorized
  closed-form timing curves — bit-identical to the kernel on every
  job it admits (noise-free, uncontended traffic patterns) and
  orders of magnitude faster — and errors on jobs it cannot admit.
  auto is the practical mode: eligible jobs are computed
  analytically, everything else (noise, ring traffic, contended
  collectives, application kernels) falls back to the event kernel.
  A curve-level cache above the job-level cache makes re-sweeps of
  the same configurations (fresh seeds included) near-free; per-job
  telemetry in --json marks each sample's engine.

streaming execution:
  Sweeps run through the streaming scheduler (Scheduler.start ->
  RunHandle).  --progress narrates the run live on stderr —
  done/total, simulated vs cache-hit counts and an ETA — while stdout
  keeps only the report (safe to pipe/--json).  --backend picks the
  executor: serial, process (worker processes; the default for
  --jobs > 1), async (an asyncio event loop, --jobs concurrent
  simulations) or remote (see below).  --jobs auto sizes the pool to
  the machine's CPUs.  Ctrl-C cancels cooperatively: in-flight jobs
  finish and persist, so an interrupted sweep resumes over the same
  --cache-dir exactly like a killed one.

distributed execution:
  --backend remote --queue DIR turns this command into a coordinator:
  jobs are published as tickets on the shared queue directory and any
  number of `repro worker` processes (same --queue, same --cache-dir)
  pull, execute and publish them back.  --jobs sizes the admission
  window (how many tickets stay published), not a local pool.  A
  worker that dies mid-job is detected by its stopped heartbeat and
  its tickets are re-claimed by the fleet; Ctrl-C revokes every
  unclaimed ticket (claimed ones finish and persist).

  example (one coordinator, two workers, shared sharded cache):
    repro worker --queue /nfs/q --cache-dir /nfs/cache &
    repro worker --queue /nfs/q --cache-dir /nfs/cache &
    repro evaluate --platforms sun-ethernet alpha-fddi \\
        --backend remote --queue /nfs/q --cache-dir /nfs/cache \\
        --shards 4 --jobs 4 --progress
""",
    )
    evaluate.add_argument("--platform", default=None,
                          help="single platform (default sun-ethernet)")
    evaluate.add_argument("--platforms", nargs="+", default=None,
                          help="sweep several platforms in one run")
    evaluate.add_argument("--processors", type=int, default=4)
    evaluate.add_argument("--profile", nargs="+", default=["balanced"],
                          help="one or more weight profiles; extra profiles "
                               "re-score cached measurements for free")
    evaluate.add_argument("--tools", nargs="+", default=None)
    evaluate.add_argument("--seed", type=int, default=None,
                          help="root seed for a single-replication run "
                               "(default 0; mutually exclusive with --seeds)")
    evaluate.add_argument("--seeds", nargs="+", type=int, default=None,
                          help="replicate the sweep under several seeds "
                               "(enables --stats; mutually exclusive with "
                               "--seed)")
    evaluate.add_argument("--noise", type=float, nargs="?", const=1.0,
                          default=0.0, metavar="SCALE",
                          help="enable the seeded stochastic network models "
                               "at SCALE x their nominal amplitude (bare "
                               "--noise means 1.0; default off)")
    evaluate.add_argument("--jobs", type=_jobs_argument, default=1,
                          metavar="N|auto",
                          help="workers for the simulations (default 1; "
                               "'auto' = one per CPU); the pool starts once "
                               "and is reused across every scheduler pass "
                               "of the run")
    evaluate.add_argument("--engine",
                          choices=("event", "analytic", "auto"),
                          default="event",
                          help="how cache misses are answered: event "
                               "simulates every job; analytic computes "
                               "closed-form curves (bit-identical, errors "
                               "on ineligible jobs); auto computes where "
                               "eligible and simulates the rest")
    evaluate.add_argument("--backend",
                          choices=("serial", "process", "async", "remote"),
                          default=None,
                          help="executor backend (default: serial for "
                               "--jobs 1, process otherwise; async runs "
                               "--jobs simulations on an asyncio loop; "
                               "remote coordinates `repro worker` "
                               "processes over --queue)")
    evaluate.add_argument("--queue", metavar="DIR", default=None,
                          help="shared job-queue directory for "
                               "--backend remote (the one your "
                               "`repro worker` processes watch)")
    evaluate.add_argument("--progress", action="store_true",
                          help="stream live progress (done/total, cache "
                               "hits, ETA) to stderr while the sweep runs")
    evaluate.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="persistent measurement cache: interrupted "
                               "sweeps resume, repeated sweeps re-simulate "
                               "nothing")
    evaluate.add_argument("--shards", type=int, default=None,
                          help="split --cache-dir into N deterministic "
                               "sub-stores (default: adopt the directory's "
                               "recorded shard count, 1 when fresh)")
    evaluate.add_argument("--stats", action="store_true",
                          help="aggregate across seeds: mean ±95%% CI per "
                               "(platform, profile, tool) cell")
    evaluate.add_argument("--json", metavar="PATH", default=None,
                          help="write samples, scores, statistics and "
                               "telemetry to a JSON file")
    evaluate.add_argument("--history-db", metavar="PATH", default=None,
                          help="append this run to a persistent run-history "
                               "database (see `repro history --help`)")
    evaluate.add_argument("--history-label", metavar="NAME", default=None,
                          help="label the recorded run carries in "
                               "`repro history list`")

    worker = sub.add_parser(
        "worker",
        help="pull and execute jobs from a shared queue directory",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
worker-pull execution:
  One claim-execute-publish loop over --queue: tickets are leased via
  atomic rename (exactly one of N racing workers wins each), a
  background heartbeat keeps the lease fresh, and results go through
  the shared --cache-dir (content-addressed, atomic writes) plus a
  per-ticket outcome file the coordinator consumes.  Workers check
  the cache before simulating, so a ticket reclaimed from a dead
  worker whose result already landed costs a lookup, not a re-run.

  The worker adopts the cache directory's recorded shard roster
  (manifest.json); pass --shards only to pin it explicitly — a
  mismatch is an error, never silent re-routing.

  SIGTERM/Ctrl-C stop gracefully: the ticket in flight finishes and
  persists, then the loop exits and prints its counters.  --idle-exit
  N makes a batch worker drain the queue and leave once it has been
  empty for N seconds; --max-jobs bounds how many tickets one worker
  processes.

  example (two workers draining one coordinator's sweep):
    repro worker --queue /nfs/q --cache-dir /nfs/cache --idle-exit 30 &
    repro worker --queue /nfs/q --cache-dir /nfs/cache --idle-exit 30 &
    repro evaluate --backend remote --queue /nfs/q --cache-dir /nfs/cache
""",
    )
    worker.add_argument("--queue", metavar="DIR", required=True,
                        help="shared job-queue directory to pull from")
    worker.add_argument("--cache-dir", metavar="DIR", required=True,
                        help="shared measurement cache results are "
                             "published through")
    worker.add_argument("--shards", type=int, default=None,
                        help="pin the cache shard roster (default: adopt "
                             "the directory's manifest)")
    worker.add_argument("--worker-id", default=None,
                        help="stable worker identity for leases and "
                             "beacons (default host-pid-nonce)")
    worker.add_argument("--poll", type=float, default=0.1, metavar="SECONDS",
                        help="sleep between claim attempts when the queue "
                             "is empty (default 0.1)")
    worker.add_argument("--lease-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="heartbeat-silence span after which any "
                             "process may reclaim this worker's tickets "
                             "(default 30)")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after processing N tickets")
    worker.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit once the queue stayed empty this long "
                             "(default: run until SIGTERM)")

    check = sub.add_parser(
        "check",
        help="run the invariant-enforcing static checks over source trees",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
invariant checks (pure ast analysis; nothing is imported or run):

  determinism.wall-clock   no time.time()/monotonic()/datetime.now()
                           inside sim|net|tools|analytic|apps —
                           simulated code reads Environment.now only.
  determinism.entropy      no random.*/numpy.random.*/os.urandom/uuid/
                           secrets there either; randomness comes from
                           named RandomStreams streams.
  determinism.stream-name  stream names handed to RandomStreams must
                           be static strings registered in
                           repro.sim.rng.STREAM_NAMES ('prefix*'
                           entries admit per-rank families).
  determinism.key-ordering key/hash-building functions must not depend
                           on dict iteration order: json.dumps needs
                           sort_keys=True, .items()/.keys()/.values()
                           need a sorted(...) wrapper.
  locking.guarded-field    fields annotated '# guarded-by: <lock>' are
                           only touched inside 'with self.<lock>:'
                           (methods named *_locked are assumed to be
                           called with the lock held; __init__ is
                           exempt).
  locking.unknown-guard    a guarded-by annotation must name a lock
                           attribute the class actually creates.
  schema.event-registry    every RunEvent subclass is enrolled in its
                           module's EVENT_TYPES registry (the SSE
                           protocol streams only enrolled types).
  schema.dict-round-trip   every field of a dataclass with both
                           to_dict and from_dict is handled by both
                           ('# schema: external' opts a field carried
                           out-of-band out).
  schema.cache-key-fields  MeasurementJob.to_dict — the cache-key
                           payload — writes exactly the dataclass's
                           fields.
  engine.unused-suppression  a '# repro: allow[rule-id]' comment that
                           suppresses nothing is itself reported.
  engine.syntax-error      a file the parser rejects is reported, not
                           skipped.

suppressions:
  '# repro: allow[rule-id]' (comma-separated ids) on the offending
  line marks a deliberate violation; pair it with a comment saying
  why.  Stale suppressions are findings (see above).

exit status: 0 clean, 1 findings, 2 usage error (unknown --rule,
missing path).

  examples:
    repro check src/
    repro check --rule determinism src/repro/net
    repro check --rule locking.guarded-field --format json src/
""",
    )
    check.add_argument("paths", nargs="*", default=None, metavar="PATH",
                       help="files or directories to check (default: src "
                            "if it exists, else the current directory)")
    check.add_argument("--rule", action="append", default=None,
                       metavar="ID",
                       help="run only this rule or pack ('determinism' "
                            "selects the pack, 'determinism.entropy' one "
                            "rule; repeatable) — bisect a red run with "
                            "successive --rule filters")
    check.add_argument("--format", choices=("text", "json"), default="text",
                       help="text prints file:line findings with hints; "
                            "json emits the stable machine-readable "
                            "report CI consumes")
    check.add_argument("--list", action="store_true",
                       help="list every rule id with its description and "
                            "exit")

    experiment = sub.add_parser("experiment", help="regenerate paper tables/figures")
    experiment.add_argument("ids", nargs="*", help="experiment ids (default: all)")

    sub.add_parser("usability", help="print the ADL usability matrix")

    serve = sub.add_parser(
        "serve",
        help="run the evaluation service (HTTP + SSE job server)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
evaluation as a service:
  Exposes the streaming scheduler over HTTP: POST /api/runs submits an
  EvaluationSpec JSON ({"spec": {...}}) and returns {run_id}; GET
  /api/runs and /api/runs/ID inspect history and live progress; POST
  /api/runs/ID/cancel cancels cooperatively; GET /api/runs/ID/events
  is a Server-Sent Events stream that replays the run's events and
  then follows live.  Each request's X-User header is the identity
  the per-user concurrency limit (--user-limit) applies to; runs
  beyond the limit queue FIFO.

  --db persists every run (spec, state, counters, results) in SQLite,
  so a restarted server lists history; with --cache-dir the
  measurements themselves persist too, and resubmitting an
  interrupted spec simulates only the jobs that never finished.
  SIGTERM/SIGINT shut down gracefully: running evaluations cancel
  cooperatively (in-flight jobs finish and persist), queued runs are
  marked cancelled, then the server exits 0.

  With --backend remote --queue DIR the server stops executing jobs
  itself and fans every submitted run out to the `repro worker` fleet
  watching that queue (same --cache-dir on both sides); submit,
  streaming, cancellation and history behave identically.

  example:
    repro serve --port 8765 --db runs.db --cache-dir .repro-cache \\
        --jobs 2 --user-limit 2
""",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port; 0 picks an ephemeral one "
                            "(default 8765)")
    serve.add_argument("--db", metavar="PATH", default="repro-service.db",
                       help="SQLite run-history database "
                            "(default repro-service.db)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent measurement cache shared by "
                            "every run the server executes")
    serve.add_argument("--shards", type=int, default=None,
                       help="split --cache-dir into N sub-stores (default: "
                            "adopt the directory's recorded shard count)")
    serve.add_argument("--jobs", type=_jobs_argument, default=1,
                       metavar="N|auto",
                       help="workers per evaluation run (default 1)")
    serve.add_argument("--backend",
                       choices=("serial", "process", "async", "remote"),
                       default=None,
                       help="executor backend per run (default: serial "
                            "for --jobs 1, process otherwise; remote "
                            "fans every run out to `repro worker` "
                            "processes over --queue)")
    serve.add_argument("--queue", metavar="DIR", default=None,
                       help="shared job-queue directory for "
                            "--backend remote")
    serve.add_argument("--user-limit", type=int, default=2,
                       help="concurrent runs per X-User identity; "
                            "further submissions queue FIFO (default 2)")
    serve.add_argument("--history-db", metavar="PATH", default=None,
                       help="append every completed run to this run-history "
                            "database and expose GET /api/history/... "
                            "(default: history disabled)")

    history = sub.add_parser(
        "history",
        help="record, diff and rank evaluation runs over time",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
regression intelligence:
  One SQLite database remembers every run you record — the full
  results export plus spec hash, git SHA, timestamp and
  noise/engine/backend provenance — and the subcommands read it back
  as a trajectory instead of a snapshot.

  Runs are addressed by id, by any unique id prefix, or relatively:
  `latest` is the newest recorded run and `latest~1` the one before
  it, so the canonical CI gate needs no bookkeeping:

    repro evaluate --seeds 0 1 2 --history-db history.db
    repro history diff --db history.db latest~1 latest
    repro history gate --db history.db latest~1 latest

  `diff` aligns two runs cell by cell — (platform, tool, primitive,
  message size, processors) — and judges each delta with the same
  Student-t machinery the reports use: a Welch two-sample confidence
  interval decides *significant*, the tolerance table decides *worth
  failing over*, and deterministic (single-seed, zero-spread) cells
  degrade exactly (±0 interval: any movement is real).  `diff` is
  informational and always exits 0; `gate` applies the same verdicts
  as policy and exits 1 on regression — that pair is the CI contract.

  `leaderboard` re-asks the paper's headline question — which tool
  wins on this platform, under this weighting profile? — over the
  last N recorded runs instead of one.  `trend` plots one cell family
  (or one bench metric recorded via scripts/bench_report.py
  --history-db) across runs, and `analyze` clusters failure patterns:
  cells that regress in consecutive diffs, tools whose primitives are
  structurally unmeasured, rankings whose confidence intervals
  overlap too much to call.

  The database schema is generation-stamped (PRAGMA user_version); a
  database written by a different generation is refused, never
  silently reinterpreted.

exit status: 0 ok, 1 gate failure, 2 usage error / bad reference.
""",
    )
    hsub = history.add_subparsers(dest="history_command")

    def _history_sub(name, help_text):
        sub_parser = hsub.add_parser(name, help=help_text)
        sub_parser.add_argument("--db", metavar="PATH",
                                default="repro-history.db",
                                help="run-history database "
                                     "(default repro-history.db)")
        return sub_parser

    record = _history_sub("record", "record a results export or "
                                    "BENCH_*.json report")
    record.add_argument("file", help="JSON file: a `repro evaluate --json` "
                                     "export or a benchmark report")
    record.add_argument("--label", default=None,
                        help="label shown in `repro history list`")
    record.add_argument("--source", default="cli",
                        help="provenance tag (default cli)")

    hist_list = _history_sub("list", "list recorded runs, newest first")
    hist_list.add_argument("--kind", choices=("evaluation", "bench"),
                           default=None, help="only this run kind")
    hist_list.add_argument("--limit", type=int, default=20,
                           help="show at most N runs (default 20)")

    show = _history_sub("show", "show one recorded run")
    show.add_argument("ref", help="run id, unique prefix, latest or latest~N")
    show.add_argument("--json", action="store_true",
                      help="print the full stored record as JSON")

    def _diff_arguments(sub_parser):
        sub_parser.add_argument("baseline",
                                help="baseline run (id, prefix, latest~N)")
        sub_parser.add_argument("current",
                                help="candidate run (id, prefix, latest)")
        sub_parser.add_argument("--tolerances", metavar="FILE", default=None,
                                help="JSON tolerance table "
                                     "({\"default\": f, \"kinds\": {...}})")
        sub_parser.add_argument("--tolerance", type=float, default=None,
                                metavar="FRACTION",
                                help="flat relative tolerance overriding "
                                     "the table's default")
        sub_parser.add_argument("--confidence", type=float, default=0.95,
                                help="CI level for significance "
                                     "(default 0.95)")
        sub_parser.add_argument("--json", action="store_true",
                                help="print the machine-readable diff")

    diff = _history_sub("diff", "align two runs cell-by-cell and judge "
                                "every delta (informational; exits 0)")
    _diff_arguments(diff)
    diff.add_argument("--all", action="store_true",
                      help="print unchanged cells too, not just movement")

    leaderboard = _history_sub("leaderboard", "rank tools per "
                                              "(platform, profile) over "
                                              "the last N runs")
    leaderboard.add_argument("--window", type=int, default=10,
                             help="how many recent runs to rank over "
                                  "(default 10)")
    leaderboard.add_argument("--platform", default=None,
                             help="only this platform's boards")
    leaderboard.add_argument("--profile", default=None,
                             help="only this profile's boards")
    leaderboard.add_argument("--json", action="store_true",
                             help="print the boards as JSON")

    trend_cmd = _history_sub("trend", "one quantity's per-run series, "
                                      "oldest first")
    trend_cmd.add_argument("--metric", default=None, metavar="PATH",
                           help="a recorded bench metric path (e.g. "
                                "metrics.kernel_events_per_sec)")
    trend_cmd.add_argument("--platform", default=None)
    trend_cmd.add_argument("--tool", default=None)
    trend_cmd.add_argument("--kind", default=None,
                           help="sendrecv, broadcast, ring, global_sum or "
                                "application")
    trend_cmd.add_argument("--size", type=int, default=None,
                           help="restrict to one message/vector size")
    trend_cmd.add_argument("--limit", type=int, default=None,
                           help="last N points only")
    trend_cmd.add_argument("--json", action="store_true")

    gate = _history_sub("gate", "fail (exit 1) when the candidate run "
                                "regressed vs the baseline")
    _diff_arguments(gate)
    gate.add_argument("--max-regressions", type=int, default=0,
                      help="regression cells tolerated before failing "
                           "(default 0)")
    gate.add_argument("--fail-on-removed", action="store_true",
                      help="also fail when cells vanished from the grid")

    analyze = _history_sub("analyze", "failure patterns and "
                                      "recommendations over recent runs")
    analyze.add_argument("--window", type=int, default=10,
                         help="how many recent runs to analyze (default 10)")
    analyze.add_argument("--json", action="store_true")
    return parser


def _cmd_list() -> int:
    from repro.apps.suite import BENCHMARKED_APPS, EXTENSION_APPS
    from repro.bench.runner import available_experiments
    from repro.core.weights import PRESET_PROFILES
    from repro.hardware.catalog import PLATFORM_NAMES
    from repro.tools.registry import TOOL_NAMES

    print("platforms:   %s" % ", ".join(PLATFORM_NAMES))
    print("tools:       %s" % ", ".join(TOOL_NAMES))
    print("apps:        %s (paper) + %s (extensions)"
          % (", ".join(BENCHMARKED_APPS), ", ".join(EXTENSION_APPS)))
    print("profiles:    %s" % ", ".join(sorted(PRESET_PROFILES)))
    print("experiments: %s" % ", ".join(available_experiments()))
    return 0


def _run_with_progress(scheduler, spec, stream=None):
    """Drive ``spec`` through ``Scheduler.start``, painting a live
    one-line progress display on ``stream`` (stderr by default, so
    stdout stays clean for reports and --json)."""
    from repro.core.progress import CacheHit, JobFinished, RunCompleted

    stream = stream if stream is not None else sys.stderr
    handle = scheduler.start(spec)
    painted = 0  # pad \r redraws so a shrinking line leaves no residue

    def paint(tail: str = "") -> None:
        nonlocal painted
        line = handle.progress().render()
        stream.write("\r" + line.ljust(painted) + tail)
        painted = len(line)

    try:
        for event in handle.events():
            if isinstance(event, (JobFinished, CacheHit)):
                paint()
            elif isinstance(event, RunCompleted):
                paint("\n")
            stream.flush()
    except BaseException:
        # Ctrl-C (or any consumer failure) mid-stream: cancel
        # cooperatively and wait so in-flight jobs flush to the cache
        # before the exception propagates.
        handle.cancel()
        handle.wait()
        stream.write("\n")
        raise
    return handle.result()


def _cmd_evaluate(args) -> int:
    from repro.core.scheduler import Scheduler, create_executor
    from repro.core.spec import EvaluationSpec
    from repro.core.weights import PRESET_PROFILES
    from repro.errors import ReproError
    from repro.tools.registry import PAPER_TOOL_NAMES, TOOL_CLASSES, available_tools

    unknown = [name for name in args.profile if name not in PRESET_PROFILES]
    if unknown:
        print("unknown profile %s; available: %s"
              % (", ".join(repr(name) for name in unknown),
                 ", ".join(sorted(PRESET_PROFILES))))
        return 2
    tools = tuple(args.tools) if args.tools else PAPER_TOOL_NAMES
    # Validate against the live registry up front, mirroring --profile.
    unknown = [name for name in tools if name not in TOOL_CLASSES]
    if unknown:
        print("unknown tools %s; available: %s"
              % (", ".join(repr(name) for name in unknown),
                 ", ".join(available_tools())))
        return 2
    if args.platform and args.platforms:
        print("use either --platform or --platforms, not both")
        return 2
    if args.seed is not None and args.seeds:
        # Silently preferring one flag over the other would misreport
        # which replication actually ran; make the conflict loud.
        print("use either --seed or --seeds, not both")
        return 2
    platforms = tuple(args.platforms or [args.platform or "sun-ethernet"])
    seeds = tuple(args.seeds) if args.seeds else (args.seed if args.seed is not None else 0,)
    try:
        spec = EvaluationSpec(
            tools=tools,
            platforms=platforms,
            processors=args.processors,
            profiles=tuple(args.profile),
            seeds=seeds,
            noise=args.noise,
        )
        # The scheduler's context manager shuts the (persistent,
        # reused-across-passes) worker pool down when the run is over.
        with Scheduler(
            executor=create_executor(args.jobs, backend=args.backend,
                                     queue_dir=args.queue),
            cache_dir=args.cache_dir,
            shards=args.shards,
            engine=args.engine,
        ) as scheduler:
            if args.progress:
                result_set = _run_with_progress(scheduler, spec)
            else:
                result_set = scheduler.run(spec)
    except KeyboardInterrupt:
        # The streaming scheduler cancelled cooperatively and flushed
        # every finished job before this propagated.
        print("interrupted: completed jobs are persisted%s"
              % (" — re-run with the same --cache-dir to resume"
                 if args.cache_dir else " in this process's cache only"))
        return 130
    except ReproError as error:
        print("error: %s" % error)
        return 2
    single_cell = (
        len(spec.platforms) == 1 and len(spec.profiles) == 1 and len(spec.seeds) == 1
    )
    if single_cell and not args.stats:
        print(result_set.report().summary())
    else:
        print(result_set.comparison(stats=args.stats))
        print()
        print("%d simulations scored %d configurations"
              % (scheduler.simulations_run, len(spec.cells())))
    if args.cache_dir:
        print("cache %s: %d simulated, %d served from %s"
              % (args.cache_dir, scheduler.simulations_run,
                 scheduler.cache.hits, scheduler.cache.backend.name))
    if scheduler.analytic is not None:
        computed = sum(1 for record in scheduler.telemetry.values()
                       if record.engine == "analytic" and not record.cache_hit)
        curve = scheduler.analytic.curves.stats()
        print("analytic engine: %d job(s) computed closed-form over %d "
              "curve(s) (%d point hit(s), %d vectorized evaluation(s)); "
              "%d simulated on the event kernel"
              % (computed, curve["curves"], curve["hits"],
                 curve["evaluations"], scheduler.simulations_run - computed))
    if args.json:
        try:
            result_set.to_json(args.json)
        except OSError as error:
            print("error: cannot write %s (%s)" % (args.json, error))
            return 2
        print("wrote %s" % args.json)
    if args.history_db:
        from repro.history import HistoryStore, current_git_sha

        try:
            with HistoryStore(args.history_db) as history:
                run_id = history.record_result(
                    result_set.to_dict(), label=args.history_label,
                    source="cli", git_sha=current_git_sha(),
                )
        except (ReproError, OSError) as error:
            print("error: cannot record history in %s (%s)"
                  % (args.history_db, error))
            return 2
        print("recorded run %s in %s" % (run_id, args.history_db))
    return 0


def _history_tolerances(args):
    """The tolerance table a diff/gate invocation asked for."""
    from repro.errors import HistoryError
    from repro.history import Tolerances

    if args.tolerances and args.tolerance is not None:
        raise HistoryError("use either --tolerances or --tolerance, not both")
    if args.tolerances:
        return Tolerances.from_file(args.tolerances)
    if args.tolerance is not None:
        return Tolerances(default=args.tolerance)
    return Tolerances()


def _cmd_history(args) -> int:
    import json as json_module
    import time

    from repro.errors import ReproError
    from repro.history import (
        HistoryStore,
        analyze_history,
        current_git_sha,
        diff_runs,
        leaderboards,
        run_gate,
        trend,
    )

    if args.history_command is None:
        print("usage: repro history record|list|show|diff|leaderboard|"
              "trend|gate|analyze (see `repro history --help`)")
        return 2

    def when(timestamp) -> str:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(timestamp))

    try:
        with HistoryStore(args.db) as store:
            if args.history_command == "record":
                try:
                    with open(args.file) as handle:
                        payload = json_module.load(handle)
                except (OSError, ValueError) as error:
                    print("error: cannot read %s (%s)" % (args.file, error))
                    return 2
                if isinstance(payload, dict) and "spec" in payload:
                    run_id = store.record_result(
                        payload, label=args.label, source=args.source,
                        git_sha=current_git_sha(),
                    )
                else:
                    run_id = store.record_bench(
                        payload, label=args.label, source=args.source,
                        git_sha=current_git_sha(),
                    )
                print("recorded run %s in %s" % (run_id, args.db))
                return 0

            if args.history_command == "list":
                runs = store.list_runs(kind=args.kind, limit=args.limit)
                if not runs:
                    print("no recorded runs in %s" % args.db)
                    return 0
                print("%-14s %-11s %-19s %-9s %-16s %s" % (
                    "run", "kind", "recorded", "git", "label", "provenance"))
                for run in runs:
                    provenance = "%s noise=%g" % (run["source"], run["noise"])
                    if run["engine"]:
                        provenance += " engine=%s" % run["engine"]
                    if run["backend"]:
                        provenance += " backend=%s" % run["backend"]
                    print("%-14s %-11s %-19s %-9s %-16s %s" % (
                        run["run_id"], run["kind"], when(run["recorded_at"]),
                        run["git_sha"] or "-", run["label"] or "-",
                        provenance,
                    ))
                return 0

            if args.history_command == "show":
                record = store.get(store.resolve(args.ref))
                if args.json:
                    print(json_module.dumps(record, indent=2, sort_keys=True))
                    return 0
                print("run %s (%s)" % (record["run_id"], record["kind"]))
                for key in ("label", "source", "git_sha", "spec_hash",
                            "engine", "backend"):
                    if record.get(key):
                        print("  %-12s %s" % (key, record[key]))
                print("  %-12s %s" % ("recorded", when(record["recorded_at"])))
                if record["kind"] == "evaluation":
                    samples = store.samples_for(record["run_id"])
                    print("  %-12s %d rows over %d cells"
                          % ("samples", len(samples),
                             len(store.cells(record["run_id"]))))
                    for row in store.scores_for([record["run_id"]]):
                        print("  score %-12s %-10s %-10s %.3f ±%.3f (n=%d)"
                              % (row["platform"], row["profile"], row["tool"],
                                 row["mean"], row["stddev"], row["n"]))
                else:
                    from repro.history.store import flatten_metrics

                    metrics = flatten_metrics(
                        {"metrics": record["payload"]["metrics"]})
                    for path, value in sorted(metrics.items()):
                        print("  metric %-40s %.6g" % (path, value))
                return 0

            if args.history_command == "diff":
                diff = diff_runs(
                    store, args.baseline, args.current,
                    tolerances=_history_tolerances(args),
                    confidence=args.confidence,
                )
                print(json_module.dumps(diff.to_dict(), indent=2,
                                        sort_keys=True)
                      if args.json else diff.render(show_all=args.all))
                return 0

            if args.history_command == "leaderboard":
                boards = leaderboards(
                    store, window=args.window,
                    platform=args.platform, profile=args.profile,
                )
                if args.json:
                    print(json_module.dumps(
                        [board.to_dict() for board in boards],
                        indent=2, sort_keys=True))
                elif not boards:
                    print("no evaluation runs recorded in %s" % args.db)
                else:
                    print("\n\n".join(board.render() for board in boards))
                return 0

            if args.history_command == "trend":
                series = trend(
                    store, metric=args.metric, platform=args.platform,
                    tool=args.tool, kind=args.kind, size=args.size,
                    limit=args.limit,
                )
                print(json_module.dumps(series.to_dict(), indent=2,
                                        sort_keys=True)
                      if args.json else series.render())
                return 0

            if args.history_command == "gate":
                verdict = run_gate(
                    store, args.baseline, args.current,
                    tolerances=_history_tolerances(args),
                    confidence=args.confidence,
                    max_regressions=args.max_regressions,
                    fail_on_removed=args.fail_on_removed,
                )
                print(json_module.dumps(verdict.to_dict(), indent=2,
                                        sort_keys=True)
                      if args.json else verdict.render())
                return verdict.exit_code

            if args.history_command == "analyze":
                analysis = analyze_history(store, window=args.window)
                print(json_module.dumps(analysis.to_dict(), indent=2,
                                        sort_keys=True)
                      if args.json else analysis.render())
                return 0
    except ReproError as error:
        print("error: %s" % error)
        return 2
    except OSError as error:
        print("error: cannot open %s (%s)" % (args.db, error))
        return 2
    return 2  # pragma: no cover - argparse restricts the choices


def _cmd_worker(args) -> int:
    import signal

    from repro.core.cache import ResultCache, ShardedBackend
    from repro.distributed import JobQueue, Worker
    from repro.errors import ReproError

    try:
        queue = JobQueue(args.queue, lease_timeout=args.lease_timeout)
        cache = ResultCache.on_disk(args.cache_dir, shards=args.shards)

        def narrate(claim, outcome) -> None:
            # One machine-parseable line per ticket: the CI smoke job
            # greps these to prove the fleet split work disjointly.
            if outcome["error"]:
                status = "failed type=%s" % outcome["error"]["type"]
            elif outcome["cache_hit"]:
                status = "cache-hit"
            else:
                status = "simulated"
            print("[%s] ticket=%s %s wall=%.3fs"
                  % (worker.worker_id, claim.ticket, status,
                     outcome["wall_seconds"]), flush=True)

        worker = Worker(
            queue, cache,
            worker_id=args.worker_id,
            poll_interval=args.poll,
            max_jobs=args.max_jobs,
            idle_seconds=args.idle_exit,
            on_job=narrate,
        )
    except ReproError as error:
        print("error: %s" % error)
        return 2
    # Graceful stop: the ticket in flight finishes and persists, then
    # the loop exits — a worker killed harder than this is exactly
    # what heartbeats + stale-lease reclaim exist for.
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: worker.stop())
    shards = (len(cache.backend.backends)
              if isinstance(cache.backend, ShardedBackend) else 1)
    print("worker %s pulling from %s (cache %s, %d shard(s))"
          % (worker.worker_id, args.queue, args.cache_dir, shards),
          flush=True)
    stats = worker.run()
    print("worker %s done: %d processed, %d simulated, %d cache hits, "
          "%d failed"
          % (worker.worker_id, stats["processed"], stats["simulated"],
             stats["cache_hits"], stats["failed"]))
    return 0


def _cmd_check(args) -> int:
    import os

    from repro.analysis import all_rules, findings_to_json, run_checks, select_rules
    from repro.errors import ReproError

    if args.list:
        for rule in all_rules():
            print("%-25s %s" % (rule.id, rule.description))
        print()
        print("dynamic counterparts (assertions, not lint): "
              "tests/analysis_checks/ promotes scripts/apl_check.py and "
              "scripts/ordering_check.py into pytest tests of the paper's "
              "qualitative orderings.")
        return 0
    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    try:
        rules = select_rules(args.rule)
        report = run_checks(paths, rules)
    except ReproError as error:
        print("error: %s" % error)
        return 2
    if args.format == "json":
        print(findings_to_json(report))
    else:
        for finding in report.findings:
            print(finding.render())
        print("%d file(s) checked, %d rule(s), %d finding(s)"
              % (report.files_checked, len(report.rules_run),
                 len(report.findings)))
    return 0 if report.clean else 1


def _cmd_experiment(ids: List[str]) -> int:
    from repro.bench.runner import available_experiments, run_experiments
    from repro.errors import ReproError

    requested = ids or None
    if requested:
        unknown = set(requested) - set(available_experiments())
        if unknown:
            print("unknown experiments: %s" % ", ".join(sorted(unknown)))
            print("available: %s" % ", ".join(available_experiments()))
            return 2
    try:
        results = run_experiments(requested)
    except ReproError as error:
        print("error: %s" % error)
        return 2
    failed = [result for result in results if not result.passed]
    print("%d/%d artifacts reproduce the paper's claims"
          % (len(results) - len(failed), len(results)))
    return 1 if failed else 0


def _cmd_usability() -> int:
    from repro.core.report import render_usability_table

    print(render_usability_table())
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.core.cache import ResultCache
    from repro.core.scheduler import Scheduler, create_executor
    from repro.errors import ReproError
    from repro.service import JobRegistry, RunStore, ServiceServer

    try:
        if args.user_limit < 1:
            print("error: --user-limit must be >= 1")
            return 2
        store = RunStore(args.db)
        orphans = store.recover()
        if orphans:
            print("reconciled %d orphaned run(s) from a previous server"
                  % orphans)
        # One thread-safe cache shared by every run this server
        # executes: overlapping specs share measurements, and with
        # --cache-dir they survive the server itself.
        if args.cache_dir is not None:
            cache = ResultCache.on_disk(args.cache_dir, shards=args.shards)
        else:
            cache = ResultCache()

        def scheduler_factory() -> Scheduler:
            return Scheduler(
                executor=create_executor(args.jobs, backend=args.backend,
                                         queue_dir=args.queue),
                cache=cache,
            )

        # Fail a bad backend/queue combination at boot, not inside the
        # first submitted run.
        scheduler_factory().executor.close()

        history = None
        if args.history_db:
            from repro.history import HistoryStore

            history = HistoryStore(args.history_db)
        registry = JobRegistry(
            store, scheduler_factory=scheduler_factory,
            per_user_limit=args.user_limit, history=history,
        )
        server = ServiceServer(registry, host=args.host, port=args.port)
    except ReproError as error:
        print("error: %s" % error)
        return 2
    except OSError as error:
        print("error: cannot open %s (%s)" % (args.db, error))
        return 2

    async def _serve() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                signal.signal(signum, lambda *_: stop.set())
        try:
            await server.start()
        except OSError as error:
            raise ReproError(
                "cannot bind %s:%d (%s)" % (args.host, args.port, error)
            )
        # Machine-readable: tests and examples/service_demo.py parse
        # this line to find an ephemeral --port 0.
        print("serving on http://%s:%d" % (args.host, server.port), flush=True)
        print("db=%s cache=%s user-limit=%d (SIGTERM/ctrl-C stops "
              "gracefully)" % (args.db, args.cache_dir or "<memory>",
                               args.user_limit), flush=True)
        await stop.wait()
        print("shutting down: cancelling running evaluations "
              "cooperatively...", flush=True)
        await server.close()
        # Registry shutdown joins watcher threads (in-flight jobs
        # finish and persist) — keep it off the event loop thread.
        await asyncio.to_thread(registry.shutdown)

    try:
        asyncio.run(_serve())
    except ReproError as error:
        print("error: %s" % error)
        return 2
    finally:
        store.close()
        if history is not None:
            history.close()
    print("service stopped; run history is in %s" % args.db)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "experiment":
        return _cmd_experiment(args.ids)
    if args.command == "usability":
        return _cmd_usability()
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "history":
        return _cmd_history(args)
    parser.print_help()
    return 0
