"""Numeric dataset generators and sweep helpers."""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "integer_keys",
    "complex_field",
    "dense_matrix",
    "message_size_sweep",
    "processor_sweep",
]


def integer_keys(stream: np.random.Generator, count: int) -> np.ndarray:
    """Uniform random sort keys in [0, 2^31)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return stream.integers(0, 2 ** 31 - 1, size=count, dtype=np.int64)


def complex_field(stream: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """A complex128 field of unit-variance Gaussian noise."""
    real = stream.normal(0.0, 1.0, size=(rows, cols))
    imag = stream.normal(0.0, 1.0, size=(rows, cols))
    return (real + 1j * imag).astype(np.complex128)


def dense_matrix(stream: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """A dense float64 matrix of unit-variance Gaussian entries."""
    return stream.normal(0.0, 1.0, size=(rows, cols))


def message_size_sweep(max_kb: int = 64, points_per_doubling: int = 1) -> List[int]:
    """Byte sizes 1 KB, 2 KB, ... up to ``max_kb`` (doubling grid).

    The paper's Table 3 grid (plus the 0-byte point, which callers add
    when they want pure-latency measurements).
    """
    if max_kb < 1:
        raise ValueError("max_kb must be at least 1")
    sizes = []
    kb = 1
    while kb <= max_kb:
        sizes.append(kb * 1024)
        kb *= 2
    return sizes


def processor_sweep(max_processors: int) -> List[int]:
    """Processor counts 1, 2, 4, ... up to ``max_processors``."""
    if max_processors < 1:
        raise ValueError("max_processors must be at least 1")
    counts = []
    p = 1
    while p <= max_processors:
        counts.append(p)
        p *= 2
    return counts
