"""Reusable synthetic workload generators.

The applications own their workload *semantics* (what a JPEG image or
a key block means); this package holds the generic generators they
share, plus sweep helpers for the benchmark harness.
"""

from repro.workloads.datagen import (
    integer_keys,
    complex_field,
    dense_matrix,
    message_size_sweep,
    processor_sweep,
)
from repro.workloads.images import gradient_noise_image

__all__ = [
    "complex_field",
    "dense_matrix",
    "gradient_noise_image",
    "integer_keys",
    "message_size_sweep",
    "processor_sweep",
]
