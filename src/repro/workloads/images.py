"""Synthetic test imagery with photographic statistics."""

from __future__ import annotations

import numpy as np

__all__ = ["gradient_noise_image"]


def gradient_noise_image(
    stream: np.random.Generator,
    height: int,
    width: int,
    noise_sigma: float = 6.0,
) -> np.ndarray:
    """A deterministic grayscale image: smooth structure plus noise.

    Smooth trigonometric gradients give realistic low-frequency
    content (compressible DC/low-AC energy); band-limited noise keeps
    the entropy coder honest.  Neither all-zero AC (trivially
    compressible) nor white noise (incompressible) — it compresses
    like a photograph, which is what the JPEG benchmark needs.
    """
    if height < 1 or width < 1:
        raise ValueError("image dimensions must be positive")
    y = np.linspace(0, 4 * np.pi, height).reshape(-1, 1)
    x = np.linspace(0, 4 * np.pi, width).reshape(1, -1)
    base = 128.0 + 60.0 * np.sin(y) * np.cos(x) + 40.0 * np.sin(0.5 * (x + y))
    noise = stream.normal(0.0, noise_sigma, size=(height, width))
    return np.clip(base + noise, 0, 255).astype(np.uint8)
