"""repro — reproduction of "Software Tool Evaluation Methodology" (1995).

A multi-level evaluation framework for parallel/distributed computing
(PDC) tools, together with every substrate the paper's experiments
need: a discrete-event simulation kernel, 1995-era network and node
models, runtime models of the Express, p4 and PVM message-passing
tools, and real implementations of the SU PDABS benchmark applications.

Quickstart
----------
>>> from repro import evaluate_tools
>>> report = evaluate_tools(platform="sun-ethernet", processors=4)
>>> print(report.summary())            # doctest: +SKIP
"""

from repro._version import __version__

__all__ = ["__version__", "Evaluator", "WeightProfile", "evaluate_tools"]


def __getattr__(name):
    # Lazy imports keep `import repro.sim` cheap and avoid import cycles
    # between the convenience API and the subpackages implementing it.
    if name in ("Evaluator", "evaluate_tools"):
        from repro.core import evaluation

        return getattr(evaluation, name)
    if name == "WeightProfile":
        from repro.core.weights import WeightProfile

        return WeightProfile
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
