"""Ad-hoc calibration check against the paper's Table 3.

Prints measured round-trip times (ms) next to the paper's values for
each tool x network x message size, plus the ratio.
"""

import sys

from repro.hardware import build_platform
from repro.tools import create_tool

PAPER_TABLE3 = {
    # (tool, network): {KB: round-trip ms}
    ("pvm", "sun-ethernet"): {0: 9.655, 1: 11.693, 2: 14.306, 4: 25.537, 8: 44.392,
                              16: 61.096, 32: 109.844, 64: 189.120},
    ("pvm", "sun-atm-lan"): {0: 7.991, 1: 8.678, 2: 9.896, 4: 13.673, 8: 18.574,
                             16: 27.365, 32: 48.028, 64: 88.176},
    ("pvm", "sun-atm-wan"): {0: 7.764, 1: 8.878, 2: 10.105, 4: 14.665, 8: 19.526,
                             16: 28.679, 32: 53.320, 64: 91.353},
    ("p4", "sun-ethernet"): {0: 3.199, 1: 3.599, 2: 4.399, 4: 9.332, 8: 24.165,
                             16: 44.164, 32: 98.996, 64: 173.158},
    ("p4", "sun-atm-lan"): {0: 2.966, 1: 3.393, 2: 3.748, 4: 4.404, 8: 6.482,
                            16: 11.191, 32: 19.104, 64: 35.899},
    ("p4", "sun-atm-wan"): {0: 3.636, 1: 4.168, 2: 4.822, 4: 5.069, 8: 7.459,
                            16: 13.573, 32: 22.254, 64: 41.725},
    ("express", "sun-ethernet"): {0: 4.807, 1: 10.375, 2: 18.362, 4: 32.669, 8: 59.166,
                                  16: 111.411, 32: 189.760, 64: 311.700},
    ("express", "sun-atm-lan"): {0: 4.152, 1: 7.240, 2: 11.061, 4: 16.990, 8: 27.047,
                                 16: 46.003, 32: 82.566, 64: 153.970},
}


def echo_rtt_ms(tool_name, platform_name, nbytes):
    platform = build_platform(platform_name, processors=2)
    tool = create_tool(tool_name, platform)

    def program(comm):
        if comm.rank == 0:
            start = comm.env.now
            yield from comm.send(1, nbytes=nbytes, tag="ping")
            yield from comm.recv(src=1, tag="pong")
            return (comm.env.now - start) * 1e3
        yield from comm.recv(src=0, tag="ping")
        yield from comm.send(0, nbytes=nbytes, tag="pong")
        return None

    results = tool.run_spmd(program, nprocs=2)
    return results[0]


def main():
    tools = sys.argv[1:] or ["p4", "pvm", "express"]
    for (tool_name, platform_name), rows in sorted(PAPER_TABLE3.items()):
        if tool_name not in tools:
            continue
        print("\n%s on %s" % (tool_name, platform_name))
        print("%6s %10s %10s %7s" % ("KB", "paper", "measured", "ratio"))
        for kb, paper_ms in sorted(rows.items()):
            measured = echo_rtt_ms(tool_name, platform_name, kb * 1024)
            print("%6d %10.3f %10.3f %7.2f" % (kb, paper_ms, measured, measured / paper_ms))


if __name__ == "__main__":
    main()
