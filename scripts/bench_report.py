"""Compare a BENCH_*.json run against a committed baseline.

The benchmark scripts record absolute wall-clock metrics; this tool
turns two such files into a regression report.  By default regressions
*warn* (exit 0) rather than fail — CI hardware is noisy and the
trajectory is young.  ``--strict`` fails on any regression; for the
middle ground, ``--strict-metric PATH[=TOL]`` (repeatable) fails only
when one of the named metrics regresses — the right mode for
ratio-style metrics (a speedup measured against a reference on the
*same* machine), which deserve a hard floor while raw wall-times keep
warning.  The optional per-metric ``=TOL`` sets how far below
baseline the floor sits (ratio metrics still shift somewhat across
interpreter versions and CPUs, so the floor should encode the real
invariant, not the baseline machine's exact number).

``--tolerances FILE`` reads the same floors from a committed table
(``benchmarks/data/bench_tolerances.json``) keyed by the report's
``benchmark`` stamp, so CI enforces one reviewed policy instead of
flags scattered across workflow steps; explicit ``--strict-metric``
flags override the table per path.  ``--history-db PATH`` additionally
appends the current report to a run-history database (see ``repro
history --help``), putting the perf trajectory and the evaluation
history in one queryable place.  Usage::

    python scripts/bench_report.py BENCH_kernel.json \
        --baseline benchmarks/data/BENCH_kernel_baseline.json \
        [--tolerance 0.25] [--strict] \
        [--tolerances benchmarks/data/bench_tolerances.json] \
        [--strict-metric metrics.ethernet_fastpath.speedup=0.8] \
        [--history-db history.db]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Metric paths where *larger* is better; everything else numeric is a
#: wall-clock style metric where smaller is better.
HIGHER_IS_BETTER = ("events_per_sec", "speedup", "amortization_ratio",
                    "mbytes_per_sec")

IGNORED_KEYS = {"python", "machine", "quick", "passes", "benchmark"}


def flatten(prefix, node, out):
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            if key in IGNORED_KEYS:
                continue
            flatten(prefix + (key,), value, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[".".join(prefix)] = float(node)
    return out


def higher_is_better(path):
    return any(path.endswith(marker) for marker in HIGHER_IS_BETTER)


def compare(current, baseline, tolerance):
    """Yield (path, base, now, ratio, status) for every shared metric.

    ``ratio`` > 1 always means "better than baseline"; a metric is a
    regression when it is worse by more than ``tolerance``.
    """
    current = flatten((), current, {})
    baseline = flatten((), baseline, {})
    for path in sorted(set(current) & set(baseline)):
        base, now = baseline[path], current[path]
        if base <= 0 or now <= 0:
            ratio = float("nan")
        elif higher_is_better(path):
            ratio = now / base
        else:
            ratio = base / now
        status = "ok"
        if ratio == ratio and ratio < 1.0 - tolerance:
            status = "REGRESSION"
        elif ratio == ratio and ratio > 1.0 + tolerance:
            status = "improved"
        yield path, base, now, ratio, status


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly written BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="fractional slack before a metric counts as "
                             "regressed (default 0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warning")
    parser.add_argument("--strict-metric", action="append", default=[],
                        metavar="PATH[=TOL]", dest="strict_metrics",
                        help="flattened metric path (e.g. "
                             "metrics.ethernet_fastpath.speedup) whose "
                             "regression exits 1 even without --strict; "
                             "an optional =TOL overrides --tolerance for "
                             "that metric alone (e.g. PATH=0.8 tolerates "
                             "an 80%% drop before failing); repeatable")
    parser.add_argument("--tolerances", metavar="FILE", default=None,
                        help="committed tolerance table mapping each "
                             "report's 'benchmark' stamp to its strict "
                             "metric floors ({\"kernel\": {PATH: TOL}}); "
                             "--strict-metric overrides it per path")
    parser.add_argument("--history-db", metavar="PATH", default=None,
                        help="also append the current report to this "
                             "run-history database (repro history trend "
                             "reads it back)")
    args = parser.parse_args(argv)

    strict_metrics = {}
    for entry in args.strict_metrics:
        path, _, tol = entry.partition("=")
        strict_metrics[path] = float(tol) if tol else args.tolerance

    with open(args.current) as handle:
        current = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    # Both files must be benchmark reports — an object with a
    # "metrics" mapping.  Diffing something else (a results export, a
    # truncated file) would flatten to zero shared paths and read as
    # "no regressions"; fail loudly instead.
    for path, data in ((args.current, current), (args.baseline, baseline)):
        if not isinstance(data, dict) or not isinstance(data.get("metrics"), dict):
            print("error: %s is not a benchmark report (no 'metrics' "
                  "mapping); expected a BENCH_*.json written by the "
                  "benchmark scripts" % path)
            return 2

    if args.tolerances:
        try:
            with open(args.tolerances) as handle:
                table = json.load(handle)
        except (OSError, ValueError) as error:
            print("error: cannot read tolerance table %s (%s)"
                  % (args.tolerances, error))
            return 2
        if isinstance(table, dict):
            # "_"-prefixed keys are commentary (the table documents its
            # own policy in a "__doc__" entry), not benchmark stamps.
            table = {stamp: floors for stamp, floors in table.items()
                     if not stamp.startswith("_")}
        stamp = current.get("benchmark")
        entry = table.get(stamp) if isinstance(table, dict) else None
        if not isinstance(table, dict) or not all(
            isinstance(floors, dict) for floors in table.values()
        ):
            print("error: %s must map benchmark stamps to {metric: "
                  "tolerance} objects" % args.tolerances)
            return 2
        if entry is None:
            # An unlisted benchmark is a policy gap, not a failure:
            # the report still compares, nothing extra is enforced.
            print("warning: %s has no entry for benchmark %r; no strict "
                  "floors enforced from the table"
                  % (args.tolerances, stamp))
        else:
            for path, tol in sorted(entry.items()):
                strict_metrics.setdefault(path, float(tol))

    if args.history_db:
        try:
            try:
                from repro.history import HistoryStore, current_git_sha
            except ImportError:
                # Standalone invocation without PYTHONPATH: the script
                # lives in <repo>/scripts, the package in <repo>/src.
                sys.path.insert(0, os.path.join(
                    os.path.dirname(os.path.abspath(__file__)), "..", "src"))
                from repro.history import HistoryStore, current_git_sha
            with HistoryStore(args.history_db) as history:
                run_id = history.record_bench(
                    current, source="bench", git_sha=current_git_sha())
            print("recorded bench run %s in %s" % (run_id, args.history_db))
        except Exception as error:  # noqa: BLE001 - report and fail loudly
            print("error: cannot record history in %s (%s)"
                  % (args.history_db, error))
            return 2

    # The benchmark scripts stamp every report with the interpreter and
    # machine that produced it.  A cross-environment diff still runs —
    # ratio metrics survive the move — but raw wall-times do not
    # compare meaningfully, so say so loudly (warn, never fail: CI
    # refreshing a laptop-recorded baseline is the normal case).
    for key, label in (("python", "python version"), ("machine", "machine")):
        base_env, now_env = baseline.get(key), current.get(key)
        if base_env and now_env and base_env != now_env:
            print("warning: %s differs (baseline %s, current %s); "
                  "wall-clock comparisons across environments are noisy "
                  "— trust the ratio metrics, not the absolute times"
                  % (label, base_env, now_env))

    rows = list(compare(current, baseline, args.tolerance))
    if not rows:
        print("no shared numeric metrics between %s and %s"
              % (args.current, args.baseline))
        # With strict metrics requested, "nothing to compare" means
        # the hard floor cannot be enforced — that is a failure, not
        # a free pass (a broken benchmark run must not stay green).
        return 2 if strict_metrics else 0

    seen_paths = {path for path, *_ in rows}
    unknown = set(strict_metrics) - seen_paths
    if unknown:
        # A typo'd strict metric would silently enforce nothing — but
        # say *why* each path is missing: "the baseline predates this
        # metric" has a different fix (regenerate the baseline) than
        # "no run ever produced it" (fix the spelling).
        current_paths = set(flatten((), current, {}))
        baseline_paths = set(flatten((), baseline, {}))
        for path in sorted(unknown):
            if path in current_paths and path not in baseline_paths:
                print("--strict-metric %s: the baseline predates this "
                      "metric (present in %s, absent from %s) — "
                      "regenerate the baseline to start enforcing it"
                      % (path, args.current, args.baseline))
            elif path in baseline_paths and path not in current_paths:
                print("--strict-metric %s: this run did not produce the "
                      "metric (present in the baseline, absent from %s) "
                      "— the benchmark may be broken or renamed"
                      % (path, args.current))
            else:
                print("--strict-metric %s: no such metric in either "
                      "report (typo?); shared metrics: %s"
                      % (path, ", ".join(sorted(seen_paths))))
        return 2

    width = max(len(path) for path, *_ in rows)
    print("%-*s %14s %14s %8s  %s"
          % (width, "metric", "baseline", "current", "ratio", "status"))
    regressions = 0
    strict_failures = []
    for path, base, now, ratio, status in rows:
        if status == "REGRESSION":
            regressions += 1
        if path in strict_metrics:
            # Strict metrics are judged against their own tolerance,
            # and a NaN ratio (a non-positive value: the benchmark is
            # broken) must fail the floor, not slip past it as "ok".
            if ratio != ratio or ratio < 1.0 - strict_metrics[path]:
                strict_failures.append(path)
        print("%-*s %14.6g %14.6g %7.2fx  %s%s"
              % (width, path, base, now, ratio, status,
                 "  [strict]" if path in strict_metrics else ""))

    if strict_failures:
        print("\nstrict metric(s) failed their floor: %s"
              % ", ".join(strict_failures))
        return 1
    if regressions:
        print("\n%d metric(s) regressed beyond %.0f%% tolerance"
              % (regressions, args.tolerance * 100)
              + ("" if args.strict else " (warning only)"))
        return 1 if args.strict else 0
    print("\nno regressions beyond %.0f%% tolerance" % (args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
