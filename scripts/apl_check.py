"""Ad-hoc APL shape check: app execution times vs processors."""

from repro.apps import create_application
from repro.hardware import build_platform
from repro.tools import create_tool


def run(app_name, tool_name, platform_name, processors):
    app = create_application(app_name)
    platform = build_platform(platform_name, processors=max(processors, 1))
    tool = create_tool(tool_name, platform)
    result = app.run(tool, processors=processors, check=False)
    return result.elapsed_seconds


def main():
    for platform_name, plist in [("alpha-fddi", [1, 2, 4, 8]), ("sun-ethernet", [1, 2, 4, 8]),
                                 ("sp1-switch", [1, 2, 4, 8]), ("sun-atm-wan", [1, 2, 4])]:
        print("\n== %s ==" % platform_name)
        for app_name in ["fft2d", "jpeg", "montecarlo", "psrs"]:
            for tool_name in ["p4", "pvm", "express"]:
                times = [run(app_name, tool_name, platform_name, p) for p in plist]
                print(
                    "%-10s %-8s %s"
                    % (app_name, tool_name, "  ".join("%8.3f" % t for t in times))
                )


if __name__ == "__main__":
    main()
