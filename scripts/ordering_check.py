"""Ad-hoc check of the paper's qualitative collective orderings."""

from repro.hardware import build_platform
from repro.tools import create_tool


def broadcast_time(tool_name, platform_name, nbytes, processors=4):
    platform = build_platform(platform_name, processors=processors)
    tool = create_tool(tool_name, platform)

    def program(comm):
        payload = b"x" if comm.rank == 0 else None
        yield from comm.broadcast(0, payload=payload, nbytes=nbytes)
        return comm.env.now

    results = tool.run_spmd(program)
    return max(results) * 1e3


def ring_time(tool_name, platform_name, nbytes, processors=4):
    platform = build_platform(platform_name, processors=processors)
    tool = create_tool(tool_name, platform)

    def program(comm):
        yield from comm.ring_shift(nbytes=nbytes)
        return comm.env.now

    results = tool.run_spmd(program)
    return max(results) * 1e3


def global_sum_time(tool_name, platform_name, nints, processors=4):
    import numpy as np

    platform = build_platform(platform_name, processors=processors)
    tool = create_tool(tool_name, platform)

    def program(comm):
        vector = np.ones(nints, dtype=np.int32)
        yield from comm.global_sum(vector)
        return comm.env.now

    results = tool.run_spmd(program)
    return max(results) * 1e3


def main():
    for platform_name in ["sun-ethernet", "sun-atm-wan"]:
        print("\n== %s ==" % platform_name)
        for nbytes in [1024, 16384, 65536]:
            times = {t: broadcast_time(t, platform_name, nbytes) for t in ["p4", "pvm", "express"]}
            print(
                "bcast %5dB: p4=%8.2f pvm=%8.2f express=%8.2f ms"
                % (nbytes, times["p4"], times["pvm"], times["express"])
            )
        for nbytes in [1024, 16384, 65536]:
            times = {t: ring_time(t, platform_name, nbytes) for t in ["p4", "pvm", "express"]}
            print(
                "ring  %5dB: p4=%8.2f pvm=%8.2f express=%8.2f ms"
                % (nbytes, times["p4"], times["pvm"], times["express"])
            )
        for nints in [10000, 100000]:
            times = {t: global_sum_time(t, platform_name, nints) for t in ["p4", "express"]}
            print(
                "gsum %6d ints: p4=%8.2f express=%8.2f ms"
                % (nints, times["p4"], times["express"])
            )


if __name__ == "__main__":
    main()
