#!/usr/bin/env python
"""Run the invariant-enforcing static checks (CI entry point).

Thin wrapper over ``repro check`` so the suite is runnable without
installing the package::

    python scripts/run_checks.py                 # checks src/
    python scripts/run_checks.py --rule locking src tests
    python scripts/run_checks.py --format json

Exit status: 0 clean, 1 findings, 2 usage error — CI treats anything
nonzero as a hard failure.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["check", *sys.argv[1:]]))
