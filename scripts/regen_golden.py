"""Regenerate the golden-report regression fixtures.

``tests/core/test_golden_report.py`` pins the full JSON export of one
small canonical spec — samples, scores and multi-seed statistics — so
any unintended drift in simulation, scoring or serialization fails a
test instead of silently changing published numbers.

When a change *intentionally* moves those numbers (a calibration fix,
a scoring change, a new export field), regenerate the fixture and
commit it together with the change that explains it::

    PYTHONPATH=src python scripts/regen_golden.py

Telemetry (wall-clock times) is stripped: the golden file must be
bit-for-bit reproducible on any machine.
"""

import json
import os

from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec

DATA_DIR = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "tests", "data")
)
SPEC_PATH = os.path.join(DATA_DIR, "golden_spec.json")
REPORT_PATH = os.path.join(DATA_DIR, "golden_report.json")


def main() -> None:
    with open(SPEC_PATH) as handle:
        spec = EvaluationSpec.from_json(handle.read())
    result = Scheduler().run(spec)
    data = result.to_dict()
    data.pop("telemetry", None)  # wall times are machine-dependent
    with open(REPORT_PATH, "w") as handle:
        handle.write(json.dumps(data, indent=2, sort_keys=True))
        handle.write("\n")
    print("wrote %s (%d samples, %d score cells)"
          % (REPORT_PATH, len(data["samples"]), len(data["scores"])))


if __name__ == "__main__":
    main()
