"""Failure injection: crashes, lost peers, and stuck programs.

Errors must never pass silently — a rank that dies takes the run down
with its original exception; a program waiting on a peer that never
sends is detectable as an unfinished process, not a hang.
"""

import numpy as np
import pytest

from repro.apps import MonteCarloIntegration
from repro.errors import ApplicationError
from repro.hardware import build_platform
from repro.sim import Environment, Interrupt
from repro.tools import create_tool


def make_tool(tool_name="p4", processors=4, platform_name="sun-ethernet"):
    platform = build_platform(platform_name, processors=processors)
    return create_tool(tool_name, platform)


class TestRankCrash:
    @pytest.mark.parametrize("tool_name", ["p4", "pvm", "express"])
    def test_crashing_rank_propagates_original_exception(self, tool_name):
        tool = make_tool(tool_name)

        def program(comm):
            yield from comm.barrier()
            if comm.rank == 2:
                raise RuntimeError("rank 2 segfaulted")
            yield from comm.barrier()

        with pytest.raises(RuntimeError, match="rank 2 segfaulted"):
            tool.run_spmd(program, nprocs=4)

    def test_crash_before_any_communication(self):
        tool = make_tool()

        def program(comm):
            if comm.rank == 0:
                raise ValueError("died on startup")
            yield from comm.recv(src=0)

        with pytest.raises(ValueError, match="died on startup"):
            tool.run_spmd(program, nprocs=2)


class TestLostPeer:
    def test_receiver_with_no_sender_never_finishes(self):
        """A recv from a rank that never sends leaves the process
        alive when the event queue drains — diagnosable, not a hang."""
        tool = make_tool()
        comm = tool.communicator(0, size=2)

        def waiter(comm):
            yield from comm.recv(src=1)

        process = tool.env.process(waiter(comm))
        tool.env.run()  # drains without error
        assert process.is_alive  # still blocked: the message never came

    def test_interrupting_a_stuck_receiver(self):
        """A supervisor can interrupt a blocked receive (the pattern a
        timeout layer would use)."""
        tool = make_tool()
        comm = tool.communicator(0, size=2)
        outcome = {}

        def waiter(comm):
            try:
                yield from comm.recv(src=1)
                outcome["result"] = "received"
            except Interrupt as interrupt:
                outcome["result"] = "timed out: %s" % interrupt.cause

        def supervisor(env, victim):
            yield env.timeout(5.0)
            victim.interrupt(cause="deadline")

        victim = tool.env.process(waiter(comm))
        tool.env.process(supervisor(tool.env, victim))
        tool.env.run()
        assert outcome["result"] == "timed out: deadline"


class TestVerificationCatchesBadResults:
    def test_montecarlo_sample_count_mismatch(self):
        app = MonteCarloIntegration(samples=10_000)
        platform = build_platform("alpha-fddi", processors=2)
        workload = app.make_workload(platform.rng)
        bogus = [{"value": 3.14, "stderr": 0.001, "samples": 9_999}, None]
        with pytest.raises(ApplicationError, match="sample count"):
            app.verify(workload, bogus)

    def test_montecarlo_wildly_wrong_estimate(self):
        app = MonteCarloIntegration(samples=10_000)
        platform = build_platform("alpha-fddi", processors=2)
        workload = app.make_workload(platform.rng)
        bogus = [{"value": 99.0, "stderr": 0.001, "samples": 10_000}, None]
        with pytest.raises(ApplicationError, match="misses exact"):
            app.verify(workload, bogus)


class TestKernelFailureSemantics:
    def test_failed_event_without_handler_raises_at_run(self):
        env = Environment()
        event = env.event()
        event.fail(IOError("device lost"))
        with pytest.raises(IOError):
            env.run()

    def test_failure_handled_by_one_of_two_waiters_still_raises_for_other(self):
        env = Environment()
        shared = env.event()
        caught = []

        def handler(env):
            try:
                yield shared
            except IOError:
                caught.append("handled")

        def bystander(env):
            yield shared

        env.process(handler(env))
        bystander_proc = env.process(bystander(env))

        def failer(env):
            yield env.timeout(1.0)
            shared.fail(IOError("boom"))

        env.process(failer(env))
        with pytest.raises(IOError):
            env.run()
        assert caught == ["handled"]
        assert bystander_proc.triggered and not bystander_proc.ok
