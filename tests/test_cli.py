"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sun-ethernet" in out
        assert "p4" in out
        assert "table3" in out
        assert "balanced" in out


class TestUsability:
    def test_prints_matrix(self, capsys):
        assert main(["usability"]) == 0
        out = capsys.readouterr().out
        assert "Portability" in out
        assert "WS" in out


class TestExperiment:
    def test_unknown_id_rejected(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_runs_static_experiments(self, capsys):
        assert main(["experiment", "table1", "table5"]) == 0
        out = capsys.readouterr().out
        assert "2/2 artifacts" in out


class TestEvaluate:
    def test_unknown_profile_rejected(self, capsys):
        assert main(["evaluate", "--profile", "nonsense"]) == 2

    def test_unknown_platform_rejected(self, capsys):
        assert main(["evaluate", "--platform", "cray-t3d"]) == 2
        assert "error" in capsys.readouterr().out

    def test_unknown_tools_rejected_up_front(self, capsys):
        """Typos fail fast and print the live registry, like --profile."""
        assert main(["evaluate", "--tools", "p4", "linda"]) == 2
        out = capsys.readouterr().out
        assert "'linda'" in out
        assert "pvm" in out

    def test_platform_and_platforms_conflict(self, capsys):
        assert main(["evaluate", "--platform", "sun-ethernet",
                     "--platforms", "alpha-fddi"]) == 2
        assert "not both" in capsys.readouterr().out

    def test_seed_and_seeds_conflict(self, capsys):
        """--seed next to --seeds used to be silently ignored; now the
        ambiguity is an explicit error."""
        assert main(["evaluate", "--seed", "7",
                     "--seeds", "0", "1", "2"]) == 2
        out = capsys.readouterr().out
        assert "either --seed or --seeds" in out

    def test_seed_alone_still_works_as_the_single_replication(self, capsys):
        """--seed keeps its meaning; only the combination is an error
        (the spec validation error proves --seed was accepted and the
        run proceeded to platform validation)."""
        assert main(["evaluate", "--platform", "bogus", "--seed", "7"]) == 2
        assert "unknown platform" in capsys.readouterr().out

    def test_negative_noise_rejected(self, capsys):
        assert main(["evaluate", "--noise", "-1"]) == 2
        assert "noise" in capsys.readouterr().out

    @pytest.mark.slow
    def test_sweep_prints_comparison_and_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "sweep.json"
        assert main(["evaluate", "--platforms", "sun-ethernet", "sun-atm-lan",
                     "--profile", "balanced", "end-user",
                     "--processors", "2", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sun-atm-lan/end-user" in out
        assert "simulations" in out
        data = json.loads(path.read_text())
        assert set(data) == {"spec", "samples", "scores", "statistics", "telemetry"}
        assert data["telemetry"]["summary"]["simulated"] == len(data["samples"])

    @pytest.mark.slow
    def test_full_evaluation_runs(self, capsys):
        assert main(["evaluate", "--platform", "sun-atm-lan", "--processors", "2"]) == 0
        out = capsys.readouterr().out
        assert "Best tool" in out

    def test_jobs_zero_fails_early_with_clear_message(self, capsys):
        assert main(["evaluate", "--jobs", "0"]) == 2
        out = capsys.readouterr().out
        assert "jobs must be >= 1" in out
        assert "auto" in out

    def test_jobs_negative_fails_early(self, capsys):
        assert main(["evaluate", "--jobs=-3"]) == 2
        assert "jobs must be >= 1" in capsys.readouterr().out

    def test_jobs_garbage_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["evaluate", "--jobs", "many"])
        assert excinfo.value.code == 2
        assert "'auto'" in capsys.readouterr().err

    def test_jobs_auto_is_accepted(self, capsys):
        """'auto' parses (the run proceeds to platform validation)."""
        assert main(["evaluate", "--jobs", "auto", "--platform", "bogus"]) == 2
        assert "unknown platform" in capsys.readouterr().out

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["evaluate", "--backend", "quantum"])

    @pytest.mark.slow
    def test_progress_streams_to_stderr_and_keeps_stdout_clean(self, capsys):
        assert main(["evaluate", "--tools", "p4", "--processors", "2",
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "simulated" in captured.err
        assert "done" in captured.err
        assert "Best tool" in captured.out
        assert "simulated" not in captured.out

    @pytest.mark.slow
    def test_async_backend_end_to_end(self, capsys):
        assert main(["evaluate", "--tools", "p4", "--processors", "2",
                     "--backend", "async", "--jobs", "2"]) == 0
        assert "Best tool" in capsys.readouterr().out

    def test_shards_without_cache_dir_is_harmless(self, capsys):
        """--shards only shapes --cache-dir; alone it must not break
        argument validation."""
        assert main(["evaluate", "--platform", "bogus", "--shards", "4"]) == 2

    @pytest.mark.slow
    def test_cache_dir_resume_simulates_nothing(self, capsys, tmp_path):
        """The acceptance path end to end: a second launch with the
        same --cache-dir re-simulates zero jobs."""
        cache_dir = str(tmp_path / "cache")
        argv = ["evaluate", "--tools", "p4", "--processors", "2",
                "--profile", "balanced", "end-user", "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "%s: 0 simulated" % cache_dir not in first
        assert "served from disk" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 simulations scored" in second
        assert "%s: 0 simulated" % cache_dir in second

    @pytest.mark.slow
    def test_seeds_and_stats_report_confidence_intervals(self, capsys, tmp_path):
        """--seeds replicates the sweep; --stats aggregates it to
        mean ±95% CI per cell."""
        assert main(["evaluate", "--tools", "p4", "--processors", "2",
                     "--seeds", "0", "1", "2", "--stats",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "mean ±95% CI over 3 seeds" in out
        assert "±" in out
        assert "sun-ethernet/balanced" in out

    @pytest.mark.slow
    def test_noise_flag_runs_a_stochastic_sweep(self, capsys, tmp_path):
        """Bare --noise (amplitude 1.0) drives the seeded network
        models end to end; the noisy sweep caches under its own
        entries, so a re-run is pure cache hits."""
        cache_dir = str(tmp_path / "cache")
        argv = ["evaluate", "--tools", "p4", "--processors", "2",
                "--seeds", "0", "1", "--noise", "--stats",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "mean ±95% CI over 2 seeds" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "%s: 0 simulated" % cache_dir in second


class TestNoCommand:
    def test_help_printed(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out.lower()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
