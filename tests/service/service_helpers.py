"""Deterministic executors and an in-process server harness.

Two executor stand-ins make concurrency deterministic:

* :class:`GateExecutor` — submits nothing until released.  Runs stay
  in the ``running`` state for as long as the test wants, which is how
  the per-user admission tests freeze the world.
* :class:`StepExecutor` — one semaphore permit per job, executing the
  *real* simulation for each released job.  Tests release exactly N
  permits, see exactly N ``job_finished`` events, and know the cache
  holds exactly N values (the scheduler stores before it emits).

:class:`ServiceHarness` boots the full stack (store + registry +
asyncio HTTP server on a background loop thread) against a temporary
database, exactly like ``repro serve`` but in-process; ``graceful=False``
teardown leaves the store rows as an unclean kill would, for the
restart/resume tests.
"""

import asyncio
import threading

from repro.core.executors import Executor, JobOutcome, execute_job_instrumented
from repro.core.spec import EvaluationSpec
from repro.service.client import ServiceClient
from repro.service.registry import JobRegistry
from repro.service.server import ServiceServer
from repro.service.store import RunStore

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    """A seconds-scale spec: one tool -> 5 jobs, two tools -> 10."""
    kwargs = dict(_TINY)
    kwargs.setdefault("tools", ("p4",))
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


class GateExecutor(Executor):
    """Submits nothing until released — freezes runs in flight."""

    name = "gate"

    def __init__(self):
        self.release = threading.Event()

    def submit(self, jobs, retries=1):
        for job in jobs:
            self.release.wait()
            yield JobOutcome(1.0, 0.001, 1)


class StepExecutor(Executor):
    """Executes one (real) job per released permit.

    After ``steps.release(n)`` exactly ``n`` jobs finish and land in
    the cache; the next job blocks with its ``job_started`` already
    emitted.  Shared across a registry's schedulers via the factory.
    """

    name = "step"

    def __init__(self):
        self.steps = threading.Semaphore(0)

    def submit(self, jobs, retries=1):
        for job in jobs:
            self.steps.acquire()
            yield execute_job_instrumented(job, retries)


class ServiceHarness(object):
    """Store + registry + HTTP server on a background event loop."""

    def __init__(self, db_path, scheduler_factory=None, per_user_limit=2):
        self.store = RunStore(str(db_path))
        self.recovered = self.store.recover()
        self.registry = JobRegistry(
            self.store, scheduler_factory, per_user_limit=per_user_limit
        )
        self.server = ServiceServer(self.registry)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="service-harness-loop", daemon=True
        )
        self._thread.start()
        assert started.wait(10), "server failed to start"
        self.port = self.server.port
        self._stopped = False

    def client(self, user=None):
        return ServiceClient(port=self.port, user=user, timeout=30.0)

    def stop(self, graceful=True):
        """``graceful=False`` skips the registry shutdown: store rows
        stay exactly as an unclean process death would leave them."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.server.close(), self._loop)
        future.result(10)
        if graceful:
            self.registry.shutdown(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)
        self._loop.close()
        self.store.close()
