"""JobRegistry: admission, FIFO queues, cancel, shutdown, persistence.

Concurrency is made deterministic with the gate/step executors from
conftest: a gated run stays ``running`` until the test releases it, a
stepped run finishes exactly as many jobs as permits released.
"""

import threading
import time

import pytest

from repro.core.cache import ResultCache
from repro.core.progress import JobFinished, JobStarted, RunCompleted
from repro.core.scheduler import Scheduler
from repro.errors import EvaluationError, ServiceError
from repro.service.registry import DEFAULT_USER, JobRegistry, normalize_user
from repro.service.store import RunStore

from service_helpers import GateExecutor, StepExecutor, tiny_spec


@pytest.fixture
def store(tmp_path):
    with RunStore(str(tmp_path / "registry.db")) as s:
        yield s


def wait_terminal(registry, run_id, timeout=30.0):
    """Block until the run's stored state is terminal; the record."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = registry.status(run_id)
        if record["state"] in ("completed", "cancelled", "failed"):
            return record
        time.sleep(0.01)
    raise AssertionError("run %s never reached a terminal state" % run_id)


class TestSubmitAndComplete:
    def test_run_completes_with_direct_run_scores(self, store):
        spec = tiny_spec()
        with JobRegistry(store) as registry:
            record = registry.submit("alice", spec)
            run_id = record["run_id"]
            assert record["state"] == "running"  # admitted immediately
            final = wait_terminal(registry, run_id)
        assert final["state"] == "completed"
        assert final["simulated"] == len(spec.jobs())
        assert final["cache_hits"] == 0
        direct = Scheduler().run(spec).to_dict()
        assert final["result"]["scores"] == direct["scores"]

    def test_default_factory_shares_cache_across_runs(self, store):
        spec = tiny_spec()
        with JobRegistry(store) as registry:
            first = registry.submit(None, spec)["run_id"]
            wait_terminal(registry, first)
            second = registry.submit(None, spec)["run_id"]
            final = wait_terminal(registry, second)
        assert final["user"] == DEFAULT_USER
        assert final["simulated"] == 0
        assert final["cache_hits"] == len(spec.jobs())

    def test_submit_accepts_dict_and_validates_before_persisting(self, store):
        with JobRegistry(store) as registry:
            run_id = registry.submit("alice", tiny_spec().to_dict())["run_id"]
            wait_terminal(registry, run_id)
            with pytest.raises(EvaluationError):
                registry.submit("alice", {"tools": ["no-such-tool"]})
        # the malformed submission never reached the store
        assert len(store.list_runs()) == 1

    def test_user_identity_is_normalized(self, store):
        assert normalize_user(None) == DEFAULT_USER
        assert normalize_user("  alice  ") == "alice"
        for blank in ("", "   ", "\t\n"):
            with pytest.raises(ServiceError, match="blank"):
                normalize_user(blank)
        with JobRegistry(store) as registry:
            record = registry.submit("  alice ", tiny_spec())
            assert record["user"] == "alice"
            wait_terminal(registry, record["run_id"])
            with pytest.raises(ServiceError, match="blank"):
                registry.submit("   ", tiny_spec())
            # the trailing-space listing filter finds the same runs
            assert registry.list_runs(" alice ") == registry.list_runs("alice")
        assert len(store.list_runs()) == 1  # the blank one never landed

    def test_unknown_run_everywhere(self, store):
        with JobRegistry(store) as registry:
            with pytest.raises(ServiceError, match="unknown run"):
                registry.status("feedface0000")
            with pytest.raises(ServiceError, match="unknown run"):
                registry.cancel("feedface0000")
            with pytest.raises(ServiceError, match="unknown run"):
                list(registry.events("feedface0000"))


class TestAdmissionControl:
    def test_per_user_limit_queues_fifo_and_users_are_independent(self, store):
        gate = GateExecutor()
        cache = ResultCache()
        factory = lambda: Scheduler(executor=gate, cache=cache)  # noqa: E731
        registry = JobRegistry(store, factory, per_user_limit=1)
        try:
            a = registry.submit("alice", tiny_spec())
            b = registry.submit("alice", tiny_spec(tools=("express",)))
            c = registry.submit("alice", tiny_spec(tools=("pvm",)))
            d = registry.submit("bob", tiny_spec())
            # alice holds one slot; bob's limit is his own
            assert a["state"] == "running"
            assert b["state"] == "queued"
            assert c["state"] == "queued"
            assert d["state"] == "running"
            # a queued run reports a live progress snapshot only once running
            assert "progress" in registry.status(a["run_id"])
            assert "progress" not in registry.status(b["run_id"])
            gate.release.set()
            records = {
                name: wait_terminal(registry, rec["run_id"])
                for name, rec in (("a", a), ("b", b), ("c", c), ("d", d))
            }
        finally:
            gate.release.set()
            registry.shutdown(timeout=10)
        assert all(r["state"] == "completed" for r in records.values())
        # FIFO: alice's queue drained in submission order
        assert records["a"]["started_at"] <= records["b"]["started_at"]
        assert records["b"]["started_at"] <= records["c"]["started_at"]

    def test_cancel_queued_run_never_starts(self, store):
        gate = GateExecutor()
        factory = lambda: Scheduler(executor=gate, cache=ResultCache())  # noqa: E731
        registry = JobRegistry(store, factory, per_user_limit=1)
        try:
            a = registry.submit("alice", tiny_spec())
            b = registry.submit("alice", tiny_spec(tools=("express",)))
            cancelled = registry.cancel(b["run_id"])
            assert cancelled["state"] == "cancelled"
            assert cancelled["error"] == "cancelled while queued"
            # its event stream is a single synthesized terminal event
            events = list(registry.events(b["run_id"]))
            assert len(events) == 1
            assert isinstance(events[0], RunCompleted)
            assert events[0].cancelled
            gate.release.set()
            assert wait_terminal(registry, a["run_id"])["state"] == "completed"
        finally:
            gate.release.set()
            registry.shutdown(timeout=10)
        assert registry.status(b["run_id"])["state"] == "cancelled"
        assert registry.status(b["run_id"])["started_at"] is None

    def test_cancel_terminal_run_is_a_noop(self, store):
        with JobRegistry(store) as registry:
            run_id = registry.submit("alice", tiny_spec())["run_id"]
            wait_terminal(registry, run_id)
            record = registry.cancel(run_id)
        assert record["state"] == "completed"


class TestCancelRunning:
    def test_cancel_persists_partial_results(self, store):
        step = StepExecutor()
        factory = lambda: Scheduler(executor=step, cache=ResultCache())  # noqa: E731
        registry = JobRegistry(store, factory)
        try:
            spec = tiny_spec()  # 5 jobs
            run_id = registry.submit("alice", spec)["run_id"]
            step.steps.release(2)
            # wait until the third job is in flight, then cancel it
            for event in registry.events(run_id):
                if isinstance(event, JobStarted) and event.index == 2:
                    break
            registry.cancel(run_id)
            step.steps.release(1)  # let the in-flight job finish
            final = wait_terminal(registry, run_id)
        finally:
            step.steps.release(100)
            registry.shutdown(timeout=10)
        assert final["state"] == "cancelled"
        assert final["simulated"] == 3
        assert final["result"]["partial"] is True
        assert len(final["result"]["samples"]) == 3
        sample = final["result"]["samples"][0]
        assert sample["seconds"] > 0.0
        assert sample["tool"] in spec.tools

    def test_cancelled_events_end_with_cancelled_terminal(self, store):
        step = StepExecutor()
        factory = lambda: Scheduler(executor=step, cache=ResultCache())  # noqa: E731
        registry = JobRegistry(store, factory)
        try:
            run_id = registry.submit("alice", tiny_spec())["run_id"]
            step.steps.release(1)
            for event in registry.events(run_id):
                if isinstance(event, JobFinished):
                    break
            registry.cancel(run_id)
            step.steps.release(1)
            events = list(registry.events(run_id))  # full replay
        finally:
            step.steps.release(100)
            registry.shutdown(timeout=10)
        assert isinstance(events[-1], RunCompleted)
        assert events[-1].cancelled


class TestShutdownAndRestart:
    def test_shutdown_cancels_running_and_queued(self, store):
        gate = GateExecutor()
        factory = lambda: Scheduler(executor=gate, cache=ResultCache())  # noqa: E731
        registry = JobRegistry(store, factory, per_user_limit=1)
        a = registry.submit("alice", tiny_spec())
        b = registry.submit("alice", tiny_spec(tools=("express",)))
        stopper = threading.Thread(target=registry.shutdown, kwargs={"timeout": 30})
        stopper.start()
        time.sleep(0.05)  # let shutdown cancel the handles
        gate.release.set()  # then let the in-flight job drain
        stopper.join(30)
        assert not stopper.is_alive()
        assert store.get(a["run_id"])["state"] == "cancelled"
        assert store.get(b["run_id"])["state"] == "cancelled"
        assert store.get(b["run_id"])["error"] == "cancelled while queued"
        with pytest.raises(ServiceError, match="shutting down"):
            registry.submit("alice", tiny_spec())

    def test_restarted_registry_synthesizes_history_events(self, store):
        spec = tiny_spec()
        with JobRegistry(store) as registry:
            run_id = registry.submit("alice", spec)["run_id"]
            wait_terminal(registry, run_id)
        # a fresh registry over the same store: the run is not resident
        with JobRegistry(store) as second:
            events = list(second.events(run_id))
            record = second.status(run_id)
        assert len(events) == 1
        terminal = events[0]
        assert isinstance(terminal, RunCompleted)
        assert terminal.total == len(spec.jobs())
        assert terminal.simulated == record["simulated"]
        assert not terminal.cancelled

    def test_per_user_limit_must_be_positive(self, store):
        with pytest.raises(ServiceError, match=">= 1"):
            JobRegistry(store, per_user_limit=0)
