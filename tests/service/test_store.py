"""RunStore: the state machine, persistence across reopen, recovery.

The store is the service's memory — these tests pin down that illegal
state moves are refused (not silently recorded), that a reopened
database still holds every run, and that :meth:`RunStore.recover`
reconciles the rows an unclean shutdown leaves behind.
"""

import threading

import pytest

from repro.errors import ServiceError
from repro.service.store import (
    RUN_STATES,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    RunStore,
    spec_hash,
)

SPEC = {"tools": ["p4"], "tpl_sizes": [1024]}


@pytest.fixture
def store(tmp_path):
    with RunStore(str(tmp_path / "runs.db")) as s:
        yield s


class TestSchemaAndCreate:
    def test_wal_mode_on_file_databases(self, tmp_path):
        with RunStore(str(tmp_path / "wal.db")) as store:
            mode = store._db.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_create_returns_queued_record(self, store):
        record = store.create("abc123", "alice", SPEC)
        assert record["run_id"] == "abc123"
        assert record["user"] == "alice"
        assert record["state"] == "queued"
        assert record["spec"] == SPEC
        assert record["spec_hash"] == spec_hash(SPEC)
        assert record["result"] is None
        assert record["started_at"] is None

    def test_duplicate_run_id_refused(self, store):
        store.create("abc123", "alice", SPEC)
        with pytest.raises(ServiceError, match="already exists"):
            store.create("abc123", "bob", SPEC)

    def test_unknown_run_raises(self, store):
        with pytest.raises(ServiceError, match="unknown run"):
            store.get("nope")
        with pytest.raises(ServiceError, match="unknown run"):
            store.transition("nope", "running")

    def test_blank_user_never_reaches_the_database(self, store):
        for blank in ("", "   ", None):
            with pytest.raises(ServiceError, match="blank"):
                store.create("abc123", blank, SPEC)
        assert store.list_runs() == []

    def test_spec_hash_is_content_addressed(self):
        assert spec_hash({"a": 1, "b": 2}) == spec_hash({"b": 2, "a": 1})
        assert spec_hash({"a": 1}) != spec_hash({"a": 2})


class TestStateMachine:
    def test_happy_path_stamps_timestamps_and_counters(self, store):
        store.create("r1", "alice", SPEC)
        running = store.transition("r1", "running")
        assert running["started_at"] is not None
        done = store.transition(
            "r1", "completed", simulated=3, cache_hits=2,
            wall_seconds=1.5, result={"scores": {"p4": 1.0}},
        )
        assert done["state"] == "completed"
        assert done["finished_at"] is not None
        assert done["simulated"] == 3
        assert done["cache_hits"] == 2
        assert done["wall_seconds"] == 1.5
        assert done["result"] == {"scores": {"p4": 1.0}}

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_accept_no_successor(self, store, terminal):
        store.create("r1", "alice", SPEC)
        if terminal == "completed":  # only reachable via running
            store.transition("r1", "running")
        store.transition("r1", terminal)
        for successor in RUN_STATES:
            with pytest.raises(ServiceError, match="invalid transition"):
                store.transition("r1", successor)

    def test_unknown_state_name_refused(self, store):
        store.create("r1", "alice", SPEC)
        with pytest.raises(ServiceError, match="unknown run state"):
            store.transition("r1", "paused")

    def test_illegal_move_changes_nothing(self, store):
        store.create("r1", "alice", SPEC)
        with pytest.raises(ServiceError):
            store.transition("r1", "completed")  # queued -> completed
        assert store.get("r1")["state"] == "queued"

    def test_transition_table_matches_declared_states(self):
        assert set(VALID_TRANSITIONS) == set(RUN_STATES)
        for state in TERMINAL_STATES:
            assert not VALID_TRANSITIONS[state]

    def test_failed_records_error_message(self, store):
        store.create("r1", "alice", SPEC)
        store.transition("r1", "running")
        failed = store.transition("r1", "failed", error="ValueError: boom")
        assert failed["error"] == "ValueError: boom"


class TestListingAndPersistence:
    def test_list_newest_first_and_user_filter(self, store):
        store.create("r1", "alice", SPEC)
        store.create("r2", "bob", SPEC)
        store.create("r3", "alice", SPEC)
        everyone = store.list_runs()
        assert [r["run_id"] for r in everyone] == ["r3", "r2", "r1"]
        assert all("result" not in r for r in everyone)
        assert [r["run_id"] for r in store.list_runs("alice")] == ["r3", "r1"]
        assert store.list_runs("nobody") == []

    def test_reopened_database_keeps_history(self, tmp_path):
        path = str(tmp_path / "persist.db")
        with RunStore(path) as store:
            store.create("r1", "alice", SPEC)
            store.transition("r1", "running")
            store.transition(
                "r1", "completed", simulated=5, cache_hits=0,
                result={"scores": {}},
            )
        with RunStore(path) as reopened:
            record = reopened.get("r1")
            assert record["state"] == "completed"
            assert record["simulated"] == 5
            assert record["spec"] == SPEC

    def test_concurrent_creates_all_land(self, store):
        errors = []

        def create(i):
            try:
                store.create("run-%03d" % i, "alice", SPEC)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=create, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(store.list_runs()) == 16


class TestRecover:
    def test_recover_reconciles_orphans(self, tmp_path):
        path = str(tmp_path / "crash.db")
        with RunStore(path) as store:
            store.create("ran", "alice", SPEC)
            store.transition("ran", "running")
            store.create("waiting", "alice", SPEC)
            store.create("done", "alice", SPEC)
            store.transition("done", "running")
            store.transition("done", "completed", simulated=5, cache_hits=0)
            # no clean shutdown: rows left as the process died
        with RunStore(path) as reopened:
            assert reopened.recover() == 2
            assert reopened.get("ran")["state"] == "failed"
            assert "unclean" in reopened.get("ran")["error"]
            assert reopened.get("waiting")["state"] == "cancelled"
            assert reopened.get("done")["state"] == "completed"
            # second call is a no-op
            assert reopened.recover() == 0
