"""End-to-end over HTTP: the full evaluation-as-a-service journey.

Each test boots the real stack — SQLite store, registry, asyncio HTTP
server on a background loop — and talks to it only through
:class:`~repro.service.client.ServiceClient`, exactly like external
tooling would.  Covered here (the PR's acceptance criteria):

* submit -> SSE replay + live -> ``run_completed`` -> the stored
  record carries the same scores as a direct ``Scheduler.run``;
* per-user limits queue a third run while two stream, users are
  independent;
* cancel mid-run yields ``cancelled`` with partial results persisted;
* an uncleanly killed server, restarted over the same database and
  cache directory, lists history and resubmits simulate only the jobs
  that never finished (cache-hit counters prove it).
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.cache import ResultCache
from repro.core.progress import CacheHit, JobFinished, JobStarted, RunCompleted
from repro.core.scheduler import Scheduler
from repro.errors import ServiceError
from service_helpers import GateExecutor, StepExecutor, tiny_spec


def raw_request(port, method, path, body=None, headers=None):
    """Bypass ServiceClient for malformed-request tests; (status, dict)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = response.read().decode("utf-8")
        try:
            data = json.loads(payload)
        except ValueError:
            data = {"raw": payload}
        return response.status, data
    finally:
        connection.close()


class TestHealthAndErrors:
    def test_health_reports_version(self, harness_factory):
        harness = harness_factory()
        health = harness.client().health()
        assert health["status"] == "ok"
        assert isinstance(health["version"], str)

    def test_unknown_run_is_404_everywhere(self, harness_factory):
        harness = harness_factory()
        client = harness.client()
        for call in (
            lambda: client.run("feedface0000"),
            lambda: client.cancel("feedface0000"),
            lambda: list(client.events("feedface0000")),
        ):
            with pytest.raises(ServiceError, match="404"):
                call()

    def test_bad_requests_are_client_errors(self, harness_factory):
        harness = harness_factory()
        port = harness.port
        status, _ = raw_request(port, "GET", "/api/nope")
        assert status == 404
        status, _ = raw_request(port, "DELETE", "/api/runs")
        assert status == 405
        status, data = raw_request(
            port, "POST", "/api/runs", body=b"not json",
            headers={"Content-Length": "8"},
        )
        assert status == 400
        assert "JSON" in data["error"]
        status, data = raw_request(
            port, "POST", "/api/runs", body=b'{"nope": 1}',
            headers={"Content-Length": "11"},
        )
        assert status == 400
        assert "spec" in data["error"]

    def test_invalid_spec_is_rejected_with_the_reason(self, harness_factory):
        harness = harness_factory()
        with pytest.raises(ServiceError, match="invalid spec") as excinfo:
            harness.client().submit({"tools": ["no-such-tool"]})
        assert "400" in str(excinfo.value)
        assert harness.client().runs() == []  # nothing persisted

    def test_blank_x_user_is_rejected_not_anonymous(self, harness_factory):
        """A blank/whitespace X-User used to fall through ``... or
        None`` and get billed to the shared "anonymous" bucket; it is
        a misconfigured client and must be a 400 on every route."""
        harness = harness_factory()
        port = harness.port
        body = json.dumps({"spec": tiny_spec().to_dict()}).encode("utf-8")
        for method, path, payload in (
            ("POST", "/api/runs", body),
            ("GET", "/api/runs", None),
        ):
            headers = {"X-User": "   "}
            if payload is not None:
                headers["Content-Length"] = str(len(payload))
            status, data = raw_request(port, method, path, payload, headers)
            assert status == 400, (method, path)
            assert "X-User" in data["error"]
        assert harness.client().runs() == []  # nothing persisted

    def test_padded_x_user_is_normalized(self, harness_factory):
        harness = harness_factory()
        body = json.dumps({"spec": tiny_spec().to_dict()}).encode("utf-8")
        status, data = raw_request(
            harness.port, "POST", "/api/runs", body,
            {"X-User": "  alice  ", "Content-Length": str(len(body))},
        )
        assert status == 202
        assert data["user"] == "alice"
        record = harness.client().wait(data["run_id"])
        assert record["user"] == "alice"


class TestJourney:
    def test_submit_stream_and_results_match_direct_run(self, harness_factory):
        harness = harness_factory()
        client = harness.client(user="alice")
        spec = tiny_spec()
        jobs = spec.jobs()

        run_id = client.submit(spec)
        events = list(client.events(run_id))

        started = [e for e in events if isinstance(e, JobStarted)]
        finished = [e for e in events if isinstance(e, JobFinished)]
        assert [e.job for e in started] == jobs
        assert [e.job for e in finished] == jobs
        terminal = events[-1]
        assert isinstance(terminal, RunCompleted)
        assert terminal.total == len(jobs)
        assert terminal.simulated == len(jobs)
        assert not terminal.cancelled

        record = client.run(run_id)
        assert record["state"] == "completed"
        assert record["user"] == "alice"
        assert record["simulated"] == len(jobs)
        assert record["cache_hits"] == 0
        direct = Scheduler().run(spec).to_dict()
        assert record["result"]["scores"] == direct["scores"]

        # a late subscriber replays the identical stream
        replay = list(client.events(run_id))
        assert [type(e) for e in replay] == [type(e) for e in events]
        assert replay[-1] == terminal

        listing = client.runs()
        assert [r["run_id"] for r in listing] == [run_id]
        assert listing[0]["state"] == "completed"
        assert client.runs(user="alice") == listing
        assert client.runs(user="bob") == []

    def test_resubmission_hits_the_shared_cache(self, harness_factory):
        harness = harness_factory()
        client = harness.client()
        spec = tiny_spec()
        first = client.submit(spec)
        client.wait(first)
        second = client.submit(spec)
        final = client.wait(second)
        assert final["state"] == "completed"
        assert final["user"] == "anonymous"  # no X-User header sent
        assert final["simulated"] == 0
        assert final["cache_hits"] == len(spec.jobs())
        hits = [e for e in client.events(second) if isinstance(e, CacheHit)]
        assert len(hits) == len(spec.jobs())
        assert final["spec_hash"] == client.run(first)["spec_hash"]


class TestAdmissionOverHttp:
    def test_per_user_limit_queues_and_users_are_independent(
        self, harness_factory
    ):
        gate = GateExecutor()
        cache = ResultCache()
        harness = harness_factory(
            scheduler_factory=lambda: Scheduler(executor=gate, cache=cache),
            per_user_limit=1,
        )
        alice = harness.client(user="alice")
        bob = harness.client(user="bob")
        try:
            first = alice.submit(tiny_spec())
            second = alice.submit(tiny_spec(tools=("express",)))
            third = bob.submit(tiny_spec())
            assert alice.run(first)["state"] == "running"
            assert alice.run(second)["state"] == "queued"
            assert bob.run(third)["state"] == "running"
            assert {r["run_id"] for r in alice.runs(user="alice")} == {
                first, second
            }
            # cancelling the queued run frees nothing but ends it
            cancelled = alice.cancel(second)
            assert cancelled["state"] == "cancelled"
            gate.release.set()
            assert alice.wait(first)["state"] == "completed"
            assert bob.wait(third)["state"] == "completed"
            assert alice.run(second)["state"] == "cancelled"
        finally:
            gate.release.set()


class TestCancelOverHttp:
    def test_cancel_mid_run_keeps_partial_results(self, harness_factory):
        step = StepExecutor()
        harness = harness_factory(
            scheduler_factory=lambda: Scheduler(
                executor=step, cache=ResultCache()
            ),
        )
        client = harness.client()
        spec = tiny_spec()  # 5 jobs
        try:
            run_id = client.submit(spec)
            step.steps.release(2)
            stream = client.events(run_id)
            for event in stream:
                if isinstance(event, JobStarted) and event.index == 2:
                    break
            client.cancel(run_id)
            step.steps.release(1)  # the in-flight third job finishes
            terminal = None
            for event in stream:
                terminal = event
            stream.close()
            assert isinstance(terminal, RunCompleted)
            assert terminal.cancelled
            assert terminal.simulated == 3
            record = client.run(run_id)
            assert record["state"] == "cancelled"
            assert record["simulated"] == 3
            assert record["result"]["partial"] is True
            samples = record["result"]["samples"]
            assert len(samples) == 3
            assert all(s["seconds"] > 0.0 for s in samples)
        finally:
            step.steps.release(100)


class TestRestartResume:
    def test_killed_server_resumes_only_unfinished_jobs(
        self, harness_factory, tmp_path
    ):
        cache_dir = str(tmp_path / "service-cache")
        spec = tiny_spec(tools=("p4", "express"))  # 10 jobs
        step = StepExecutor()

        first = harness_factory(
            scheduler_factory=lambda: Scheduler(
                executor=step, cache=ResultCache.on_disk(cache_dir)
            ),
            db_name="shared.db",
        )
        client = first.client()
        run_id = client.submit(spec)
        step.steps.release(3)
        finished = 0
        stream = client.events(run_id)
        for event in stream:  # the cache holds a value before its event
            if isinstance(event, JobFinished):
                finished += 1
                if finished == 3:
                    break
        stream.close()
        first.stop(graceful=False)  # unclean kill: row left 'running'

        second = harness_factory(
            scheduler_factory=lambda: Scheduler(
                cache=ResultCache.on_disk(cache_dir)
            ),
            db_name="shared.db",
        )
        assert second.recovered == 1  # the orphan was reconciled
        client2 = second.client()

        history = client2.runs()
        assert [r["run_id"] for r in history] == [run_id]
        orphan = client2.run(run_id)
        assert orphan["state"] == "failed"
        assert "unclean" in orphan["error"]
        # history still streams: one synthesized terminal event
        assert len(list(client2.events(run_id))) == 1

        resubmit = client2.submit(spec)
        final = client2.wait(resubmit)
        assert final["state"] == "completed"
        assert final["cache_hits"] == 3  # the jobs the killed run finished
        assert final["simulated"] == len(spec.jobs()) - 3
        direct = Scheduler().run(spec).to_dict()
        assert final["result"]["scores"] == direct["scores"]


class TestGracefulShutdown:
    def test_shutdown_cancels_running_and_queued_then_refuses(
        self, harness_factory
    ):
        gate = GateExecutor()
        harness = harness_factory(
            scheduler_factory=lambda: Scheduler(
                executor=gate, cache=ResultCache()
            ),
            per_user_limit=1,
        )
        client = harness.client(user="alice")
        running = client.submit(tiny_spec())
        queued = client.submit(tiny_spec(tools=("express",)))
        assert client.run(queued)["state"] == "queued"

        stopper = threading.Thread(
            target=harness.stop, kwargs={"graceful": True}
        )
        stopper.start()
        time.sleep(0.2)  # let shutdown cancel the handles first
        gate.release.set()  # then the in-flight job drains
        stopper.join(30)
        assert not stopper.is_alive()

        # stop() closed the store; reopen the file to inspect history
        from repro.service.store import RunStore

        with RunStore(str(harness.store.path)) as reopened:
            assert reopened.get(running)["state"] == "cancelled"
            assert reopened.get(queued)["state"] == "cancelled"
            assert reopened.get(queued)["error"] == "cancelled while queued"
