"""Fixtures for the service tests (helpers live in service_helpers)."""

import pytest

from service_helpers import ServiceHarness


@pytest.fixture
def harness_factory(tmp_path):
    """Build harnesses against per-test databases; stop them on exit."""
    harnesses = []
    counter = [0]

    def build(scheduler_factory=None, per_user_limit=2, db_name=None):
        if db_name is None:
            counter[0] += 1
            db_name = "service-%d.db" % counter[0]
        harness = ServiceHarness(
            tmp_path / db_name,
            scheduler_factory=scheduler_factory,
            per_user_limit=per_user_limit,
        )
        harnesses.append(harness)
        return harness

    yield build
    for harness in harnesses:
        harness.stop(graceful=True)
