"""Unit tests for Monte Carlo integrators and PSRS algorithm pieces."""

import numpy as np
import pytest

from repro.apps.montecarlo.integrators import (
    INTEGRANDS,
    estimate,
    sample_sum,
    sampling_work,
)
from repro.apps.sorting.psrs import (
    local_sort_work,
    merge_sorted_runs,
    merge_work,
    partition_by_pivots,
    regular_sample,
    select_pivots,
)


class TestIntegrators:
    @pytest.mark.parametrize("name", sorted(INTEGRANDS))
    def test_estimate_converges_to_exact(self, name):
        integrand, interval, exact = INTEGRANDS[name]
        rng = np.random.default_rng(42)
        total, total_sq = sample_sum(integrand, interval, 200_000, rng)
        value, stderr = estimate(total, total_sq, 200_000, interval)
        assert abs(value - exact) < 6 * stderr + 1e-9

    def test_stderr_shrinks_with_samples(self):
        integrand, interval, _ = INTEGRANDS["witch-of-agnesi"]
        rng = np.random.default_rng(1)
        t_small, sq_small = sample_sum(integrand, interval, 1_000, rng)
        _, err_small = estimate(t_small, sq_small, 1_000, interval)
        t_big, sq_big = sample_sum(integrand, interval, 100_000, rng)
        _, err_big = estimate(t_big, sq_big, 100_000, interval)
        assert err_big < err_small

    def test_chunking_does_not_change_totals(self):
        integrand, interval, _ = INTEGRANDS["quarter-circle"]
        a = sample_sum(integrand, interval, 10_000, np.random.default_rng(5), chunk=100)
        b = sample_sum(integrand, interval, 10_000, np.random.default_rng(5), chunk=10_000)
        assert a[0] == pytest.approx(b[0])
        assert a[1] == pytest.approx(b[1])

    def test_estimate_needs_samples(self):
        with pytest.raises(ValueError):
            estimate(0.0, 0.0, 1, (0, 1))

    def test_sampling_work_scales_linearly(self):
        assert sampling_work(2000).flops == pytest.approx(2 * sampling_work(1000).flops)


class TestPsrsPieces:
    def test_regular_sample_spacing(self):
        block = np.arange(100)
        samples = regular_sample(block, 4)
        assert list(samples) == [0, 25, 50, 75]

    def test_regular_sample_empty_block(self):
        assert len(regular_sample(np.array([], dtype=np.int64), 4)) == 0

    def test_select_pivots_count(self):
        samples = np.arange(16)
        pivots = select_pivots(samples, 4)
        assert len(pivots) == 3
        assert list(pivots) == sorted(pivots)

    def test_partition_by_pivots_is_ordered_partition(self):
        block = np.sort(np.random.default_rng(3).integers(0, 1000, size=200))
        pivots = np.array([250, 500, 750])
        segments = partition_by_pivots(block, pivots)
        assert len(segments) == 4
        assert sum(len(segment) for segment in segments) == 200
        assert np.all(segments[0] <= 250)
        assert np.all(segments[1] > 250) and np.all(segments[1] <= 500)
        assert np.all(segments[3] > 750)

    def test_partition_reassembles(self):
        block = np.sort(np.random.default_rng(4).integers(0, 100, size=50))
        segments = partition_by_pivots(block, np.array([30, 60]))
        assert np.array_equal(np.concatenate(segments), block)

    def test_merge_sorted_runs(self):
        runs = [np.array([1, 4, 9]), np.array([2, 3, 10]), np.array([], dtype=np.int64)]
        merged = merge_sorted_runs(runs)
        assert list(merged) == [1, 2, 3, 4, 9, 10]

    def test_merge_empty(self):
        assert len(merge_sorted_runs([])) == 0

    def test_sort_work_superlinear(self):
        assert local_sort_work(2000).int_ops > 2 * local_sort_work(1000).int_ops

    def test_sort_work_trivial_sizes(self):
        assert local_sort_work(0).int_ops == 0
        assert local_sort_work(1).int_ops == 0

    def test_merge_work_grows_with_ways(self):
        assert merge_work(1000, 8).int_ops > merge_work(1000, 2).int_ops
