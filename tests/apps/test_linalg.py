"""Tests for the extension applications (matmul, LU)."""

import numpy as np
import pytest

from repro.apps import LuDecomposition, MatrixMultiply, EXTENSION_APPS, create_application
from repro.errors import ApplicationError
from repro.hardware import build_platform
from repro.tools import PAPER_TOOL_NAMES, create_tool


def run_app(app, tool_name="p4", platform_name="alpha-fddi", processors=4):
    platform = build_platform(platform_name, processors=processors)
    tool = create_tool(tool_name, platform)
    return app.run(tool, processors=processors)


class TestMatrixMultiply:
    @pytest.mark.parametrize("tool_name", PAPER_TOOL_NAMES)
    def test_correct_under_all_tools(self, tool_name):
        result = run_app(MatrixMultiply(n=48), tool_name=tool_name)
        assert result.elapsed_seconds > 0

    def test_single_processor(self):
        result = run_app(MatrixMultiply(n=32), processors=1)
        assert result.elapsed_seconds > 0

    def test_band_values_match_numpy(self):
        app = MatrixMultiply(n=40)
        platform = build_platform("alpha-fddi", processors=4)
        tool = create_tool("p4", platform)
        workload = app.make_workload(platform.rng)
        run = app.run(tool, processors=4, workload=workload)
        expected = workload.full_a(4) @ workload.b_matrix()
        for result in run.rank_outputs:
            top, bottom = result["bounds"]
            assert np.allclose(result["band"], expected[top:bottom])

    def test_speedup_on_fast_network(self):
        # Large enough that O(n^3) compute dominates the O(n^2)
        # broadcast of B over FDDI.
        t1 = run_app(MatrixMultiply(n=256), processors=1).elapsed_seconds
        t4 = run_app(MatrixMultiply(n=256), processors=4).elapsed_seconds
        assert t4 < t1 / 1.5

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MatrixMultiply(n=0)


class TestLuDecomposition:
    @pytest.mark.parametrize("tool_name", PAPER_TOOL_NAMES)
    def test_correct_under_all_tools(self, tool_name):
        result = run_app(LuDecomposition(n=24), tool_name=tool_name)
        assert result.elapsed_seconds > 0

    def test_single_processor(self):
        result = run_app(LuDecomposition(n=16), processors=1)
        assert result.elapsed_seconds > 0

    def test_factorization_reconstructs_matrix(self):
        app = LuDecomposition(n=32)
        platform = build_platform("alpha-fddi", processors=4)
        tool = create_tool("p4", platform)
        workload = app.make_workload(platform.rng)
        run = app.run(tool, processors=4, workload=workload)
        n = workload.n
        combined = np.zeros((n, n))
        for result in run.rank_outputs:
            for index, row in result["rows"].items():
                combined[index] = row
        lower = np.tril(combined, k=-1) + np.eye(n)
        upper = np.triu(combined)
        assert np.allclose(lower @ upper, workload.matrix(), atol=1e-8)

    def test_latency_sensitivity(self):
        """LU's n broadcasts make PVM's daemon latency visible."""
        p4_time = run_app(LuDecomposition(n=48), tool_name="p4").elapsed_seconds
        pvm_time = run_app(LuDecomposition(n=48), tool_name="pvm").elapsed_seconds
        assert pvm_time > p4_time * 1.5

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            LuDecomposition(n=1)


class TestRegistry:
    def test_extension_apps_registered(self):
        assert EXTENSION_APPS == ("lu", "matmul")

    def test_create_by_name(self):
        assert create_application("matmul", n=16).n == 16
        assert create_application("lu", n=16).n == 16

    def test_verification_catches_corruption(self):
        app = MatrixMultiply(n=16)
        platform = build_platform("alpha-fddi", processors=2)
        workload = app.make_workload(platform.rng)
        bogus = [
            {"band": np.zeros((8, 16)), "bounds": (0, 8)},
            {"band": np.zeros((8, 16)), "bounds": (8, 16)},
        ]
        with pytest.raises(ApplicationError):
            app.verify(workload, bogus)
