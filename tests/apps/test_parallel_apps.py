"""Integration tests: each application runs correctly under each tool.

Small workloads keep these fast; correctness is identical at any size
(algorithms are real), while timing fidelity is covered by the bench
shape tests.
"""

import numpy as np
import pytest

from repro.apps import (
    JpegCompression,
    MonteCarloIntegration,
    ParallelFft2d,
    PsrsSort,
    create_application,
)
from repro.hardware import build_platform
from repro.tools import PAPER_TOOL_NAMES, create_tool


def run_app(app, tool_name="p4", platform_name="alpha-fddi", processors=4):
    platform = build_platform(platform_name, processors=processors)
    tool = create_tool(tool_name, platform)
    return app.run(tool, processors=processors)


SMALL_APPS = {
    "jpeg": lambda: JpegCompression(height=64, width=64),
    "fft2d": lambda: ParallelFft2d(size=32),
    "montecarlo": lambda: MonteCarloIntegration(samples=40_000),
    "psrs": lambda: PsrsSort(keys=4_000),
}


@pytest.mark.parametrize("app_name", sorted(SMALL_APPS))
@pytest.mark.parametrize("tool_name", PAPER_TOOL_NAMES)
class TestAppsUnderAllTools:
    def test_runs_and_verifies(self, app_name, tool_name):
        app = SMALL_APPS[app_name]()
        result = run_app(app, tool_name=tool_name)
        assert result.elapsed_seconds > 0
        assert result.tool_name == tool_name

    def test_single_processor(self, app_name, tool_name):
        app = SMALL_APPS[app_name]()
        result = run_app(app, tool_name=tool_name, processors=1)
        assert result.elapsed_seconds > 0


class TestAppBehaviour:
    def test_jpeg_output_fields(self):
        result = run_app(SMALL_APPS["jpeg"]())
        assert result.output["compressed_bytes"] < result.output["original_bytes"]

    def test_fft_spectrum_matches_numpy(self):
        app = SMALL_APPS["fft2d"]()
        platform = build_platform("alpha-fddi", processors=4)
        tool = create_tool("p4", platform)
        workload = app.make_workload(platform.rng)
        run = app.run(tool, processors=4, workload=workload)
        expected = np.fft.fft2(workload.full_field(4))
        for result in run.rank_outputs:
            top, bottom = result["bounds"]
            assert np.allclose(result["columns_band"].T, expected[:, top:bottom], atol=1e-8)

    def test_psrs_partitions_cover_input(self):
        result = run_app(SMALL_APPS["psrs"](), processors=4)
        total = sum(len(rank_out["partition"]) for rank_out in result.rank_outputs)
        assert total == 4_000

    def test_montecarlo_estimate_near_pi(self):
        result = run_app(SMALL_APPS["montecarlo"]())
        assert result.output["value"] == pytest.approx(np.pi, abs=0.05)

    def test_montecarlo_deterministic_given_seed(self):
        values = []
        for _ in range(2):
            platform = build_platform("alpha-fddi", processors=4, seed=11)
            tool = create_tool("p4", platform)
            app = SMALL_APPS["montecarlo"]()
            run = app.run(tool, processors=4)
            values.append(run.output["value"])
        assert values[0] == values[1]

    def test_more_processors_less_elapsed_compute_bound(self):
        """Monte Carlo on FDDI is compute bound: speedup must be real."""
        app = SMALL_APPS["montecarlo"]()
        t1 = run_app(app, processors=1).elapsed_seconds
        t4 = run_app(app, processors=4).elapsed_seconds
        assert t4 < t1 / 2

    def test_elapsed_times_differ_between_tools(self):
        app = SMALL_APPS["jpeg"]()
        times = {
            tool: run_app(app, tool_name=tool, platform_name="sun-ethernet").elapsed_seconds
            for tool in PAPER_TOOL_NAMES
        }
        assert len(set(times.values())) == 3


class TestSuiteRegistry:
    def test_create_application_by_name(self):
        app = create_application("fft2d", size=16)
        assert app.size == 16

    def test_unknown_application_rejected(self):
        with pytest.raises(KeyError):
            create_application("skynet")

    def test_table2_classes_cover_benchmarked_apps(self):
        from repro.apps import APPLICATION_CLASSES, SU_PDABS_TABLE

        for app_name, class_name in APPLICATION_CLASSES.items():
            assert class_name in SU_PDABS_TABLE

    def test_table2_has_four_classes(self):
        from repro.apps import SU_PDABS_TABLE

        assert len(SU_PDABS_TABLE) == 4
