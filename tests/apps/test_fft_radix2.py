"""Unit tests for the radix-2 FFT against numpy's reference."""

import numpy as np
import pytest

from repro.apps.fft.radix2 import fft1d, fft2d, fft2d_flops, fft_flops, ifft1d, ifft2d


class TestFft1d:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        signal = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft1d(signal), np.fft.fft(signal), atol=1e-9)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft1d(np.zeros(12, dtype=complex))

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(3)
        signal = rng.normal(size=128) + 1j * rng.normal(size=128)
        assert np.allclose(ifft1d(fft1d(signal)), signal, atol=1e-10)

    def test_batch_rows(self):
        rng = np.random.default_rng(4)
        block = rng.normal(size=(5, 32)) + 1j * rng.normal(size=(5, 32))
        assert np.allclose(fft1d(block), np.fft.fft(block, axis=-1), atol=1e-9)

    def test_linearity(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=64) + 0j
        b = rng.normal(size=64) + 0j
        assert np.allclose(fft1d(a + 2 * b), fft1d(a) + 2 * fft1d(b), atol=1e-9)

    def test_parseval(self):
        rng = np.random.default_rng(6)
        signal = rng.normal(size=256) + 1j * rng.normal(size=256)
        spectrum = fft1d(signal)
        assert np.sum(np.abs(signal) ** 2) == pytest.approx(
            np.sum(np.abs(spectrum) ** 2) / 256
        )


class TestFft2d:
    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        field = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
        assert np.allclose(fft2d(field), np.fft.fft2(field), atol=1e-9)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(9)
        field = rng.normal(size=(16, 16)) + 1j * rng.normal(size=(16, 16))
        assert np.allclose(ifft2d(fft2d(field)), field, atol=1e-10)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            fft2d(np.zeros(8, dtype=complex))


class TestFlopCounts:
    def test_fft_flops_formula(self):
        assert fft_flops(8) == 5 * 8 * 3
        assert fft_flops(1024) == 5 * 1024 * 10

    def test_fft2d_flops_square(self):
        n = 64
        assert fft2d_flops(n, n) == 2 * n * fft_flops(n)

    def test_flops_reject_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_flops(100)
