"""Unit tests for the JPEG codec (DCT, quantization, entropy model)."""

import numpy as np
import pytest

from repro.apps.jpeg.codec import (
    compress_strip,
    compression_work,
    decompress_strip,
    psnr,
    quantization_table,
    zigzag_order,
)
from repro.apps.jpeg.dct import dct_matrix, forward_dct, inverse_dct
from repro.apps.jpeg.parallel import synthetic_image
from repro.errors import ApplicationError
from repro.sim import RandomStreams


class TestDct:
    def test_basis_is_orthonormal(self):
        basis = dct_matrix()
        assert np.allclose(basis @ basis.T, np.eye(8), atol=1e-12)

    def test_round_trip_identity(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(-128, 127, size=(8, 8))
        assert np.allclose(inverse_dct(forward_dct(block)), block, atol=1e-10)

    def test_constant_block_is_pure_dc(self):
        block = np.full((8, 8), 100.0)
        coefficients = forward_dct(block)
        assert coefficients[0, 0] == pytest.approx(800.0)  # 8 * mean
        assert np.allclose(coefficients.ravel()[1:], 0.0, atol=1e-10)

    def test_matches_scipy_convention(self):
        scipy = pytest.importorskip("scipy.fft")
        rng = np.random.default_rng(2)
        block = rng.normal(size=(8, 8))
        reference = scipy.dctn(block, norm="ortho")
        assert np.allclose(forward_dct(block), reference, atol=1e-10)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            forward_dct(np.zeros((4, 4)))


class TestQuantization:
    def test_quality_50_is_standard_table(self):
        table = quantization_table(50)
        assert table[0, 0] == pytest.approx(16.0)

    def test_higher_quality_smaller_steps(self):
        q25 = quantization_table(25)
        q90 = quantization_table(90)
        assert np.all(q90 <= q25)

    def test_bounds_clipped(self):
        assert np.all(quantization_table(100) >= 1.0)
        assert np.all(quantization_table(1) <= 255.0)

    def test_invalid_quality_rejected(self):
        with pytest.raises(ValueError):
            quantization_table(0)
        with pytest.raises(ValueError):
            quantization_table(101)


class TestZigzag:
    def test_covers_all_positions_once(self):
        order = zigzag_order()
        assert len(order) == 64
        assert len(set(order)) == 64

    def test_starts_dc_then_first_diagonal(self):
        order = zigzag_order()
        assert order[0] == (0, 0)
        assert set(order[1:3]) == {(0, 1), (1, 0)}

    def test_ends_bottom_right(self):
        assert zigzag_order()[-1] == (7, 7)


class TestCodecEndToEnd:
    @pytest.fixture
    def image(self):
        return synthetic_image(RandomStreams(7), height=64, width=64)

    def test_round_trip_quality(self, image):
        tokens, nbytes = compress_strip(image, quality=75)
        reconstructed = decompress_strip(tokens, image.shape, quality=75)
        assert psnr(image, reconstructed) > 30.0

    def test_compression_actually_compresses(self, image):
        _, nbytes = compress_strip(image, quality=75)
        assert nbytes < image.size / 2

    def test_lower_quality_fewer_bytes(self, image):
        _, high = compress_strip(image, quality=90)
        _, low = compress_strip(image, quality=20)
        assert low < high

    def test_lower_quality_lower_psnr(self, image):
        tokens_hi, _ = compress_strip(image, quality=90)
        tokens_lo, _ = compress_strip(image, quality=10)
        hi = psnr(image, decompress_strip(tokens_hi, image.shape, quality=90))
        lo = psnr(image, decompress_strip(tokens_lo, image.shape, quality=10))
        assert hi > lo

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ApplicationError):
            compress_strip(np.zeros((60, 64)))

    def test_psnr_identical_images_infinite(self, image):
        assert psnr(image, image.astype(np.float64)) == float("inf")

    def test_compression_work_scales_with_pixels(self):
        small = compression_work(64 * 64)
        large = compression_work(128 * 128)
        assert large.flops == pytest.approx(4 * small.flops)
        assert large.int_ops == pytest.approx(4 * small.int_ops)
