"""Unit and property tests for the collective algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ToolError
from repro.hardware import build_platform
from repro.tools import create_tool
from repro.tools.collectives import binomial_broadcast, binomial_reduce, linear_reduce


def make_comms(tool_name="p4", processors=4, platform_name="sp1-switch"):
    platform = build_platform(platform_name, processors=processors)
    tool = create_tool(tool_name, platform)
    return tool


class TestBinomialBroadcastShapes:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 7, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_every_rank_receives(self, size, root):
        tool = make_comms(processors=max(size, 2))
        root = root % size

        def program(comm):
            payload = "data" if comm.rank == root else None
            result = yield from binomial_broadcast(comm, root, payload, 100, "t")
            return result

        results = tool.run_spmd(program, nprocs=size)
        assert results == ["data"] * size

    def test_message_count_is_size_minus_one(self):
        """A broadcast tree sends exactly N-1 messages."""
        size = 8
        tool = make_comms(processors=size)

        def program(comm):
            payload = b"x" * 64 if comm.rank == 0 else None
            yield from binomial_broadcast(comm, 0, payload, 64, "t")

        tool.run_spmd(program, nprocs=size)
        assert tool.platform.network.stats.messages == size - 1

    def test_tree_depth_beats_sequential_latency(self):
        """8 ranks: tree depth 3 < 7 sequential root sends."""
        from repro.core.measurements import measure_broadcast
        from repro.tools.profiles import P4_PROFILE

        tree = measure_broadcast("p4", "sp1-switch", 0, processors=8)
        flat = measure_broadcast(
            "p4", "sp1-switch", 0, processors=8,
            profile=P4_PROFILE.replace(broadcast_algorithm="sequential"),
        )
        assert tree < flat


class TestReduceAlgorithms:
    @pytest.mark.parametrize("algorithm", [binomial_reduce, linear_reduce])
    @pytest.mark.parametrize("size", [2, 3, 4, 6, 8])
    def test_sum_lands_on_root(self, algorithm, size):
        tool = make_comms(processors=max(size, 2))

        def program(comm):
            local = np.full(5, comm.rank + 1, dtype=np.int64)
            result = yield from algorithm(comm, 0, local, "t")
            return None if result is None else result.tolist()

        results = tool.run_spmd(program, nprocs=size)
        expected = [sum(range(1, size + 1))] * 5
        assert results[0] == expected
        assert all(result is None for result in results[1:])

    def test_shape_mismatch_detected(self):
        tool = make_comms(processors=2)

        def program(comm):
            local = np.ones(3 if comm.rank == 0 else 4)
            try:
                yield from binomial_reduce(comm, 0, local, "t")
            except ToolError:
                return "caught"
            return "missed"

        results = tool.run_spmd(program, nprocs=2)
        assert "caught" in results


class TestBroadcastProperty:
    @given(
        size=st.integers(min_value=2, max_value=8),
        root=st.integers(min_value=0, max_value=7),
        value=st.integers(),
    )
    @settings(max_examples=20, deadline=None)
    def test_broadcast_delivers_value_everywhere(self, size, root, value):
        root = root % size
        tool = make_comms(processors=size)

        def program(comm):
            payload = value if comm.rank == root else None
            result = yield from comm.broadcast(root, payload=payload)
            return result

        results = tool.run_spmd(program, nprocs=size)
        assert results == [value] * size

    @given(size=st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_global_sum_equals_arithmetic_series(self, size):
        tool = make_comms(processors=size)

        def program(comm):
            total = yield from comm.global_sum(np.array([comm.rank], dtype=np.int64))
            return int(total[0])

        results = tool.run_spmd(program, nprocs=size)
        assert results == [size * (size - 1) // 2] * size
