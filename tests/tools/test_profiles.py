"""Unit tests for tool cost profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.tools import (
    EXPRESS_PROFILE,
    MPI_PROFILE,
    P4_PROFILE,
    PVM_PROFILE,
    ToolProfile,
)


class TestProfileValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            ToolProfile(
                name="x",
                display_name="x",
                transport="carrier-pigeon",
                send_fixed=0,
                recv_fixed=0,
                pack_per_byte=0,
                unpack_per_byte=0,
                broadcast_algorithm="binomial",
            )

    def test_unknown_broadcast_rejected(self):
        with pytest.raises(ConfigurationError):
            ToolProfile(
                name="x",
                display_name="x",
                transport="tcp",
                send_fixed=0,
                recv_fixed=0,
                pack_per_byte=0,
                unpack_per_byte=0,
                broadcast_algorithm="smoke-signals",
            )

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            ToolProfile(
                name="x",
                display_name="x",
                transport="tcp",
                send_fixed=-1e-3,
                recv_fixed=0,
                pack_per_byte=0,
                unpack_per_byte=0,
                broadcast_algorithm="binomial",
            )


class TestPaperProfiles:
    def test_pvm_has_no_reduce(self):
        """Table 1: PVM global sum is 'Not Available'."""
        assert not PVM_PROFILE.supports_reduce

    def test_p4_and_express_have_reduce(self):
        assert P4_PROFILE.supports_reduce
        assert EXPRESS_PROFILE.supports_reduce

    def test_transports_match_structure(self):
        assert P4_PROFILE.transport == "tcp"
        assert PVM_PROFILE.transport == "daemon"
        assert EXPRESS_PROFILE.transport == "stop-and-wait"

    def test_broadcast_algorithms_match_structure(self):
        assert P4_PROFILE.broadcast_algorithm == "binomial"
        assert PVM_PROFILE.broadcast_algorithm == "daemon-sequential"
        assert EXPRESS_PROFILE.broadcast_algorithm == "sequential"

    def test_p4_is_leanest(self):
        """p4's per-message and per-byte costs undercut the others."""
        for other in (PVM_PROFILE, EXPRESS_PROFILE, MPI_PROFILE):
            assert P4_PROFILE.send_fixed <= other.send_fixed
            assert P4_PROFILE.pack_per_byte <= other.pack_per_byte

    def test_express_copies_cost_most_per_byte(self):
        assert EXPRESS_PROFILE.pack_per_byte > P4_PROFILE.pack_per_byte
        assert EXPRESS_PROFILE.pack_per_byte > PVM_PROFILE.pack_per_byte


class TestReplace:
    def test_replace_overrides_field(self):
        modified = PVM_PROFILE.replace(daemon_ack_stall=0.0)
        assert modified.daemon_ack_stall == 0.0
        assert modified.send_fixed == PVM_PROFILE.send_fixed

    def test_replace_leaves_original_untouched(self):
        before = PVM_PROFILE.daemon_ack_stall
        PVM_PROFILE.replace(daemon_ack_stall=99.0)
        assert PVM_PROFILE.daemon_ack_stall == before

    def test_replace_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            P4_PROFILE.replace(warp_speed=9)
