"""Timing-level semantics of the tool runtimes: the structural
behaviours DESIGN.md attributes to each tool, tested directly."""

import pytest

from repro.core.measurements import (
    measure_barrier,
    measure_broadcast,
    measure_ring,
    measure_sendrecv,
)
from repro.tools.profiles import EXPRESS_PROFILE, P4_PROFILE, PVM_PROFILE


class TestSendRecvStructure:
    def test_p4_fastest_on_every_network(self):
        for platform in ("sun-ethernet", "sun-atm-lan", "alpha-fddi", "sp1-switch"):
            p4 = measure_sendrecv("p4", platform, 16384)
            pvm = measure_sendrecv("pvm", platform, 16384)
            express = measure_sendrecv("express", platform, 16384)
            assert p4 < pvm and p4 < express, platform

    def test_cost_grows_with_size(self):
        times = [
            measure_sendrecv("p4", "sun-ethernet", kb * 1024) for kb in (0, 4, 16, 64)
        ]
        assert times == sorted(times)

    def test_faster_nodes_lower_software_overhead(self):
        """0-byte echo is pure software+latency: Alpha (fast CPU, fast
        network) must beat the SPARC/Ethernet combination."""
        alpha = measure_sendrecv("p4", "alpha-fddi", 0)
        sparc = measure_sendrecv("p4", "sun-ethernet", 0)
        assert alpha < sparc

    def test_express_pvm_crossover_on_atm(self):
        """Paper: Express beats PVM below ~1KB on ATM, loses at bulk."""
        small_express = measure_sendrecv("express", "sun-atm-lan", 512)
        small_pvm = measure_sendrecv("pvm", "sun-atm-lan", 512)
        bulk_express = measure_sendrecv("express", "sun-atm-lan", 65536)
        bulk_pvm = measure_sendrecv("pvm", "sun-atm-lan", 65536)
        assert small_express < small_pvm
        assert bulk_express > bulk_pvm


class TestCollectiveStructure:
    def test_broadcast_ordering_ethernet(self):
        p4 = measure_broadcast("p4", "sun-ethernet", 65536)
        pvm = measure_broadcast("pvm", "sun-ethernet", 65536)
        express = measure_broadcast("express", "sun-ethernet", 65536)
        assert p4 < pvm < express

    def test_ring_inversion_ethernet(self):
        """Express overtakes PVM under bidirectional load (Fig 3)."""
        p4 = measure_ring("p4", "sun-ethernet", 65536)
        pvm = measure_ring("pvm", "sun-ethernet", 65536)
        express = measure_ring("express", "sun-ethernet", 65536)
        assert p4 < express < pvm

    def test_ring_no_inversion_on_switched_network(self):
        """The inversion is a shared-medium congestion effect: on the
        contention-free ATM LAN PVM stays ahead of Express."""
        pvm = measure_ring("pvm", "sun-atm-lan", 65536)
        express = measure_ring("express", "sun-atm-lan", 65536)
        assert pvm < express

    def test_barrier_scales_modestly(self):
        two = measure_barrier("p4", "sun-atm-lan", processors=2)
        eight = measure_barrier("p4", "sun-atm-lan", processors=8)
        assert two < eight < two * 8


class TestProfileAblationHooks:
    def test_pvm_without_daemons_approaches_p4(self):
        direct = PVM_PROFILE.replace(
            daemon_ipc_fixed=0.0,
            daemon_ipc_per_byte=0.0,
            daemon_copy_per_byte=0.0,
            daemon_ack_stall=0.0,
            daemon_retransmit_stall=0.0,
        )
        stock = measure_sendrecv("pvm", "sun-atm-lan", 65536)
        routed = measure_sendrecv("pvm", "sun-atm-lan", 65536, profile=direct)
        p4 = measure_sendrecv("p4", "sun-atm-lan", 65536)
        assert routed < stock
        assert routed < p4 * 1.6  # most of the gap was the daemon path

    def test_express_without_handshake_much_faster(self):
        quick = EXPRESS_PROFILE.replace(handshake_seconds=0.0, fragment_bytes=8192)
        stock = measure_sendrecv("express", "sun-ethernet", 65536)
        stripped = measure_sendrecv("express", "sun-ethernet", 65536, profile=quick)
        assert stripped < stock * 0.75

    def test_p4_window_effect_is_ethernet_specific(self):
        wide = P4_PROFILE.replace(tcp_window_bytes=1 << 20)
        eth_stock = measure_sendrecv("p4", "sun-ethernet", 65536)
        eth_wide = measure_sendrecv("p4", "sun-ethernet", 65536, profile=wide)
        assert eth_wide < eth_stock

    def test_seed_reproducibility(self):
        a = measure_sendrecv("pvm", "sun-ethernet", 32768, seed=7)
        b = measure_sendrecv("pvm", "sun-ethernet", 32768, seed=7)
        assert a == b
