"""Functional semantics of the tool runtimes (correct delivery,
blocking behaviour, selective receive) independent of calibration."""

import numpy as np
import pytest

from repro.errors import ToolError, UnsupportedOperationError
from repro.hardware import build_platform
from repro.tools import TOOL_NAMES, create_tool

ALL_TOOLS = list(TOOL_NAMES)
PAPER_TOOLS = ["express", "p4", "pvm"]


def make_tool(tool_name, platform_name="sun-ethernet", processors=4):
    platform = build_platform(platform_name, processors=processors)
    return create_tool(tool_name, platform)


@pytest.mark.parametrize("tool_name", ALL_TOOLS)
class TestPointToPoint:
    def test_payload_round_trip(self, tool_name):
        tool = make_tool(tool_name)
        data = np.arange(100, dtype=np.int32)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, payload=data)
                return None
            if comm.rank == 1:
                msg = yield from comm.recv(src=0)
                return msg.payload
            return None

        results = tool.run_spmd(program, nprocs=2)
        assert np.array_equal(results[1], data)

    def test_echo_advances_clock(self, tool_name):
        tool = make_tool(tool_name)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=1024)
                yield from comm.recv(src=1)
            else:
                yield from comm.recv(src=0)
                yield from comm.send(0, nbytes=1024)

        tool.run_spmd(program, nprocs=2)
        assert tool.env.now > 0

    def test_message_order_preserved_per_pair(self, tool_name):
        tool = make_tool(tool_name)

        def program(comm):
            if comm.rank == 0:
                for index in range(5):
                    yield from comm.send(1, payload=index, tag="seq")
                return None
            received = []
            for _ in range(5):
                msg = yield from comm.recv(src=0, tag="seq")
                received.append(msg.payload)
            return received

        results = tool.run_spmd(program, nprocs=2)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_selective_receive_by_tag(self, tool_name):
        tool = make_tool(tool_name)

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, payload="first", tag="a")
                yield from comm.send(1, payload="second", tag="b")
                return None
            msg_b = yield from comm.recv(src=0, tag="b")
            msg_a = yield from comm.recv(src=0, tag="a")
            return (msg_b.payload, msg_a.payload)

        results = tool.run_spmd(program, nprocs=2)
        assert results[1] == ("second", "first")

    def test_wildcard_receive(self, tool_name):
        tool = make_tool(tool_name)

        def program(comm):
            if comm.rank == 0:
                received = set()
                for _ in range(2):
                    msg = yield from comm.recv()
                    received.add(msg.src)
                return received
            yield from comm.send(0, nbytes=8, tag=comm.rank)
            return None

        results = tool.run_spmd(program, nprocs=3)
        assert results[0] == {1, 2}

    def test_self_send_rejected(self, tool_name):
        tool = make_tool(tool_name)

        def program(comm):
            if comm.rank == 0:
                with pytest.raises(ToolError):
                    yield from comm.send(0, nbytes=1)
            yield from comm.barrier()

        tool.run_spmd(program, nprocs=2)

    def test_out_of_range_peer_rejected(self, tool_name):
        tool = make_tool(tool_name)

        def program(comm):
            with pytest.raises(ToolError):
                yield from comm.send(99, nbytes=1)
            yield from comm.barrier()

        tool.run_spmd(program, nprocs=2)


@pytest.mark.parametrize("tool_name", ALL_TOOLS)
class TestCollectives:
    def test_broadcast_reaches_all(self, tool_name):
        tool = make_tool(tool_name, processors=7)
        data = np.arange(50, dtype=np.float64)

        def program(comm):
            result = yield from comm.broadcast(0, payload=data if comm.rank == 0 else None)
            return result

        results = tool.run_spmd(program, nprocs=7)
        for result in results:
            assert np.array_equal(result, data)

    def test_broadcast_from_nonzero_root(self, tool_name):
        tool = make_tool(tool_name, processors=5)

        def program(comm):
            payload = "from-root" if comm.rank == 3 else None
            result = yield from comm.broadcast(3, payload=payload)
            return result

        results = tool.run_spmd(program, nprocs=5)
        assert results == ["from-root"] * 5

    def test_successive_broadcasts_do_not_cross(self, tool_name):
        tool = make_tool(tool_name, processors=4)

        def program(comm):
            first = yield from comm.broadcast(0, payload="one" if comm.rank == 0 else None)
            second = yield from comm.broadcast(0, payload="two" if comm.rank == 0 else None)
            return (first, second)

        results = tool.run_spmd(program, nprocs=4)
        assert all(result == ("one", "two") for result in results)

    def test_barrier_synchronizes(self, tool_name):
        tool = make_tool(tool_name, processors=4)
        env = tool.env

        def program(comm):
            # Stagger arrivals; nobody may pass before the last arrival.
            yield env.timeout(comm.rank * 1.0)
            arrived = env.now
            yield from comm.barrier()
            return (arrived, env.now)

        results = tool.run_spmd(program, nprocs=4)
        last_arrival = max(arrived for arrived, _ in results)
        for _, released in results:
            assert released >= last_arrival

    def test_ring_shift_moves_payload_left_to_right(self, tool_name):
        tool = make_tool(tool_name, processors=4)

        def program(comm):
            msg = yield from comm.ring_shift(payload=comm.rank)
            return msg.payload

        results = tool.run_spmd(program, nprocs=4)
        # Each rank receives its left neighbour's rank.
        assert results == [3, 0, 1, 2]

    def test_ring_needs_two_ranks(self, tool_name):
        tool = make_tool(tool_name, processors=2)

        def program(comm):
            with pytest.raises(ToolError):
                yield from comm.ring_shift(payload=1)
            if False:
                yield  # pragma: no cover

        tool.run_spmd(program, nprocs=1)


class TestGlobalSum:
    @pytest.mark.parametrize("tool_name", ["p4", "express", "mpi"])
    def test_global_sum_correct(self, tool_name):
        tool = make_tool(tool_name, processors=4)

        def program(comm):
            local = np.full(10, comm.rank + 1, dtype=np.int64)
            total = yield from comm.global_sum(local)
            return total

        results = tool.run_spmd(program, nprocs=4)
        expected = np.full(10, 1 + 2 + 3 + 4, dtype=np.int64)
        for result in results:
            assert np.array_equal(result, expected)

    def test_pvm_global_sum_unavailable(self):
        """Table 1: PVM has no global operation."""
        tool = make_tool("pvm", processors=2)

        def program(comm):
            with pytest.raises(UnsupportedOperationError):
                yield from comm.global_sum(np.ones(4))
            yield from comm.barrier()

        tool.run_spmd(program, nprocs=2)

    @pytest.mark.parametrize("tool_name", ["p4", "express"])
    def test_global_sum_scalar_like_vector(self, tool_name):
        tool = make_tool(tool_name, processors=3)

        def program(comm):
            total = yield from comm.global_sum(np.array([float(comm.rank)]))
            return float(total[0])

        results = tool.run_spmd(program, nprocs=3)
        assert results == [3.0, 3.0, 3.0]


class TestBlockingSemantics:
    def test_pvm_send_returns_before_delivery(self):
        """pvm_send hands off to the daemon and returns; the wire time
        of a large message is NOT seen by the sender."""
        tool = make_tool("pvm")
        env = tool.env
        sender_done = {}

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=65536)
                sender_done["at"] = env.now
            else:
                msg = yield from comm.recv(src=0)
                sender_done["arrived"] = msg.arrived_at

        tool.run_spmd(program, nprocs=2)
        assert sender_done["at"] < sender_done["arrived"]

    @pytest.mark.parametrize("tool_name", ["p4", "express"])
    def test_direct_tools_block_until_delivery(self, tool_name):
        tool = make_tool(tool_name)
        env = tool.env
        times = {}

        def program(comm):
            if comm.rank == 0:
                yield from comm.send(1, nbytes=65536)
                times["sender_done"] = env.now
            else:
                msg = yield from comm.recv(src=0)
                times["arrived"] = msg.arrived_at

        tool.run_spmd(program, nprocs=2)
        assert times["sender_done"] >= times["arrived"]


class TestLaunch:
    def test_run_spmd_returns_rank_results(self):
        tool = make_tool("p4")

        def program(comm):
            yield from comm.barrier()
            return comm.rank * 10

        assert tool.run_spmd(program, nprocs=4) == [0, 10, 20, 30]

    def test_launch_too_many_processes_rejected(self):
        from repro.errors import ConfigurationError

        tool = make_tool("p4", processors=2)
        with pytest.raises(ConfigurationError):
            tool.launch(lambda comm: iter(()), nprocs=3)

    def test_communicator_rank_validation(self):
        tool = make_tool("p4", processors=2)
        with pytest.raises(ToolError):
            tool.communicator(5, size=2)
