"""Unit tests for message envelopes and payload sizing."""

import numpy as np
import pytest

from repro.tools import Message, sizeof


class TestSizeof:
    def test_none_is_empty(self):
        assert sizeof(None) == 0

    def test_bytes(self):
        assert sizeof(b"12345") == 5

    def test_bytearray(self):
        assert sizeof(bytearray(7)) == 7

    def test_int_is_c_int(self):
        assert sizeof(42) == 4

    def test_float_is_c_double(self):
        assert sizeof(3.14) == 8

    def test_bool_counts_as_int(self):
        assert sizeof(True) == 4

    def test_str_utf8(self):
        assert sizeof("abc") == 3

    def test_numpy_array(self):
        assert sizeof(np.zeros(10, dtype=np.float64)) == 80
        assert sizeof(np.zeros((4, 4), dtype=np.int32)) == 64

    def test_list_of_ints(self):
        assert sizeof([1, 2, 3]) == 12

    def test_nested_structures(self):
        assert sizeof([(1, 2.0), "ab"]) == 4 + 8 + 2

    def test_dict(self):
        assert sizeof({1: 2.0}) == 12

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            sizeof(object())


class TestMessage:
    def test_matches_exact(self):
        msg = Message(src=1, dst=2, tag="t", nbytes=10)
        assert msg.matches(1, "t")
        assert not msg.matches(0, "t")
        assert not msg.matches(1, "other")

    def test_matches_wildcards(self):
        msg = Message(src=1, dst=2, tag="t", nbytes=10)
        assert msg.matches(None, None)
        assert msg.matches(None, "t")
        assert msg.matches(1, None)

    def test_repr(self):
        msg = Message(src=0, dst=3, tag=7, nbytes=128)
        assert "0->3" in repr(msg)
