"""RemoteExecutor through the executor-protocol conformance suite.

The suite in ``tests/core/test_executor_protocol.py`` pins the
``submit`` contract for every backend and was written to be reused by
a remote one.  This module runs it over :class:`RemoteExecutor`
**unmodified**: the suite file is loaded by path, its test classes
are re-exported here, and only the ``executor`` fixture is overridden
(pytest resolves fixtures by collection location, so the local
definition wins) to stand up an in-process two-worker fleet over a
shared sharded disk cache.

Worth spelling out what passing means here: ordering, laziness
bounds, retry transport (including monkeypatched ``execute_job``
reaching the workers), failure propagation with the original
exception type, abandoned-stream cleanup and scheduler integration
all hold across a process-shaped boundary — jobs travel as queue
tickets and results come back as outcome files, yet the contract is
indistinguishable from an in-process pool.
"""

import importlib.util
import pathlib
import sys

import pytest

from repro.core.cache import ResultCache
from repro.distributed import JobQueue, RemoteExecutor, WorkerPool

_SUITE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "core"
    / "test_executor_protocol.py"
)
_spec = importlib.util.spec_from_file_location(
    "_executor_protocol_suite", _SUITE_PATH
)
_suite = importlib.util.module_from_spec(_spec)
sys.modules[_spec.name] = _suite
_spec.loader.exec_module(_suite)

# Re-exported verbatim: pytest collects these classes in this module,
# where the remote `executor` fixture below applies to every test.
TestProtocolSurface = _suite.TestProtocolSurface
TestSubmitSemantics = _suite.TestSubmitSemantics
TestRetries = _suite.TestRetries
TestBrokenPoolRecovery = _suite.TestBrokenPoolRecovery
TestSchedulerIntegration = _suite.TestSchedulerIntegration

#: The suite's module-scoped serial ground truth, reused as-is.
reference = _suite.reference


@pytest.fixture(params=["remote"])
def executor(request, tmp_path):
    queue = JobQueue(str(tmp_path / "queue"), lease_timeout=10.0)
    cache = ResultCache.on_disk(str(tmp_path / "cache"), shards=2)
    instance = RemoteExecutor(
        queue_dir=str(tmp_path / "queue"),
        max_workers=2,
        poll_interval=0.005,
        timeout=120.0,
    )
    with WorkerPool(queue, cache, workers=2, poll_interval=0.005):
        yield instance
        instance.close()
