"""JobQueue unit tests: atomic claims, leases, reclaim, hygiene."""

import json
import os
import threading

import pytest

from repro.core.jobs import sendrecv_job
from repro.distributed import JobQueue
from repro.errors import EvaluationError

JOB = sendrecv_job("p4", "sun-ethernet", 1024)


def make_queue(tmp_path, lease_timeout=10.0):
    return JobQueue(str(tmp_path / "queue"), lease_timeout=lease_timeout)


def backdate(path, seconds):
    past = os.path.getmtime(path) - seconds
    os.utime(path, (past, past))


class TestLifecycle:
    def test_enqueue_claim_complete_round_trip(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("t-000", JOB, retries=3)
        assert queue.pending() == ["t-000"]

        claim = queue.claim("w1")
        assert claim.ticket == "t-000"
        assert claim.job == JOB
        assert claim.retries == 3
        assert queue.pending() == [] and queue.claimed() == ["t-000"]

        queue.complete(claim, {"ticket": "t-000", "value": 1.5})
        assert queue.claimed() == []
        outcome = queue.take_outcome("t-000")
        assert outcome["value"] == 1.5
        assert queue.take_outcome("t-000") is None  # consumed

    def test_claims_are_fifo_by_ticket(self, tmp_path):
        queue = make_queue(tmp_path)
        for index in (2, 0, 1):
            queue.enqueue("t-%03d" % index, JOB)
        assert [queue.claim("w").ticket for _ in range(3)] == [
            "t-000", "t-001", "t-002"]

    def test_claim_on_empty_queue(self, tmp_path):
        assert make_queue(tmp_path).claim("w1") is None

    def test_exactly_one_claimant_wins(self, tmp_path):
        """N threads race for one ticket; the atomic rename guarantees
        a single winner and graceful losers."""
        queue = make_queue(tmp_path)
        queue.enqueue("t-000", JOB)
        wins = []
        barrier = threading.Barrier(8)

        def racer(index):
            barrier.wait()
            claim = queue.claim("w%d" % index)
            if claim is not None:
                wins.append(claim)

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1

    def test_release_returns_ticket_to_pool(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("t-000", JOB)
        claim = queue.claim("w1")
        queue.release(claim)
        assert queue.pending() == ["t-000"]
        assert queue.claim("w2").ticket == "t-000"


class TestRevocation:
    def test_revoke_unclaimed(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("t-000", JOB)
        assert queue.revoke("t-000") is True
        assert queue.pending() == []
        assert queue.claim("w1") is None

    def test_revoke_claimed_ticket_lets_it_finish(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("t-000", JOB)
        claim = queue.claim("w1")
        assert queue.revoke("t-000") is False  # too late: lease held
        queue.complete(claim, {"value": 2.0})
        assert queue.take_outcome("t-000")["value"] == 2.0


class TestLeases:
    def test_stale_claim_is_reclaimed(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=10.0)
        queue.enqueue("t-000", JOB)
        claim = queue.claim("w-dead")
        backdate(claim.path, 60.0)  # the worker stopped heartbeating
        assert queue.reclaim_stale() == 1
        assert queue.pending() == ["t-000"]
        assert queue.claim("w-alive").ticket == "t-000"

    def test_heartbeat_defends_the_lease(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=10.0)
        queue.enqueue("t-000", JOB)
        claim = queue.claim("w1")
        backdate(claim.path, 60.0)
        queue.heartbeat(claim)  # a live worker refreshes before sweep
        assert queue.reclaim_stale() == 0
        assert queue.claimed() == ["t-000"]

    def test_fresh_claim_is_not_reclaimed(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=10.0)
        queue.enqueue("t-000", JOB)
        queue.claim("w1")
        assert queue.reclaim_stale() == 0

    def test_completion_after_reclaim_is_harmless(self, tmp_path):
        """The dead-but-not-really worker completes *after* its lease
        was stolen: its outcome still publishes (deterministic value,
        atomic write) and the unlink of the vanished claim is a no-op."""
        queue = make_queue(tmp_path, lease_timeout=10.0)
        queue.enqueue("t-000", JOB)
        slow = queue.claim("w-slow")
        backdate(slow.path, 60.0)
        queue.reclaim_stale()
        fast = queue.claim("w-fast")
        queue.complete(fast, {"value": 1.0})
        queue.complete(slow, {"value": 1.0})  # duplicate, same value
        assert queue.take_outcome("t-000")["value"] == 1.0


class TestHygiene:
    def test_lease_timeout_validated(self, tmp_path):
        with pytest.raises(EvaluationError):
            JobQueue(str(tmp_path), lease_timeout=0.0)

    def test_torn_ticket_is_poisoned_not_fatal(self, tmp_path):
        queue = make_queue(tmp_path)
        with open(os.path.join(queue.root, "jobs", "t-bad.json"), "w") as handle:
            handle.write("{torn")
        queue.enqueue("t-good", JOB)
        claim = queue.claim("w1")
        assert claim.ticket == "t-good"
        assert queue.pending() == [] and queue.claimed() == ["t-good"]

    def test_abandoned_outcomes_are_swept_by_age(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=1.0)
        queue.enqueue("t-000", JOB)
        queue.complete(queue.claim("w1"), {"value": 1.0})
        path = os.path.join(queue.root, "outcomes", "t-000.json")
        assert queue.sweep_outcomes() == 0  # fresh: a coordinator may come
        backdate(path, 5 * queue.lease_timeout * queue.OUTCOME_TTL_LEASES)
        assert queue.sweep_outcomes() == 1
        assert not os.path.exists(path)

    def test_worker_beacons_report_liveness(self, tmp_path):
        queue = make_queue(tmp_path, lease_timeout=10.0)
        queue.heartbeat_worker("w1", {"processed": 3})
        queue.heartbeat_worker("w2", {"processed": 0})
        beacon_path = os.path.join(queue.root, "workers", "w2.json")
        stale = json.load(open(beacon_path))
        stale["time"] -= 60.0
        with open(beacon_path, "w") as handle:
            json.dump(stale, handle)
        alive = queue.live_workers()
        assert [beacon["worker"] for beacon in alive] == ["w1"]
        assert alive[0]["processed"] == 3
