"""Fleet behavior end to end: reclaim after death, cancellation,
failure transport, and the exactly-once accounting the counters prove.

"Kill" here means what it means on a real cluster: a worker stops
heartbeating while holding a lease.  Tests stage that by claiming a
ticket under a fake worker id and backdating the claim's mtime past
the lease timeout — indistinguishable, at the queue level, from a
SIGKILLed process (the subprocess version runs in the CI
distributed-smoke job and ``examples/distributed_sweep.py``).
"""

import os
import threading
import time

import pytest

from repro.core.cache import ResultCache
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec
from repro.distributed import JobQueue, RemoteExecutor, Worker, WorkerPool
from repro.errors import EvaluationError

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    kwargs = dict(_TINY)
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


def backdate(path, seconds):
    past = os.path.getmtime(path) - seconds
    os.utime(path, (past, past))


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestStaleLeaseReclaim:
    def test_killed_worker_jobs_rerun_exactly_the_lost_ones(self, tmp_path):
        """A worker dies mid-job (claim held, heartbeat stopped, no
        result landed): the healthy fleet reclaims and re-runs *that*
        ticket — and nothing else twice.  simulations == job count."""
        queue = JobQueue(str(tmp_path / "queue"), lease_timeout=1.0)
        cache = ResultCache.on_disk(str(tmp_path / "cache"), shards=2)
        jobs = tiny_spec(tools=("p4", "express")).jobs()
        for index, job in enumerate(jobs):
            queue.enqueue("t-%06d" % index, job)

        doomed = queue.claim("w-dead")
        assert doomed is not None
        backdate(doomed.path, 60.0)  # died: heartbeat never comes

        outcomes_dir = os.path.join(queue.root, "outcomes")
        with WorkerPool(queue, cache, workers=2, poll_interval=0.005) as pool:
            assert wait_until(
                lambda: len(os.listdir(outcomes_dir)) == len(jobs)
            ), "fleet never finished the queue (reclaim failed?)"
        # Exactly once each: the lost ticket re-ran on a healthy
        # worker, nothing was duplicated, nothing served stale.
        assert pool.simulated == len(jobs)
        assert pool.cache_hits == 0
        assert pool.processed == len(jobs)
        doomed_outcome = queue.take_outcome(doomed.ticket)
        assert doomed_outcome["worker"] != "w-dead"
        assert doomed_outcome["cache_hit"] is False

    def test_death_after_store_costs_a_lookup_not_a_simulation(self, tmp_path):
        """A worker dies *between* persisting the sample and releasing
        the lease: the reclaimed re-run must be a cache hit — this is
        the at-least-once-but-idempotent half of the design."""
        queue = JobQueue(str(tmp_path / "queue"), lease_timeout=1.0)
        cache = ResultCache.on_disk(str(tmp_path / "cache"), shards=2)
        jobs = tiny_spec(tools=("p4",)).jobs()
        for index, job in enumerate(jobs):
            queue.enqueue("t-%06d" % index, job)

        doomed = queue.claim("w-dead")
        from repro.core.jobs import execute_job

        cache.store(doomed.job, execute_job(doomed.job))  # work landed...
        backdate(doomed.path, 60.0)  # ...then the worker died

        outcomes_dir = os.path.join(queue.root, "outcomes")
        with WorkerPool(queue, cache, workers=2, poll_interval=0.005) as pool:
            assert wait_until(
                lambda: len(os.listdir(outcomes_dir)) == len(jobs)
            )
        assert pool.simulated == len(jobs) - 1  # the lost one not re-simulated
        assert pool.cache_hits == 1
        reclaimed = queue.take_outcome(doomed.ticket)
        assert reclaimed["cache_hit"] is True

    def test_scheduler_run_survives_a_killed_worker(self, tmp_path):
        """The full stack — Scheduler -> RemoteExecutor -> queue ->
        fleet — completes (correct values, every job simulated once)
        even when one ticket's first claimant dies silently."""
        queue_dir = str(tmp_path / "queue")
        queue = JobQueue(queue_dir, lease_timeout=0.75)
        cache = ResultCache.on_disk(str(tmp_path / "cache"), shards=2)
        spec = tiny_spec(tools=("p4", "express"))
        executor = RemoteExecutor(
            queue_dir=queue_dir, max_workers=2,
            poll_interval=0.005, timeout=120.0, lease_timeout=0.75,
        )
        scheduler = Scheduler(executor=executor)
        done = {}

        def drive():
            done["result"] = scheduler.run(spec)

        coordinator = threading.Thread(target=drive)
        coordinator.start()
        try:
            # Let the coordinator publish its admission window, then
            # have a doomed claimant grab the *first* ticket (the one
            # the executor must yield next) and die on it.
            assert wait_until(lambda: len(queue.pending()) >= 1)
            doomed = queue.claim("w-dead")
            assert doomed is not None
            backdate(doomed.path, 60.0)
            with WorkerPool(queue, cache, workers=2, poll_interval=0.005) as pool:
                coordinator.join(timeout=120.0)
                assert not coordinator.is_alive(), "run wedged on the dead claim"
        finally:
            coordinator.join(timeout=5.0)
        assert done["result"].values == Scheduler().run(spec).values
        assert scheduler.simulations_run == spec.job_count()
        assert pool.simulated == spec.job_count()  # exactly once each
        assert pool.cache_hits == 0


class TestCancellation:
    def test_abandoning_the_stream_revokes_unclaimed_tickets(self, tmp_path):
        """Lease revocation is the cancellation primitive: closing the
        outcome iterator withdraws every published-but-unclaimed
        ticket, so no worker ever runs work nobody wants."""
        queue_dir = str(tmp_path / "queue")
        queue = JobQueue(queue_dir)
        executor = RemoteExecutor(
            queue_dir=queue_dir, max_workers=2, poll_interval=0.005,
            timeout=120.0,
        )
        jobs = tiny_spec(tools=("p4", "express")).jobs()
        stream = executor.submit(jobs)
        got = {}

        def consume_one():
            got["outcome"] = next(stream)

        consumer = threading.Thread(target=consume_one)
        consumer.start()
        # The window (max_workers * window_factor = 4) publishes, then
        # the coordinator blocks on the first outcome.  Serve exactly
        # that one by hand — no real workers anywhere.
        assert wait_until(lambda: len(queue.pending()) == 4)
        claim = queue.claim("w-manual")
        queue.complete(claim, {"ticket": claim.ticket, "value": 1.25,
                               "wall_seconds": 0.01, "attempts": 1,
                               "cache_hit": False, "error": None})
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        assert got["outcome"].value == 1.25

        stream.close()  # cancellation
        assert queue.pending() == []  # every unclaimed ticket revoked
        assert queue.claimed() == []

    def test_claimed_work_finishes_and_persists_through_cancel(self, tmp_path):
        """In-flight jobs complete and land in the shared cache even
        when the coordinator walks away — the cooperative-cancel
        contract, which is also what makes resume-after-cancel warm."""
        queue = JobQueue(str(tmp_path / "queue"))
        cache = ResultCache.on_disk(str(tmp_path / "cache"))
        executor = RemoteExecutor(
            queue_dir=queue.root, max_workers=2, poll_interval=0.005,
            timeout=120.0,
        )
        jobs = tiny_spec(tools=("p4", "express")).jobs()
        with WorkerPool(queue, cache, workers=2, poll_interval=0.005) as pool:
            stream = executor.submit(jobs)
            next(stream)
            stream.close()
            # Whatever was claimed at close time still completes.
            assert wait_until(lambda: not queue.claimed())
        assert 1 <= pool.processed < len(jobs) + 1
        # The consumed ticket's sample is durably in the shared cache.
        from repro.core.cache import MISSING

        assert cache.lookup(jobs[0]) is not MISSING


class TestFailureTransport:
    def test_worker_failure_reraises_original_type(self, tmp_path, monkeypatch):
        import repro.core.executors as executors_module

        def explode(job):
            raise ValueError("boom-123")

        monkeypatch.setattr(executors_module, "execute_job", explode)
        queue = JobQueue(str(tmp_path / "queue"))
        cache = ResultCache.on_disk(str(tmp_path / "cache"))
        executor = RemoteExecutor(
            queue_dir=queue.root, max_workers=2, poll_interval=0.005,
            timeout=120.0,
        )
        with WorkerPool(queue, cache, workers=2, poll_interval=0.005) as pool:
            with pytest.raises(ValueError, match="boom-123"):
                list(executor.submit(tiny_spec(tools=("p4",)).jobs()[:3]))
            # The worker that hit the failure is still serving.
            assert wait_until(lambda: pool.workers[0].failed + pool.workers[1].failed >= 1)

    def test_unresolvable_error_type_degrades_to_evaluation_error(self, tmp_path):
        from repro.distributed.executor import _rebuild_error

        rebuilt = _rebuild_error({"type": "SomeCustomClusterError",
                                  "message": "node fell over"})
        assert isinstance(rebuilt, EvaluationError)
        assert "SomeCustomClusterError" in str(rebuilt)
        assert "node fell over" in str(rebuilt)

    def test_repro_error_types_resolve(self, tmp_path):
        from repro.distributed.executor import _rebuild_error

        rebuilt = _rebuild_error({"type": "EvaluationError", "message": "bad"})
        assert type(rebuilt) is EvaluationError
        assert isinstance(_rebuild_error({"type": "OSError", "message": "io"}),
                          OSError)


class TestWorkerKnobs:
    def test_max_jobs_bounds_the_loop(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        cache = ResultCache()
        jobs = tiny_spec(tools=("p4",)).jobs()
        for index, job in enumerate(jobs):
            queue.enqueue("t-%06d" % index, job)
        worker = Worker(queue, cache, max_jobs=2, poll_interval=0.005)
        stats = worker.run()
        assert stats["processed"] == 2
        assert len(queue.pending()) == len(jobs) - 2

    def test_idle_exit_drains_then_stops(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue"))
        cache = ResultCache()
        queue.enqueue("t-000000", tiny_spec(tools=("p4",)).jobs()[0])
        worker = Worker(queue, cache, idle_seconds=0.2, poll_interval=0.01)
        stats = worker.run()  # returns by itself once drained + idle
        assert stats["processed"] == 1

    def test_remote_executor_times_out_without_workers(self, tmp_path):
        executor = RemoteExecutor(
            queue_dir=str(tmp_path / "queue"), max_workers=1,
            poll_interval=0.01, timeout=0.2,
        )
        with pytest.raises(EvaluationError, match="repro worker"):
            list(executor.submit(tiny_spec(tools=("p4",)).jobs()[:1]))

    def test_submit_requires_a_queue(self):
        executor = RemoteExecutor(max_workers=2)
        with pytest.raises(EvaluationError, match="queue_dir"):
            executor.submit([])

    def test_create_executor_remote(self, tmp_path):
        from repro.core.executors import create_executor

        executor = create_executor(3, backend="remote",
                                   queue_dir=str(tmp_path / "queue"))
        assert executor.name == "remote"
        assert executor.max_workers == 3
        with pytest.raises(EvaluationError, match="queue"):
            create_executor(2, backend="remote")
        with pytest.raises(EvaluationError, match="remote"):
            create_executor(2, backend="process",
                            queue_dir=str(tmp_path / "queue"))
