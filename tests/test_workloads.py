"""Tests for the shared workload generators and run accounting."""

import numpy as np
import pytest

from repro.apps import JpegCompression, ParallelFft2d
from repro.hardware import build_platform
from repro.tools import create_tool
from repro.workloads import (
    complex_field,
    dense_matrix,
    gradient_noise_image,
    integer_keys,
    message_size_sweep,
    processor_sweep,
)


class TestGenerators:
    def test_image_shape_dtype_range(self):
        image = gradient_noise_image(np.random.default_rng(1), 64, 48)
        assert image.shape == (64, 48)
        assert image.dtype == np.uint8
        assert image.min() >= 0 and image.max() <= 255

    def test_image_is_compressible_but_not_flat(self):
        image = gradient_noise_image(np.random.default_rng(1), 128, 128)
        assert image.std() > 10.0  # real structure
        # Low-frequency energy dominates: block means vary strongly.
        blocks = image[:128, :128].reshape(16, 8, 16, 8).mean(axis=(1, 3))
        assert blocks.std() > 5.0

    def test_image_deterministic_per_stream(self):
        a = gradient_noise_image(np.random.default_rng(7), 32, 32)
        b = gradient_noise_image(np.random.default_rng(7), 32, 32)
        assert np.array_equal(a, b)

    def test_image_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            gradient_noise_image(np.random.default_rng(0), 0, 10)

    def test_integer_keys_range(self):
        keys = integer_keys(np.random.default_rng(2), 1000)
        assert keys.dtype == np.int64
        assert keys.min() >= 0
        assert keys.max() < 2 ** 31

    def test_integer_keys_negative_count_rejected(self):
        with pytest.raises(ValueError):
            integer_keys(np.random.default_rng(2), -1)

    def test_complex_field(self):
        field = complex_field(np.random.default_rng(3), 8, 16)
        assert field.shape == (8, 16)
        assert field.dtype == np.complex128

    def test_dense_matrix(self):
        matrix = dense_matrix(np.random.default_rng(4), 5, 7)
        assert matrix.shape == (5, 7)


class TestSweeps:
    def test_message_size_sweep_doubles(self):
        assert message_size_sweep(8) == [1024, 2048, 4096, 8192]

    def test_message_size_sweep_validates(self):
        with pytest.raises(ValueError):
            message_size_sweep(0)

    def test_processor_sweep(self):
        assert processor_sweep(8) == [1, 2, 4, 8]
        assert processor_sweep(6) == [1, 2, 4]

    def test_processor_sweep_validates(self):
        with pytest.raises(ValueError):
            processor_sweep(0)


class TestRunAccounting:
    def test_jpeg_communication_volume_matches_data_flow(self):
        """Distribution moves (P-1)/P of the image; collection moves
        the workers' compressed streams; nothing else moves payload."""
        app = JpegCompression(height=128, width=128)
        platform = build_platform("alpha-fddi", processors=4)
        tool = create_tool("p4", platform)
        run = app.run(tool, processors=4)

        image_bytes = 128 * 128
        distributed = image_bytes * 3 // 4
        collected = sum(
            piece[1] for piece in run.output["pieces"][1:]
        )
        expected = distributed + collected
        assert run.stats["network_payload_bytes"] == expected

    def test_fft_moves_only_the_transpose(self):
        """With distributed start/end, the only bulk phase is the
        all-to-all transpose: (P-1)/P of the field crosses the wire."""
        size = 64
        app = ParallelFft2d(size=size)
        platform = build_platform("alpha-fddi", processors=4)
        tool = create_tool("p4", platform)
        run = app.run(tool, processors=4)

        field_bytes = size * size * 16  # complex128
        expected = field_bytes * 3 // 4
        assert run.stats["network_payload_bytes"] == expected

    def test_wire_bytes_exceed_payload(self):
        app = ParallelFft2d(size=32)
        platform = build_platform("sun-ethernet", processors=2)
        tool = create_tool("p4", platform)
        run = app.run(tool, processors=2)
        assert run.stats["network_wire_bytes"] > run.stats["network_payload_bytes"]

    def test_single_processor_run_moves_nothing(self):
        app = ParallelFft2d(size=32)
        platform = build_platform("sun-ethernet", processors=2)
        tool = create_tool("p4", platform)
        run = app.run(tool, processors=1)
        assert run.stats["network_payload_bytes"] == 0
        assert run.stats["network_messages"] == 0
