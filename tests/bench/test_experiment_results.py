"""Tests for ExperimentResult behaviour and fast experiment slices."""

from repro.bench.experiments import (
    ExperimentResult,
    run_fig2_broadcast,
    run_fig3_ring,
    run_table3,
)
from repro.bench.compare import CheckResult


class TestExperimentResult:
    def test_passed_requires_all_checks(self):
        good = ExperimentResult("X", "t", "body", [CheckResult("a", True)])
        bad = ExperimentResult("X", "t", "body", [CheckResult("a", False)])
        assert good.passed and not bad.passed

    def test_render_contains_body_and_checks(self):
        result = ExperimentResult("X", "Title", "BODY", [CheckResult("c1", True, "d")])
        text = result.render()
        assert "BODY" in text and "c1" in text and "Title" in text

    def test_repr_counts_checks(self):
        result = ExperimentResult(
            "X", "t", "b", [CheckResult("a", True), CheckResult("b", False)]
        )
        assert "1/2" in repr(result)


class TestFastSlices:
    """Reduced-size experiment runs keep the claims checkable in CI."""

    def test_table3_reduced_sizes(self):
        result = run_table3(sizes_kb=(16, 64))
        assert result.passed, result.render()

    def test_fig2_single_size(self):
        result = run_fig2_broadcast("ethernet", sizes_kb=(64,))
        assert result.passed, result.render()

    def test_fig3_single_size(self):
        result = run_fig3_ring("ethernet", sizes_kb=(64,))
        assert result.passed, result.render()

    def test_fig3_atm_single_size(self):
        result = run_fig3_ring("atm", sizes_kb=(64,))
        assert result.passed, result.render()
