"""Unit tests for table formatting, paper data, and the runner."""

import pytest

from repro.bench import paper_data
from repro.bench.runner import available_experiments, run_experiment
from repro.bench.tables import format_series, format_table
from repro.errors import ConfigurationError


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "333" in text

    def test_title_included(self):
        assert format_table(["a"], [["1"]], title="T").splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series("KB", [1, 2], {"p4": [1.0, 2.0], "pvm": [3.0, 4.0]})
        assert "p4 (ms)" in text
        assert "pvm (ms)" in text
        assert "1.000" in text

    def test_none_rendered_na(self):
        text = format_series("KB", [1], {"pvm": [None]})
        assert "n/a" in text


class TestPaperData:
    def test_table3_has_eight_combos(self):
        # 3 tools x 3 networks, minus Express on the WAN.
        assert len(paper_data.TABLE3_RTT_MS) == 8
        assert ("express", "sun-atm-wan") not in paper_data.TABLE3_RTT_MS

    def test_table3_rows_cover_all_sizes(self):
        for cells in paper_data.TABLE3_RTT_MS.values():
            assert set(cells) == set(paper_data.TABLE3_SIZES_KB)

    def test_table3_values_positive_and_increasing(self):
        for cells in paper_data.TABLE3_RTT_MS.values():
            ordered = [cells[kb] for kb in sorted(cells)]
            assert all(v > 0 for v in ordered)
            assert ordered == sorted(ordered)

    def test_table4_ring_inversion_recorded(self):
        eth = paper_data.TABLE4_EXPECTED_RANKINGS["sun-ethernet"]
        assert eth["ring"] == ["p4", "express", "pvm"]
        assert eth["snd/rcv"] == ["p4", "pvm", "express"]

    def test_figure_claims_reference_real_platforms(self):
        from repro.hardware import PLATFORM_NAMES

        for key, claim in paper_data.FIGURE_CLAIMS.items():
            if "platform" in claim:
                assert claim["platform"] in PLATFORM_NAMES, key

    def test_apl_axes_cover_four_platforms(self):
        assert set(paper_data.APL_PLATFORM_AXES) == {
            "alpha-fddi",
            "sp1-switch",
            "sun-atm-wan",
            "sun-ethernet",
        }


class TestRunner:
    def test_all_fourteen_artifacts_registered(self):
        ids = available_experiments()
        assert len(ids) == 14
        for expected in ["table1", "table3", "fig2-ethernet", "fig4", "fig5", "fig8"]:
            assert expected in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table99")

    def test_static_experiments_run_fast_and_pass(self):
        for exp_id in ("table1", "table2", "table5"):
            result = run_experiment(exp_id)
            assert result.passed, result.render()

    def test_render_includes_checks(self):
        result = run_experiment("table1")
        text = result.render()
        assert "T1" in text
        assert "[PASS]" in text
