"""Unit tests for the shape-check machinery."""

from repro.bench.compare import (
    CheckResult,
    all_passed,
    check_monotone_decreasing,
    check_monotone_increasing,
    check_ordering,
    check_ratio_band,
    check_within_factor,
    failures,
)


class TestCheckOrdering:
    def test_correct_order_passes(self):
        check = check_ordering("x", {"a": 1.0, "b": 2.0, "c": 3.0}, ["a", "b", "c"])
        assert check.passed

    def test_wrong_order_fails(self):
        check = check_ordering("x", {"a": 3.0, "b": 2.0}, ["a", "b"])
        assert not check.passed
        assert "expected" in check.detail

    def test_subset_ordering_ignores_other_keys(self):
        check = check_ordering("x", {"a": 1.0, "b": 2.0, "z": 0.1}, ["a", "b"])
        assert check.passed


class TestCheckWithinFactor:
    def test_exact_match_passes(self):
        assert check_within_factor("x", 10.0, 10.0, 1.5).passed

    def test_within_band_passes(self):
        assert check_within_factor("x", 14.0, 10.0, 1.5).passed
        assert check_within_factor("x", 7.0, 10.0, 1.5).passed

    def test_outside_band_fails(self):
        assert not check_within_factor("x", 16.0, 10.0, 1.5).passed
        assert not check_within_factor("x", 6.0, 10.0, 1.5).passed

    def test_non_positive_fails(self):
        assert not check_within_factor("x", 0.0, 10.0, 1.5).passed
        assert not check_within_factor("x", 10.0, 0.0, 1.5).passed


class TestMonotone:
    def test_decreasing_passes(self):
        assert check_monotone_decreasing("x", [4.0, 3.0, 2.0]).passed

    def test_increase_fails(self):
        assert not check_monotone_decreasing("x", [4.0, 5.0, 2.0]).passed

    def test_slack_tolerates_small_bumps(self):
        assert check_monotone_decreasing("x", [4.0, 4.1, 2.0], slack=0.05).passed

    def test_increasing_passes(self):
        assert check_monotone_increasing("x", [1.0, 2.0, 3.0]).passed

    def test_decrease_fails_increasing(self):
        assert not check_monotone_increasing("x", [1.0, 0.5]).passed

    def test_single_point_trivially_passes(self):
        assert check_monotone_decreasing("x", [1.0]).passed


class TestRatioBand:
    def test_inside_band(self):
        assert check_ratio_band("x", 2.0, 1.0, low=1.5, high=2.5).passed

    def test_below_low_fails(self):
        assert not check_ratio_band("x", 1.0, 1.0, low=1.5).passed

    def test_open_upper_bound(self):
        assert check_ratio_band("x", 100.0, 1.0, low=1.5).passed

    def test_zero_denominator_fails(self):
        assert not check_ratio_band("x", 1.0, 0.0, low=0.5).passed


class TestAggregation:
    def test_all_passed_and_failures(self):
        checks = [CheckResult("a", True), CheckResult("b", False, "why")]
        assert not all_passed(checks)
        assert [check.name for check in failures(checks)] == ["b"]

    def test_repr_contains_status(self):
        assert "PASS" in repr(CheckResult("a", True))
        assert "FAIL" in repr(CheckResult("a", False))
