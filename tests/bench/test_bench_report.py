"""bench_report.py input validation and strict-metric diagnostics."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "scripts", "bench_report.py"
))
_spec = importlib.util.spec_from_file_location("bench_report", _SCRIPT)
bench_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_report)


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def report(**metrics):
    return {"benchmark": "kernel", "metrics": metrics}


@pytest.fixture
def files(tmp_path):
    def build(current, baseline):
        return (write(tmp_path, "current.json", current),
                write(tmp_path, "baseline.json", baseline))
    return build


class TestMetricsKeyValidation:
    def test_current_without_metrics_mapping_exits_2(self, files, capsys):
        current, baseline = files({"results": []}, report(a={"speedup": 2.0}))
        assert bench_report.main([current, "--baseline", baseline]) == 2
        out = capsys.readouterr().out
        assert "not a benchmark report" in out
        assert "current.json" in out

    def test_baseline_without_metrics_mapping_exits_2(self, files, capsys):
        current, baseline = files(report(a={"speedup": 2.0}), {"metrics": 3})
        assert bench_report.main([current, "--baseline", baseline]) == 2
        assert "baseline.json" in capsys.readouterr().out


class TestStrictMetricDiagnostics:
    def test_baseline_predating_a_metric_says_regenerate(self, files, capsys):
        current, baseline = files(
            report(old={"speedup": 2.0}, new={"speedup": 3.0}),
            report(old={"speedup": 2.0}),
        )
        code = bench_report.main([
            current, "--baseline", baseline,
            "--strict-metric", "metrics.new.speedup",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "baseline predates this metric" in out
        assert "regenerate the baseline" in out

    def test_metric_missing_from_current_run_says_broken(self, files, capsys):
        current, baseline = files(
            report(old={"speedup": 2.0}),
            report(old={"speedup": 2.0}, gone={"speedup": 3.0}),
        )
        code = bench_report.main([
            current, "--baseline", baseline,
            "--strict-metric", "metrics.gone.speedup",
        ])
        assert code == 2
        assert "did not produce the metric" in capsys.readouterr().out

    def test_metric_in_neither_report_says_typo(self, files, capsys):
        current, baseline = files(
            report(old={"speedup": 2.0}), report(old={"speedup": 2.0}),
        )
        code = bench_report.main([
            current, "--baseline", baseline,
            "--strict-metric", "metrics.old.speedpu",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "typo?" in out
        assert "metrics.old.speedup" in out  # names what IS available


class TestHappyPath:
    def test_enforced_floor_passes_and_fails(self, files, capsys):
        current, baseline = files(
            report(k={"speedup": 1.9}), report(k={"speedup": 2.0}),
        )
        args = [current, "--baseline", baseline,
                "--strict-metric", "metrics.k.speedup=0.2"]
        assert bench_report.main(args) == 0
        capsys.readouterr()
        tight = [current, "--baseline", baseline,
                 "--strict-metric", "metrics.k.speedup=0.01"]
        assert bench_report.main(tight) == 1
        assert "failed their floor" in capsys.readouterr().out


class TestToleranceTable:
    def table(self, tmp_path, entry=None):
        return write(tmp_path, "tolerances.json", {
            "__doc__": "commentary entries are skipped",
            "kernel": entry if entry is not None
            else {"metrics.k.speedup": 0.2},
        })

    def test_table_floors_enforce_like_strict_metrics(self, files, tmp_path,
                                                      capsys):
        current, baseline = files(
            report(k={"speedup": 1.0}), report(k={"speedup": 2.0}),
        )
        code = bench_report.main([
            current, "--baseline", baseline,
            "--tolerances", self.table(tmp_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "failed their floor" in out
        assert "[strict]" in out

    def test_table_floor_within_tolerance_passes(self, files, tmp_path,
                                                 capsys):
        current, baseline = files(
            report(k={"speedup": 1.9}), report(k={"speedup": 2.0}),
        )
        assert bench_report.main([
            current, "--baseline", baseline,
            "--tolerances", self.table(tmp_path),
        ]) == 0

    def test_explicit_strict_metric_overrides_the_table(self, files,
                                                        tmp_path, capsys):
        # table would fail this 50% drop; the flag loosens it to 0.9
        current, baseline = files(
            report(k={"speedup": 1.0}), report(k={"speedup": 2.0}),
        )
        assert bench_report.main([
            current, "--baseline", baseline,
            "--tolerances", self.table(tmp_path),
            "--strict-metric", "metrics.k.speedup=0.9",
        ]) == 0

    def test_unlisted_benchmark_stamp_warns_and_enforces_nothing(
            self, files, tmp_path, capsys):
        unstamped = {"benchmark": "mystery",
                     "metrics": {"k": {"speedup": 1.0}}}
        current, baseline = files(
            unstamped, dict(unstamped, metrics={"k": {"speedup": 2.0}}),
        )
        assert bench_report.main([
            current, "--baseline", baseline,
            "--tolerances", self.table(tmp_path),
        ]) == 0
        assert "no entry for benchmark 'mystery'" in capsys.readouterr().out

    def test_malformed_table_is_exit_2(self, files, tmp_path, capsys):
        current, baseline = files(
            report(k={"speedup": 2.0}), report(k={"speedup": 2.0}),
        )
        bad = write(tmp_path, "bad.json", {"kernel": "not-a-mapping"})
        assert bench_report.main([
            current, "--baseline", baseline, "--tolerances", bad,
        ]) == 2
        assert "must map benchmark stamps" in capsys.readouterr().out

    def test_committed_table_matches_the_committed_baselines(self):
        # The real CI gate: every floor in the committed table must
        # name a metric the matching committed baseline actually has,
        # or the gate silently enforces nothing.
        root = os.path.join(os.path.dirname(_SCRIPT), "..",
                            "benchmarks", "data")
        with open(os.path.join(root, "bench_tolerances.json")) as handle:
            table = json.load(handle)
        stamps = {stamp: floors for stamp, floors in table.items()
                  if not stamp.startswith("_")}
        assert set(stamps) == {"kernel", "analytic"}
        for stamp, floors in stamps.items():
            with open(os.path.join(
                    root, "BENCH_%s_baseline.json" % stamp)) as handle:
                baseline = json.load(handle)
            paths = bench_report.flatten((), baseline, {})
            for path, tolerance in floors.items():
                assert path in paths, (stamp, path)
                assert 0.0 < tolerance < 1.0


class TestHistoryRecording:
    def test_history_db_appends_the_current_report(self, files, tmp_path,
                                                   capsys):
        current, baseline = files(
            report(k={"speedup": 2.0}), report(k={"speedup": 2.0}),
        )
        db = str(tmp_path / "history.db")
        assert bench_report.main([
            current, "--baseline", baseline, "--history-db", db,
        ]) == 0
        assert "recorded bench run" in capsys.readouterr().out

        from repro.history import HistoryStore

        with HistoryStore(db) as store:
            (run,) = store.list_runs(kind="bench")
            assert run["label"] == "kernel"
            trend = store.metric_trend("metrics.k.speedup")
            assert [point["value"] for point in trend] == [2.0]

    def test_unwritable_history_db_is_exit_2(self, files, tmp_path, capsys):
        current, baseline = files(
            report(k={"speedup": 2.0}), report(k={"speedup": 2.0}),
        )
        bad = str(tmp_path / "no-such-dir" / "history.db")
        assert bench_report.main([
            current, "--baseline", baseline, "--history-db", bad,
        ]) == 2
        assert "cannot record history" in capsys.readouterr().out
