"""bench_report.py input validation and strict-metric diagnostics."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "..", "scripts", "bench_report.py"
))
_spec = importlib.util.spec_from_file_location("bench_report", _SCRIPT)
bench_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_report)


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def report(**metrics):
    return {"benchmark": "kernel", "metrics": metrics}


@pytest.fixture
def files(tmp_path):
    def build(current, baseline):
        return (write(tmp_path, "current.json", current),
                write(tmp_path, "baseline.json", baseline))
    return build


class TestMetricsKeyValidation:
    def test_current_without_metrics_mapping_exits_2(self, files, capsys):
        current, baseline = files({"results": []}, report(a={"speedup": 2.0}))
        assert bench_report.main([current, "--baseline", baseline]) == 2
        out = capsys.readouterr().out
        assert "not a benchmark report" in out
        assert "current.json" in out

    def test_baseline_without_metrics_mapping_exits_2(self, files, capsys):
        current, baseline = files(report(a={"speedup": 2.0}), {"metrics": 3})
        assert bench_report.main([current, "--baseline", baseline]) == 2
        assert "baseline.json" in capsys.readouterr().out


class TestStrictMetricDiagnostics:
    def test_baseline_predating_a_metric_says_regenerate(self, files, capsys):
        current, baseline = files(
            report(old={"speedup": 2.0}, new={"speedup": 3.0}),
            report(old={"speedup": 2.0}),
        )
        code = bench_report.main([
            current, "--baseline", baseline,
            "--strict-metric", "metrics.new.speedup",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "baseline predates this metric" in out
        assert "regenerate the baseline" in out

    def test_metric_missing_from_current_run_says_broken(self, files, capsys):
        current, baseline = files(
            report(old={"speedup": 2.0}),
            report(old={"speedup": 2.0}, gone={"speedup": 3.0}),
        )
        code = bench_report.main([
            current, "--baseline", baseline,
            "--strict-metric", "metrics.gone.speedup",
        ])
        assert code == 2
        assert "did not produce the metric" in capsys.readouterr().out

    def test_metric_in_neither_report_says_typo(self, files, capsys):
        current, baseline = files(
            report(old={"speedup": 2.0}), report(old={"speedup": 2.0}),
        )
        code = bench_report.main([
            current, "--baseline", baseline,
            "--strict-metric", "metrics.old.speedpu",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "typo?" in out
        assert "metrics.old.speedup" in out  # names what IS available


class TestHappyPath:
    def test_enforced_floor_passes_and_fails(self, files, capsys):
        current, baseline = files(
            report(k={"speedup": 1.9}), report(k={"speedup": 2.0}),
        )
        args = [current, "--baseline", baseline,
                "--strict-metric", "metrics.k.speedup=0.2"]
        assert bench_report.main(args) == 0
        capsys.readouterr()
        tight = [current, "--baseline", baseline,
                 "--strict-metric", "metrics.k.speedup=0.01"]
        assert bench_report.main(tight) == 1
        assert "failed their floor" in capsys.readouterr().out
