"""Unit tests for repro.sim.kernel (Environment scheduling semantics)."""

import pytest

from repro.sim import Environment, Infinity


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_initial_time_default(self):
        assert Environment().now == 0.0

    def test_initial_time_custom(self):
        assert Environment(initial_time=10.0).now == 10.0

    def test_peek_empty(self, env):
        assert env.peek() == Infinity

    def test_peek_returns_next_event_time(self, env):
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == pytest.approx(2.0)

    def test_step_empty_raises(self, env):
        with pytest.raises(RuntimeError):
            env.step()

    def test_clock_never_goes_backwards(self, env):
        times = []

        def proc(env, delay):
            yield env.timeout(delay)
            times.append(env.now)

        for delay in [5.0, 1.0, 3.0, 1.0, 0.0]:
            env.process(proc(env, delay))
        env.run()
        assert times == sorted(times)


class TestRunUntil:
    def test_run_until_time(self, env):
        env.process(_ticker(env, period=1.0, count=100))
        env.run(until=5.5)
        assert env.now == pytest.approx(5.5)

    def test_run_until_time_in_past_rejected(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2.0)
            return "result"

        process = env.process(proc(env))
        assert env.run(until=process) == "result"
        assert env.now == pytest.approx(2.0)

    def test_run_until_processed_event_returns_immediately(self, env):
        timeout = env.timeout(1.0, value="v")
        env.run()
        assert env.run(until=timeout) == "v"

    def test_run_until_never_triggered_event_raises(self, env):
        orphan = env.event()
        env.timeout(1.0)
        with pytest.raises(RuntimeError):
            env.run(until=orphan)

    def test_run_to_exhaustion_returns_none(self, env):
        env.timeout(1.0)
        assert env.run() is None

    def test_until_events_beyond_horizon_stay_queued(self, env):
        fired = []

        def proc(env):
            yield env.timeout(10.0)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=5.0)
        assert fired == []
        env.run()
        assert fired == [10.0]


class TestTimeoutUntil:
    def test_fires_at_absolute_time(self, env):
        times = []

        def proc(env):
            yield env.timeout(1.5)
            yield env.timeout_until(4.0)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [4.0]

    def test_pop_time_is_exact(self, env):
        """No ``now + (at - now)`` float round-trip: the clock lands on
        the scheduled float bit-exactly."""
        # A pair where the relative-delay round-trip provably loses the
        # target: (at - now) rounds to 1.0 (ties-to-even) and adding
        # now back rounds to 1.0 again.
        start, target = 2.0 ** -53, 1.0 + 2.0 ** -52
        hit = []

        def proc(env):
            yield env.timeout(start)
            assert (env.now + (target - env.now)) != target  # the trap
            yield env.timeout_until(target)
            hit.append(env.now)

        env.process(proc(env))
        env.run()
        assert hit == [target]

    def test_past_time_rejected(self, env):
        def proc(env):
            yield env.timeout(2.0)
            yield env.timeout_until(1.0)

        process = env.process(proc(env))
        with pytest.raises(ValueError):
            env.run()
        assert not process.ok

    def test_carries_value(self, env):
        def proc(env):
            value = yield env.timeout_until(3.0, value="late")
            return value

        process = env.process(proc(env))
        assert env.run(until=process) == "late"

    def test_orders_with_relative_timeouts(self, env):
        order = []

        def absolute(env):
            yield env.timeout_until(2.0)
            order.append("absolute")

        def relative(env):
            yield env.timeout(1.0)
            order.append("relative")

        env.process(absolute(env))
        env.process(relative(env))
        env.run()
        assert order == ["relative", "absolute"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def workload(env, log):
            def proc(env, name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(20):
                env.process(proc(env, "p%d" % i, (i * 7) % 5))

        log_a, log_b = [], []
        env_a, env_b = Environment(), Environment()
        workload(env_a, log_a)
        workload(env_b, log_b)
        env_a.run()
        env_b.run()
        assert log_a == log_b


def _ticker(env, period, count):
    for _ in range(count):
        yield env.timeout(period)
