"""Unit tests for repro.sim.rng and repro.sim.trace."""

from repro.sim import RandomStreams, Tracer, NullTracer, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_seed_is_nonnegative_63bit(self):
        for name in ["x", "y", "ethernet.backoff"]:
            seed = derive_seed(123, name)
            assert 0 <= seed < 2 ** 63


class TestRandomStreams:
    def test_same_name_same_object(self):
        streams = RandomStreams(7)
        assert streams.stream("s") is streams.stream("s")

    def test_reproducible_sequence(self):
        a = RandomStreams(7).stream("s")
        b = RandomStreams(7).stream("s")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        first = streams.stream("one")
        draws_before = [first.random() for _ in range(5)]

        fresh = RandomStreams(7)
        fresh.stream("two").random()  # interleave another stream
        draws_after = [fresh.stream("one").random() for _ in range(5)]
        assert draws_before == draws_after

    def test_numpy_stream_reproducible(self):
        a = RandomStreams(7).numpy_stream("np")
        b = RandomStreams(7).numpy_stream("np")
        assert list(a.random(8)) == list(b.random(8))

    def test_seed_property(self):
        assert RandomStreams(99).seed == 99


class TestTracer:
    def test_record_and_iterate(self):
        tracer = Tracer()
        tracer.record(1.0, "send", nbytes=100)
        tracer.record(2.0, "recv", nbytes=100)
        assert len(tracer) == 2
        kinds = [record.kind for record in tracer]
        assert kinds == ["send", "recv"]

    def test_of_kind(self):
        tracer = Tracer()
        tracer.record(1.0, "send", nbytes=1)
        tracer.record(2.0, "recv", nbytes=2)
        tracer.record(3.0, "send", nbytes=3)
        sends = tracer.of_kind("send")
        assert [record["nbytes"] for record in sends] == [1, 3]

    def test_total(self):
        tracer = Tracer()
        for nbytes in [10, 20, 30]:
            tracer.record(0.0, "send", nbytes=nbytes)
        assert tracer.total("send", "nbytes") == 60.0

    def test_where(self):
        tracer = Tracer()
        tracer.record(1.0, "send", nbytes=10)
        tracer.record(2.0, "send", nbytes=999)
        big = tracer.where(lambda record: record["nbytes"] > 100)
        assert len(big) == 1

    def test_clear(self):
        tracer = Tracer()
        tracer.record(0.0, "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0.0, "x")
        assert len(tracer) == 0

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.record(0.0, "x")
        assert len(tracer) == 0

    def test_record_getitem(self):
        tracer = Tracer()
        tracer.record(5.0, "kind", field="value")
        record = list(tracer)[0]
        assert record["field"] == "value"
        assert record.time == 5.0
