"""Unit tests for repro.sim.process."""

import pytest

from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestProcessBasics:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return 99

        process = env.process(proc(env))
        env.run()
        assert process.value == 99

    def test_process_is_alive_until_done(self, env):
        def proc(env):
            yield env.timeout(2.0)

        process = env.process(proc(env))
        assert process.is_alive
        env.run(until=1.0)
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_processes_can_wait_on_each_other(self, env):
        def child(env):
            yield env.timeout(3.0)
            return "child-result"

        result = {}

        def parent(env):
            result["value"] = yield env.process(child(env))
            result["time"] = env.now

        env.process(parent(env))
        env.run()
        assert result == {"value": "child-result", "time": 3.0}

    def test_yield_from_composition(self, env):
        def inner(env):
            yield env.timeout(1.0)
            return 10

        def outer(env):
            a = yield from inner(env)
            b = yield from inner(env)
            return a + b

        process = env.process(outer(env))
        env.run()
        assert process.value == 20
        assert env.now == pytest.approx(2.0)

    def test_yielding_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        process = env.process(proc(env))
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()
        assert process.triggered
        assert not process.ok

    def test_exception_in_process_propagates(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("inside")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_exception_handled_by_waiting_parent(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child failed")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                caught.append(str(exc))

        env.process(parent(env))
        env.run()
        assert caught == ["child failed"]

    def test_waiting_on_already_finished_process(self, env):
        def child(env):
            yield env.timeout(1.0)
            return "early"

        result = {}

        def parent(env, child_proc):
            yield env.timeout(5.0)
            result["value"] = yield child_proc

        child_proc = env.process(child(env))
        env.process(parent(env, child_proc))
        env.run()
        assert result["value"] == "early"
        assert env.now == pytest.approx(5.0)


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        caught = []

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                caught.append((env.now, interrupt.cause))

        def attacker(env, victim_proc):
            yield env.timeout(2.0)
            victim_proc.interrupt(cause="stop now")

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        env.run()
        assert caught == [(2.0, "stop now")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                log.append((env.now, "interrupted"))
            yield env.timeout(1.0)
            log.append((env.now, "resumed"))

        def attacker(env, victim_proc):
            yield env.timeout(1.0)
            victim_proc.interrupt()

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        env.run(until=victim_proc)
        assert log == [(1.0, "interrupted"), (2.0, "resumed")]
        assert env.now == pytest.approx(2.0)

    def test_interrupting_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(0.5)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_self_interrupt_rejected(self, env):
        errors = []

        def proc(env):
            try:
                env.active_process.interrupt()
            except RuntimeError as exc:
                errors.append(str(exc))
            yield env.timeout(0.1)

        env.process(proc(env))
        env.run()
        assert len(errors) == 1

    def test_uncaught_interrupt_fails_process(self, env):
        def victim(env):
            yield env.timeout(100.0)

        def attacker(env, victim_proc):
            yield env.timeout(1.0)
            victim_proc.interrupt(cause="boom")

        victim_proc = env.process(victim(env))
        env.process(attacker(env, victim_proc))
        with pytest.raises(Interrupt):
            env.run()
        assert victim_proc.triggered

    def test_interrupt_does_not_consume_target_event(self, env):
        """The event the victim waited on still fires for other waiters."""
        log = []

        def victim(env, shared):
            try:
                yield shared
            except Interrupt:
                log.append("victim-interrupted")

        def bystander(env, shared):
            value = yield shared
            log.append("bystander-%s" % value)

        shared = env.event()
        victim_proc = env.process(victim(env, shared))
        env.process(bystander(env, shared))

        def driver(env):
            yield env.timeout(1.0)
            victim_proc.interrupt()
            yield env.timeout(1.0)
            shared.succeed("fired")

        env.process(driver(env))
        env.run()
        assert log == ["victim-interrupted", "bystander-fired"]


class TestActiveProcess:
    def test_active_process_outside_run_is_none(self, env):
        assert env.active_process is None

    def test_active_process_inside_run(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(0.1)

        process = env.process(proc(env))
        env.run()
        assert seen == [process]
