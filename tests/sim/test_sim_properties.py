"""Property-based tests (hypothesis) for the simulation kernel."""

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource, Store


delays = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


class TestSchedulingProperties:
    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        fired = []

        def proc(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        for delay in delays:
            env.process(proc(env, delay))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=delays)
    @settings(max_examples=60, deadline=None)
    def test_final_time_is_max_delay(self, delays):
        env = Environment()
        for delay in delays:
            env.timeout(delay)
        env.run()
        assert env.now == max(delays)

    @given(delays=delays, seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_determinism_across_identical_runs(self, delays, seed):
        def build_and_run():
            env = Environment()
            log = []

            def proc(env, index, delay):
                yield env.timeout(delay)
                log.append((env.now, index))

            for index, delay in enumerate(delays):
                env.process(proc(env, index, delay))
            env.run()
            return log

        assert build_and_run() == build_and_run()

    @given(delays=delays)
    @settings(max_examples=30, deadline=None)
    def test_equal_delays_fire_in_creation_order(self, delays):
        env = Environment()
        fired = []

        def proc(env, index, delay):
            yield env.timeout(delay)
            fired.append(index)

        for index, delay in enumerate(delays):
            env.process(proc(env, index, delay))
        env.run()
        # Stable sort by delay reproduces the firing order exactly.
        expected = [index for index, _ in sorted(enumerate(delays), key=lambda p: p[1])]
        assert fired == expected


class TestResourceProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=5),
        hold_times=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=25,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, capacity, hold_times):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        max_seen = [0]

        def proc(env, hold):
            with resource.request() as req:
                yield req
                max_seen[0] = max(max_seen[0], resource.count)
                yield env.timeout(hold)

        for hold in hold_times:
            env.process(proc(env, hold))
        env.run()
        assert max_seen[0] <= capacity
        assert resource.count == 0
        assert resource.queue_length == 0

    @given(
        hold_times=st.lists(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_exclusive_resource_total_busy_time(self, hold_times):
        """With capacity 1 and all arrivals at t=0, the finish time is the
        sum of hold times (no overlap, no idling)."""
        env = Environment()
        resource = Resource(env, capacity=1)

        def proc(env, hold):
            with resource.request() as req:
                yield req
                yield env.timeout(hold)

        for hold in hold_times:
            env.process(proc(env, hold))
        env.run()
        assert env.now == sum(hold_times)


class TestStoreProperties:
    @given(items=st.lists(st.integers(), min_size=0, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_store_preserves_items_and_order(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def getter(env):
            for _ in range(len(items)):
                received.append((yield store.get()))

        for item in items:
            store.put(item)
        env.process(getter(env))
        env.run()
        assert received == items

    @given(
        items=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=30),
        getter_count=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_item_lost_or_duplicated_with_concurrent_getters(self, items, getter_count):
        env = Environment()
        store = Store(env)
        received = []

        def getter(env, quota):
            for _ in range(quota):
                received.append((yield store.get()))

        base, extra = divmod(len(items), getter_count)
        for index in range(getter_count):
            quota = base + (1 if index < extra else 0)
            env.process(getter(env, quota))

        def putter(env):
            for item in items:
                yield env.timeout(0.1)
                store.put(item)

        env.process(putter(env))
        env.run()
        assert sorted(received) == sorted(items)


class TestHeapModel:
    @given(
        entries=st.lists(
            st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False), st.integers()),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_kernel_ordering_matches_reference_heap(self, entries):
        """The kernel's firing order equals a reference heapsort by
        (time, sequence) — the documented determinism contract."""
        env = Environment()
        fired = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            fired.append(tag)

        heap = []
        for seq, (delay, tag) in enumerate(entries):
            env.process(proc(env, (seq, tag), delay))
            heapq.heappush(heap, (delay, seq, (seq, tag)))
        env.run()

        expected = []
        while heap:
            _, _, tag = heapq.heappop(heap)
            expected.append(tag)
        assert fired == expected
