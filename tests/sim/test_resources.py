"""Unit tests for repro.sim.resources."""

import pytest

from repro.sim import Environment, FilterStore, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        resource = Resource(env, capacity=2)
        log = []

        def proc(env):
            with resource.request() as req:
                yield req
                log.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert log == [0.0, 0.0]

    def test_exclusive_use_serializes(self, env):
        resource = Resource(env, capacity=1)
        log = []

        def proc(env, name):
            with resource.request() as req:
                yield req
                log.append((env.now, name, "acquire"))
                yield env.timeout(2.0)
                log.append((env.now, name, "release"))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert log == [
            (0.0, "a", "acquire"),
            (2.0, "a", "release"),
            (2.0, "b", "acquire"),
            (4.0, "b", "release"),
        ]

    def test_fifo_fairness(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def proc(env, name, arrival):
            yield env.timeout(arrival)
            with resource.request() as req:
                yield req
                order.append(name)
                yield env.timeout(10.0)

        for index, name in enumerate("abcd"):
            env.process(proc(env, name, index * 0.1))
        env.run()
        assert order == ["a", "b", "c", "d"]

    def test_count_and_queue_length(self, env):
        resource = Resource(env, capacity=1)
        snapshots = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(5.0)

        def observer(env):
            yield env.timeout(1.0)
            snapshots.append((resource.count, resource.queue_length))

        env.process(holder(env))
        env.process(holder(env))
        env.process(observer(env))
        env.run()
        assert snapshots == [(1, 1)]

    def test_release_of_queued_request_cancels_it(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert resource.queue_length == 1
        resource.release(second)  # still queued: cancel, don't corrupt users
        assert resource.queue_length == 0
        assert resource.count == 1
        resource.release(first)
        assert resource.count == 0

    def test_context_manager_releases_on_exception(self, env):
        resource = Resource(env, capacity=1)

        def failing(env):
            with resource.request() as req:
                yield req
                raise ValueError("die holding the resource")

        def follower(env, log):
            with resource.request() as req:
                yield req
                log.append(env.now)

        log = []
        env.process(failing(env))
        env.process(follower(env, log))
        with pytest.raises(ValueError):
            env.run()
        env.run()
        assert log == [0.0]


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        result = {}

        def proc(env):
            store.put("item")
            result["value"] = yield store.get()

        env.process(proc(env))
        env.run()
        assert result["value"] == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        result = {}

        def getter(env):
            result["value"] = yield store.get()
            result["time"] = env.now

        def putter(env):
            yield env.timeout(3.0)
            store.put("late")

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert result == {"value": "late", "time": 3.0}

    def test_fifo_item_order(self, env):
        store = Store(env)
        received = []

        def getter(env):
            for _ in range(3):
                received.append((yield store.get()))

        for item in [1, 2, 3]:
            store.put(item)
        env.process(getter(env))
        env.run()
        assert received == [1, 2, 3]

    def test_fifo_getter_order(self, env):
        store = Store(env)
        received = []

        def getter(env, name, arrival):
            yield env.timeout(arrival)
            item = yield store.get()
            received.append((name, item))

        env.process(getter(env, "first", 0.0))
        env.process(getter(env, "second", 0.5))

        def putter(env):
            yield env.timeout(1.0)
            store.put("x")
            store.put("y")

        env.process(putter(env))
        env.run()
        assert received == [("first", "x"), ("second", "y")]

    def test_len_and_items(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        assert len(store) == 2
        assert store.items == ["a", "b"]


class TestFilterStore:
    def test_get_with_filter_skips_non_matching(self, env):
        store = FilterStore(env)
        result = {}

        def proc(env):
            result["value"] = yield store.get(lambda item: item % 2 == 0)

        store.put(1)
        store.put(3)
        store.put(4)
        env.process(proc(env))
        env.run()
        assert result["value"] == 4
        assert store.items == [1, 3]

    def test_filter_get_blocks_until_match(self, env):
        store = FilterStore(env)
        result = {}

        def getter(env):
            result["value"] = yield store.get(lambda item: item == "wanted")
            result["time"] = env.now

        def putter(env):
            store.put("junk")
            yield env.timeout(2.0)
            store.put("wanted")

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert result == {"value": "wanted", "time": 2.0}

    def test_multiple_filters_satisfied_independently(self, env):
        store = FilterStore(env)
        results = {}

        def getter(env, key, predicate):
            results[key] = yield store.get(predicate)

        env.process(getter(env, "even", lambda i: i % 2 == 0))
        env.process(getter(env, "odd", lambda i: i % 2 == 1))

        def putter(env):
            yield env.timeout(1.0)
            store.put(7)
            yield env.timeout(1.0)
            store.put(8)

        env.process(putter(env))
        env.run()
        assert results == {"even": 8, "odd": 7}

    def test_unfiltered_get_takes_oldest(self, env):
        store = FilterStore(env)
        store.put("old")
        store.put("new")
        result = {}

        def proc(env):
            result["value"] = yield store.get()

        env.process(proc(env))
        env.run()
        assert result["value"] == "old"
