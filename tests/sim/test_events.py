"""Unit tests for repro.sim.events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, PENDING, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed
        assert event._value is PENDING

    def test_value_unavailable_until_triggered(self, env):
        event = env.event()
        with pytest.raises(AttributeError):
            _ = event.value

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(41)
        assert event.triggered
        assert event.ok
        assert event.value == 41

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_unhandled_failure_propagates_from_run(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_does_not_propagate(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        event.defused = True
        env.run()  # must not raise

    def test_callbacks_invoked_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]
        assert event.processed

    def test_trigger_copies_state(self, env):
        source = env.event()
        source.succeed(7)
        mirror = env.event()
        mirror.trigger(source)
        assert mirror.triggered
        assert mirror.value == 7


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        env.timeout(3.0)
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_timeout_value(self, env):
        result = {}

        def proc(env):
            result["value"] = yield env.timeout(1.0, value="tick")

        env.process(proc(env))
        env.run()
        assert result["value"] == "tick"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_allowed(self, env):
        timeout = env.timeout(0.0)
        env.run()
        assert timeout.processed
        assert env.now == 0.0

    def test_timeouts_fire_in_order(self, env):
        order = []

        def waiter(env, delay, label):
            yield env.timeout(delay)
            order.append(label)

        env.process(waiter(env, 2.0, "b"))
        env.process(waiter(env, 1.0, "a"))
        env.process(waiter(env, 3.0, "c"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_equal_time_fifo_order(self, env):
        order = []

        def waiter(env, label):
            yield env.timeout(1.0)
            order.append(label)

        for label in "abcde":
            env.process(waiter(env, label))
        env.run()
        assert order == list("abcde")


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1 = env.timeout(1.0, value=1)
        t2 = env.timeout(2.0, value=2)
        result = {}

        def proc(env):
            cv = yield env.all_of([t1, t2])
            result["values"] = cv.values()
            result["time"] = env.now

        env.process(proc(env))
        env.run()
        assert result["values"] == [1, 2]
        assert result["time"] == pytest.approx(2.0)

    def test_any_of_fires_on_first(self, env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = {}

        def proc(env):
            cv = yield env.any_of([t1, t2])
            result["values"] = cv.values()
            result["time"] = env.now

        env.process(proc(env))
        env.run()
        assert result["values"] == ["fast"]
        assert result["time"] == pytest.approx(1.0)

    def test_empty_all_of_fires_immediately(self, env):
        fired = []

        def proc(env):
            yield env.all_of([])
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [0.0]

    def test_condition_value_mapping(self, env):
        t1 = env.timeout(1.0, value="x")
        cond = AllOf(env, [t1])
        env.run()
        value = cond.value
        assert t1 in value
        assert value[t1] == "x"
        assert value.keys() == [t1]

    def test_condition_failure_propagates(self, env):
        bad = env.event()

        def failer(env):
            yield env.timeout(1.0)
            bad.fail(RuntimeError("sub-event failed"))

        caught = []

        def waiter(env):
            try:
                yield AllOf(env, [bad, env.timeout(10.0)])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(failer(env))
        env.process(waiter(env))
        env.run()
        assert caught == ["sub-event failed"]

    def test_cross_environment_condition_rejected(self, env):
        other = Environment()
        t_here = env.timeout(1.0)
        t_there = other.timeout(1.0)
        with pytest.raises(ValueError):
            AnyOf(env, [t_here, t_there])


class TestRepr:
    def test_event_repr_states(self, env):
        event = env.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "ok" in repr(event)
        env.run()
        assert "processed" in repr(event)

    def test_timeout_repr(self, env):
        assert "Timeout(2.5)" in repr(Timeout(env, 2.5))
