"""Unit tests for platform assembly and the paper's platform catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    PLATFORM_DEFAULT_PROCESSORS,
    PLATFORM_NAMES,
    Node,
    Platform,
    SPARC_ELC,
    build_platform,
)
from repro.net import AllnodeSwitch, AtmLan, AtmWan, Ethernet, FddiRing
from repro.sim import Environment


class TestPlatformAssembly:
    def test_empty_platform_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            Platform("x", env, [], Ethernet(env, 1))

    def test_network_size_mismatch_rejected(self):
        env = Environment()
        nodes = [Node(env, 0, SPARC_ELC)]
        with pytest.raises(ConfigurationError):
            Platform("x", env, nodes, Ethernet(env, 2))

    def test_misnumbered_nodes_rejected(self):
        env = Environment()
        nodes = [Node(env, 5, SPARC_ELC)]
        with pytest.raises(ConfigurationError):
            Platform("x", env, nodes, Ethernet(env, 1))

    def test_node_lookup(self):
        platform = build_platform("sun-ethernet", processors=3)
        assert platform.node(2).node_id == 2
        with pytest.raises(ConfigurationError):
            platform.node(3)

    def test_describe_mentions_network(self):
        platform = build_platform("sun-ethernet", processors=2)
        assert "ethernet" in platform.describe()


class TestCatalog:
    def test_all_names_buildable(self):
        for name in PLATFORM_NAMES:
            platform = build_platform(name)
            assert platform.node_count == PLATFORM_DEFAULT_PROCESSORS[name]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_platform("cray-t3d")

    def test_processor_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            build_platform("sun-ethernet", processors=0)
        with pytest.raises(ConfigurationError):
            build_platform("sun-ethernet", processors=9)
        with pytest.raises(ConfigurationError):
            build_platform("sun-atm-wan", processors=5)

    @pytest.mark.parametrize(
        "name,network_type,host",
        [
            ("sun-ethernet", Ethernet, "SPARCstation ELC"),
            ("sun-atm-lan", AtmLan, "SPARCstation IPX"),
            ("sun-atm-wan", AtmWan, "SPARCstation IPX"),
            ("alpha-fddi", FddiRing, "DEC Alpha 3000"),
            ("sp1-switch", AllnodeSwitch, "IBM RS/6000-370"),
            ("sp1-ethernet", Ethernet, "IBM RS/6000-370"),
        ],
    )
    def test_recipes_match_paper(self, name, network_type, host):
        platform = build_platform(name, processors=2)
        assert isinstance(platform.network, network_type)
        assert platform.node_spec.name == host

    def test_atm_wan_is_wan_kind(self):
        platform = build_platform("sun-atm-wan", processors=2)
        assert platform.network.kind == "atm-wan"

    def test_fresh_environment_per_build(self):
        a = build_platform("sun-ethernet", processors=2)
        b = build_platform("sun-ethernet", processors=2)
        assert a.env is not b.env

    def test_seed_flows_into_rng(self):
        platform = build_platform("sun-ethernet", processors=2, seed=123)
        assert platform.rng.seed == 123

    def test_alpha_faster_than_sparc(self):
        """The spec ratios that drive Figures 5 vs 8: Alpha >> SPARC."""
        alpha = build_platform("alpha-fddi", processors=2).node_spec
        sparc = build_platform("sun-ethernet", processors=2).node_spec
        assert alpha.mips > 4 * sparc.mips
        assert alpha.mflops > 4 * sparc.mflops

    def test_sp1_between_alpha_and_sparc(self):
        """Paper: SP-1 apps slower than Alpha cluster, faster than SUNs."""
        alpha = build_platform("alpha-fddi", processors=2).node_spec
        sp1 = build_platform("sp1-switch", processors=2).node_spec
        sparc = build_platform("sun-ethernet", processors=2).node_spec
        assert sparc.mips < sp1.mips < alpha.mips
