"""Unit tests for repro.hardware.node."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import Node, NodeSpec, Work
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def spec():
    return NodeSpec("Test Machine", clock_mhz=50.0, mips=25.0, mflops=5.0, mem_mbps=50.0)


class TestWork:
    def test_defaults_are_zero(self):
        work = Work()
        assert work.flops == 0.0
        assert work.int_ops == 0.0
        assert work.mem_bytes == 0.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Work(flops=-1)

    def test_addition(self):
        total = Work(flops=1, int_ops=2) + Work(flops=3, mem_bytes=4)
        assert total == Work(flops=4, int_ops=2, mem_bytes=4)

    def test_scaling(self):
        assert 2 * Work(flops=3, int_ops=1) == Work(flops=6, int_ops=2)

    def test_equality_with_non_work(self):
        assert Work() != "not work"


class TestNodeSpec:
    def test_rates_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            NodeSpec("bad", clock_mhz=10, mips=0, mflops=1, mem_mbps=1)

    def test_duration_flops_only(self, spec):
        assert spec.duration(Work(flops=5e6)) == pytest.approx(1.0)

    def test_duration_int_ops_only(self, spec):
        assert spec.duration(Work(int_ops=25e6)) == pytest.approx(1.0)

    def test_duration_mem_only(self, spec):
        assert spec.duration(Work(mem_bytes=50e6)) == pytest.approx(1.0)

    def test_duration_is_additive(self, spec):
        combined = Work(flops=5e6, int_ops=25e6, mem_bytes=50e6)
        assert spec.duration(combined) == pytest.approx(3.0)

    def test_software_seconds_scaling(self, spec):
        reference = NodeSpec("ref", clock_mhz=40, mips=50.0, mflops=5, mem_mbps=30)
        # Cost calibrated at 50 MIPS runs 2x slower on a 25 MIPS host.
        assert spec.software_seconds(1.0, reference) == pytest.approx(2.0)

    def test_repr_contains_name(self, spec):
        assert "Test Machine" in repr(spec)


class TestNode:
    def test_use_cpu_advances_time(self, env, spec):
        node = Node(env, 0, spec)

        def proc(env):
            yield from node.use_cpu(2.0)

        env.process(proc(env))
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_use_cpu_zero_is_free(self, env, spec):
        node = Node(env, 0, spec)

        def proc(env):
            yield from node.use_cpu(0.0)
            yield env.timeout(0.0)

        env.process(proc(env))
        env.run()
        assert env.now == 0.0

    def test_use_cpu_negative_rejected(self, env, spec):
        node = Node(env, 0, spec)
        with pytest.raises(ValueError):
            list(node.use_cpu(-1.0))

    def test_concurrent_cpu_use_serializes(self, env, spec):
        """Two activities on one host take the sum of their times."""
        node = Node(env, 0, spec)

        def proc(env):
            yield from node.use_cpu(1.0)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_cpu_use_on_different_nodes_overlaps(self, env, spec):
        node_a = Node(env, 0, spec)
        node_b = Node(env, 1, spec)

        def proc(env, node):
            yield from node.use_cpu(1.0)

        env.process(proc(env, node_a))
        env.process(proc(env, node_b))
        env.run()
        assert env.now == pytest.approx(1.0)

    def test_execute_charges_spec_duration(self, env, spec):
        node = Node(env, 0, spec)

        def proc(env):
            yield from node.execute(Work(flops=10e6))

        env.process(proc(env))
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_software_cost_scales_from_reference(self, env, spec):
        node = Node(env, 0, spec)
        reference = NodeSpec("ref", clock_mhz=40, mips=50.0, mflops=5, mem_mbps=30)

        def proc(env):
            yield from node.software_cost(1.0, reference)

        env.process(proc(env))
        env.run()
        assert env.now == pytest.approx(2.0)
