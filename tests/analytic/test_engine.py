"""AnalyticEngine batching and the curve-level cache."""

import pytest

from repro.analytic import AnalyticEngine, CurveCache
from repro.analytic.curves import curve_key
from repro.core.jobs import MeasurementJob
from repro.errors import EvaluationError


def sweep(seed=0, sizes=(100, 200, 300, 400)):
    return [
        MeasurementJob("sendrecv", "p4", "sun-ethernet", 2,
                       (("nbytes", size),), seed=seed)
        for size in sizes
    ]


class TestBatching:
    def test_ineligible_job_is_refused_loudly(self):
        noisy = MeasurementJob("sendrecv", "p4", "sun-ethernet", 2,
                               (("nbytes", 64),), noise=0.1)
        with pytest.raises(EvaluationError, match="not analytic-eligible"):
            AnalyticEngine().compute_many([noisy])

    def test_one_evaluation_per_curve_in_a_batch(self):
        engine = AnalyticEngine()
        jobs = sweep() + [
            MeasurementJob("broadcast", "express", "sun-ethernet", 4,
                           (("nbytes", size),))
            for size in (100, 200)
        ]
        engine.compute_many(jobs)
        stats = engine.curves.stats()
        assert stats["curves"] == 2
        assert stats["evaluations"] == 2
        assert stats["points"] == 6

    def test_intra_batch_duplicates_collapse_to_one_point(self):
        """Same size under different seeds is one curve point."""
        engine = AnalyticEngine()
        jobs = sweep(seed=0) + sweep(seed=1) + sweep(seed=2)
        values = engine.compute_many(jobs)
        assert len(values) == len(jobs)
        stats = engine.curves.stats()
        assert stats["points"] == 4
        assert stats["evaluations"] == 1


class TestCurveCache:
    def test_resweep_with_fresh_seeds_is_all_hits(self):
        engine = AnalyticEngine()
        engine.compute_many(sweep(seed=0))
        evaluations = engine.curves.stats()["evaluations"]

        again = engine.compute_many(sweep(seed=99))
        stats = engine.curves.stats()
        assert stats["evaluations"] == evaluations  # no new model calls
        assert stats["hits"] == 4
        first = engine.compute_many(sweep(seed=0))
        assert [again[job] for job in sweep(seed=99)] == \
               [first[job] for job in sweep(seed=0)]

    def test_new_points_extend_an_existing_curve(self):
        engine = AnalyticEngine()
        engine.compute_many(sweep(sizes=(100, 200)))
        engine.compute_many(sweep(sizes=(200, 300)))
        stats = engine.curves.stats()
        assert stats["curves"] == 1
        assert stats["points"] == 3
        assert stats["evaluations"] == 2
        assert stats["hits"] == 1  # the revisited 200-byte point

    def test_shared_cache_across_engines(self):
        """Two engines over one CurveCache share evaluated points."""
        cache = CurveCache()
        AnalyticEngine(curves=cache).compute_many(sweep())
        AnalyticEngine(curves=cache).compute_many(sweep(seed=5))
        assert cache.stats()["evaluations"] == 1

    def test_lookup_and_snapshot(self):
        engine = AnalyticEngine()
        jobs = sweep(sizes=(100, 200))
        values = engine.compute_many(jobs)
        key = curve_key(jobs[0])
        curve = engine.curves.curve(key)
        assert curve == {100: values[jobs[0]], 200: values[jobs[1]]}
        known, missing = engine.curves.lookup(key, [100, 999])
        assert known == {100: values[jobs[0]]}
        assert missing == [999]
