"""Planner rules: exactly which jobs the analytic engine may answer.

Every rule here mirrors a contention argument documented in
``repro.analytic.planner`` — when one of these assertions moves, the
closed-form model's exactness proof has to move with it.
"""

import pytest

from repro.analytic import is_eligible, partition, why_ineligible
from repro.analytic.planner import size_param
from repro.core.jobs import MeasurementJob


def job(kind="sendrecv", tool="p4", platform="sun-ethernet", processors=2,
        size=1_024, param=None, seed=0, noise=0.0, params=None):
    if params is None:
        params = (((param or size_param(kind) or "nbytes"), size),)
    return MeasurementJob(kind, tool, platform, processors, params,
                          seed=seed, noise=noise)


class TestHardExclusions:
    def test_noise_routes_to_the_kernel(self):
        noisy = job(noise=0.05)
        assert not is_eligible(noisy)
        assert "noise" in why_ineligible(noisy)

    def test_unmodeled_kinds_route_to_the_kernel(self):
        assert "contended" in why_ineligible(job(kind="ring"))
        application = MeasurementJob(
            "application", "p4", "sun-ethernet", 4, (("app", "montecarlo"),))
        assert not is_eligible(application)

    def test_unmodeled_tool_routes_to_the_kernel(self):
        assert "tool" in why_ineligible(job(tool="my-custom-tool"))

    def test_malformed_sizes_surface_via_the_kernel(self):
        """Bad parameters must raise the *kernel's* error, so the
        planner refuses them rather than guessing."""
        assert not is_eligible(job(size=-1))
        assert not is_eligible(job(size=2.5))
        assert not is_eligible(job(size=True))
        assert not is_eligible(job(size=(1 << 24) + 1))
        assert is_eligible(job(size=1 << 24))
        assert "parameters" in why_ineligible(
            job(params=(("nbytes", 64), ("extra", 1))))

    def test_unbuildable_platform_routes_to_the_kernel(self):
        # sun-atm-wan tops out at 4 processors.
        assert "does not build" in why_ineligible(
            job(platform="sun-atm-wan", processors=8))
        assert is_eligible(job(platform="sun-atm-wan", processors=4))


class TestContentionRules:
    def test_sendrecv_is_uncontended_everywhere(self):
        for tool in ("express", "p4", "pvm", "mpi"):
            assert is_eligible(job(tool=tool, processors=8))

    def test_chain_tools_broadcast_at_any_size(self):
        """Express/PVM serialize every transfer through one chain."""
        for tool in ("express", "pvm"):
            assert is_eligible(job(kind="broadcast", tool=tool, processors=8))

    def test_binomial_broadcast_needs_a_switched_fabric(self):
        contended = job(kind="broadcast", tool="p4", processors=4)
        assert "contends" in why_ineligible(contended)
        assert is_eligible(job(kind="broadcast", tool="p4", processors=2))
        assert is_eligible(job(kind="broadcast", tool="mpi",
                               platform="sun-atm-lan", processors=8))
        assert is_eligible(job(kind="broadcast", tool="mpi",
                               platform="sp1-switch", processors=16))

    def test_express_global_sum_only_below_fan_in(self):
        assert is_eligible(job(kind="global_sum", tool="express", processors=2))
        assert "senders" in why_ineligible(
            job(kind="global_sum", tool="express", processors=4))

    def test_pvm_global_sum_is_trivially_exact(self):
        """No reduction primitive: 'Not Available' needs no kernel."""
        assert is_eligible(job(kind="global_sum", tool="pvm", processors=8))

    def test_binomial_reduce_needs_a_full_tree(self):
        assert "siblings" in why_ineligible(
            job(kind="global_sum", tool="p4", platform="sp1-switch",
                processors=3))
        assert is_eligible(job(kind="global_sum", tool="p4",
                               platform="sp1-switch", processors=8))
        # Power-of-two alone is not enough on a shared segment.
        assert not is_eligible(job(kind="global_sum", tool="p4", processors=4))
        assert is_eligible(job(kind="global_sum", tool="p4", processors=2))


class TestPartition:
    def test_partition_preserves_order_and_covers_input(self):
        jobs = [
            job(size=100),                          # analytic
            job(kind="ring", params=(("nbytes", 100),)),  # event
            job(size=200),                          # analytic
            job(noise=0.1),                         # event
            job(kind="broadcast", tool="express"),  # analytic
        ]
        analytic, event = partition(jobs)
        assert analytic == [jobs[0], jobs[2], jobs[4]]
        assert event == [jobs[1], jobs[3]]
        assert sorted(analytic + event, key=jobs.index) == jobs

    def test_size_param_covers_exactly_the_modeled_kinds(self):
        assert size_param("sendrecv") == "nbytes"
        assert size_param("broadcast") == "nbytes"
        assert size_param("global_sum") == "vector_ints"
        assert size_param("ring") is None
        assert size_param("application") is None
