"""Property-based equivalence: admitted jobs match the event kernel.

The analytic engine's core safety claim is *conditional* bit-identity:
whenever the planner admits a job, the closed-form answer must equal
the event kernel's answer down to the last IEEE-754 bit — and whenever
it cannot promise that, the job must route to the kernel with a
stated reason.  One randomized-job generator backs two harnesses
(mirroring ``tests/core/test_cache_properties.py``): with
``hypothesis`` installed its engine drives and shrinks the seeds;
without it, a fixed spread of seeds exercises the same property.
"""

import random
import struct

import pytest

from repro.analytic import AnalyticEngine, is_eligible, why_ineligible
from repro.core.jobs import MeasurementJob, execute_job

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare images
    HAVE_HYPOTHESIS = False

FALLBACK_SEEDS = range(0, 200, 8)

#: Catalog platforms and their maximum processor counts.
PLATFORM_MAX = {
    "sun-ethernet": 8,
    "sun-atm-lan": 8,
    "sun-atm-wan": 4,
    "alpha-fddi": 8,
    "sp1-switch": 16,
    "sp1-ethernet": 16,
}

#: Modeled kinds and their size-axis parameter.
SIZE_PARAMS = {"sendrecv": "nbytes", "broadcast": "nbytes", "global_sum": "vector_ints"}

TOOLS = ("express", "p4", "pvm", "mpi")


def random_candidate(rng: random.Random) -> MeasurementJob:
    """A random point from the modeled grid — eligible or not."""
    kind = rng.choice(sorted(SIZE_PARAMS))
    platform = rng.choice(sorted(PLATFORM_MAX))
    return MeasurementJob(
        kind=kind,
        tool=rng.choice(TOOLS),
        platform=platform,
        processors=rng.randint(2, PLATFORM_MAX[platform]),
        params=((SIZE_PARAMS[kind], rng.randint(0, 16_384)),),
        seed=rng.randint(0, 2 ** 31),
    )


def assert_bit_identical(analytic, kernel, job):
    if kernel is None or analytic is None:
        assert analytic is None and kernel is None, job.label()
        return
    assert struct.pack("<d", analytic) == struct.pack("<d", kernel), (
        "%s: analytic %r != kernel %r" % (job.label(), analytic, kernel)
    )


def check_admitted_job_matches_kernel(seed: int) -> None:
    rng = random.Random(seed)
    job = random_candidate(rng)
    if not is_eligible(job):
        # The planner must always articulate the fallback reason.
        assert isinstance(why_ineligible(job), str)
        return
    assert why_ineligible(job) is None
    assert_bit_identical(AnalyticEngine().compute(job), execute_job(job), job)


if HAVE_HYPOTHESIS:

    class TestWithHypothesis:
        @settings(max_examples=25, deadline=None)
        @given(st.integers(min_value=0, max_value=2 ** 63))
        def test_admitted_job_matches_kernel(self, seed):
            check_admitted_job_matches_kernel(seed)

else:  # pragma: no cover - exercised on bare images

    class TestWithRandomSeeds:
        @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
        def test_admitted_job_matches_kernel(self, seed):
            check_admitted_job_matches_kernel(seed)


class TestDeterministicGrid:
    """A fixed mixed-curve batch through ``compute_many``."""

    def grid(self):
        jobs = []
        for size in (0, 1, 100, 1460, 1461, 8_192):
            jobs.append(MeasurementJob(
                "sendrecv", "p4", "sun-ethernet", 2, (("nbytes", size),)))
            jobs.append(MeasurementJob(
                "broadcast", "express", "sun-atm-lan", 8, (("nbytes", size),)))
            jobs.append(MeasurementJob(
                "global_sum", "mpi", "sp1-switch", 8, (("vector_ints", size),)))
        return jobs

    def test_batch_matches_kernel_bit_for_bit(self):
        jobs = self.grid()
        values = AnalyticEngine().compute_many(jobs)
        for job in jobs:
            assert_bit_identical(values[job], execute_job(job), job)

    def test_pvm_global_sum_is_not_available(self):
        """PVM has no reduction primitive: both engines say None."""
        job = MeasurementJob(
            "global_sum", "pvm", "sun-ethernet", 4, (("vector_ints", 512),))
        assert execute_job(job) is None
        assert AnalyticEngine().compute(job) is None

    def test_seed_does_not_move_deterministic_curves(self):
        """noise=0 jobs draw nothing: every seed sits on one curve."""
        base = MeasurementJob(
            "sendrecv", "mpi", "alpha-fddi", 2, (("nbytes", 4_096),), seed=0)
        engine = AnalyticEngine()
        reference = engine.compute(base)
        for seed in (1, 7, 123456):
            twin = MeasurementJob(
                base.kind, base.tool, base.platform, base.processors,
                base.params, seed=seed)
            assert_bit_identical(engine.compute(twin), reference, twin)
            assert_bit_identical(execute_job(twin), reference, twin)
