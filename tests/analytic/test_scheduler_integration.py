"""Scheduler integration: engine="auto"/"analytic" end to end.

The contract under test: switching a run to the analytic engine is a
pure performance decision — the exported results (values, sample
order, statistics) are bit-identical to an all-event run, telemetry
says which engine produced each sample, and strict ``"analytic"``
mode refuses rather than silently simulating.
"""

import pytest

from repro.analytic import is_eligible
from repro.core.progress import JobFinished
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec
from repro.errors import EvaluationError

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    kwargs = dict(_TINY)
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


class TestAutoEngine:
    def test_auto_run_exports_bit_identical_to_event(self):
        spec = tiny_spec()
        event = Scheduler(engine="event").run(spec).to_dict()
        auto = Scheduler(engine="auto").run(spec).to_dict()
        assert auto["samples"] == event["samples"]  # values AND order

    def test_telemetry_marks_the_producing_engine(self):
        spec = tiny_spec()
        scheduler = Scheduler(engine="auto")
        scheduler.run(spec)
        jobs = spec.jobs()
        analytic = [job for job in jobs if is_eligible(job)]
        assert analytic  # the tiny spec must exercise both paths
        assert len(analytic) < len(jobs)
        for job in jobs:
            expected = "analytic" if is_eligible(job) else "event"
            assert scheduler.telemetry[job].engine == expected

    def test_finished_events_carry_the_engine(self):
        spec = tiny_spec()
        events = []
        Scheduler(engine="auto").run(spec, on_event=events.append)
        engines = {event.job: event.engine for event in events
                   if isinstance(event, JobFinished)}
        assert set(engines.values()) == {"analytic", "event"}
        for job, engine in engines.items():
            assert engine == ("analytic" if is_eligible(job) else "event")

    def test_warm_rerun_is_all_cache_hits(self):
        spec = tiny_spec()
        scheduler = Scheduler(engine="auto")
        scheduler.run(spec)
        simulated = scheduler.simulations_run
        scheduler.run(spec)
        assert scheduler.simulations_run == simulated
        assert scheduler.cache.hits == spec.job_count()

    def test_fresh_seeds_reuse_curves_not_results(self):
        """A re-sweep with new seeds misses the job cache but hits the
        curve cache: zero new vectorized evaluations."""
        scheduler = Scheduler(engine="auto")
        scheduler.run(tiny_spec(seeds=(0,)))
        evaluations = scheduler.analytic.curves.stats()["evaluations"]
        scheduler.run(tiny_spec(seeds=(7,)))
        stats = scheduler.analytic.curves.stats()
        assert stats["evaluations"] == evaluations
        assert stats["hits"] > 0


class TestStrictAndValidation:
    def test_unknown_engine_fails_at_construction(self):
        with pytest.raises(EvaluationError, match="unknown engine"):
            Scheduler(engine="closed-form")

    def test_event_scheduler_builds_no_analytic_engine(self):
        assert Scheduler().analytic is None
        assert Scheduler(engine="auto").analytic is not None

    def test_strict_analytic_refuses_ineligible_jobs(self):
        """engine="analytic" must not silently fall back."""
        spec = tiny_spec()  # contains ring + application jobs
        with pytest.raises(EvaluationError, match="engine='analytic'"):
            Scheduler(engine="analytic").run(spec)

    def test_strict_refusal_names_the_job_and_reason(self):
        spec = tiny_spec()
        with pytest.raises(EvaluationError) as failure:
            Scheduler(engine="analytic").run(spec)
        message = str(failure.value)
        assert "broadcast[nbytes=1024] p4@sun-ethernet/4" in message
        assert "contends" in message
        assert "engine='auto'" in message  # the fix is suggested
