"""scripts/ordering_check.py, promoted from printout to assertions.

The paper's qualitative collective-ordering claims (Figs. 2-3): p4's
leaner collectives beat pvm's and express's on every medium, costs
grow monotonically with message size, and express's chunked broadcast
is the slowest at large messages.  `repro check --list` names this
suite as the dynamic counterpart of the static determinism pack —
the lint proves nothing about *values*, these tests pin the shapes.
"""

import numpy as np
import pytest

from repro.hardware import build_platform
from repro.tools import create_tool

TOOLS = ("p4", "pvm", "express")
PLATFORMS = ("sun-ethernet", "sun-atm-wan")
SIZES = (1024, 65536)


def _spmd_max_time(tool_name, platform_name, program, processors=4):
    platform = build_platform(platform_name, processors=processors)
    tool = create_tool(tool_name, platform)
    results = tool.run_spmd(program)
    return max(results)


def broadcast_time(tool_name, platform_name, nbytes):
    def program(comm):
        payload = b"x" if comm.rank == 0 else None
        yield from comm.broadcast(0, payload=payload, nbytes=nbytes)
        return comm.env.now

    return _spmd_max_time(tool_name, platform_name, program)


def ring_time(tool_name, platform_name, nbytes):
    def program(comm):
        yield from comm.ring_shift(nbytes=nbytes)
        return comm.env.now

    return _spmd_max_time(tool_name, platform_name, program)


def global_sum_time(tool_name, platform_name, nints):
    def program(comm):
        vector = np.ones(nints, dtype=np.int32)
        yield from comm.global_sum(vector)
        return comm.env.now

    return _spmd_max_time(tool_name, platform_name, program)


class TestBroadcastOrdering:
    @pytest.mark.parametrize("platform", PLATFORMS)
    @pytest.mark.parametrize("nbytes", SIZES)
    def test_p4_broadcast_is_fastest(self, platform, nbytes):
        times = {t: broadcast_time(t, platform, nbytes) for t in TOOLS}
        assert times["p4"] < times["pvm"]
        assert times["p4"] < times["express"]

    @pytest.mark.parametrize("platform", PLATFORMS)
    def test_express_chunked_broadcast_slowest_at_large_messages(self, platform):
        times = {t: broadcast_time(t, platform, 65536) for t in TOOLS}
        assert times["express"] > times["pvm"] > times["p4"]

    @pytest.mark.parametrize("platform", PLATFORMS)
    @pytest.mark.parametrize("tool", TOOLS)
    def test_broadcast_cost_grows_with_message_size(self, platform, tool):
        small, large = (broadcast_time(tool, platform, n) for n in SIZES)
        assert small < large


class TestRingOrdering:
    @pytest.mark.parametrize("platform", PLATFORMS)
    @pytest.mark.parametrize("nbytes", SIZES)
    def test_p4_ring_shift_is_fastest(self, platform, nbytes):
        times = {t: ring_time(t, platform, nbytes) for t in TOOLS}
        assert times["p4"] < times["pvm"]
        assert times["p4"] < times["express"]

    @pytest.mark.parametrize("platform", PLATFORMS)
    @pytest.mark.parametrize("tool", TOOLS)
    def test_ring_cost_grows_with_message_size(self, platform, tool):
        small, large = (ring_time(tool, platform, n) for n in SIZES)
        assert small < large


class TestGlobalSumOrdering:
    @pytest.mark.parametrize("platform", PLATFORMS)
    @pytest.mark.parametrize("nints", (10000, 100000))
    def test_p4_global_sum_beats_express(self, platform, nints):
        assert (global_sum_time("p4", platform, nints)
                < global_sum_time("express", platform, nints))

    @pytest.mark.parametrize("platform", PLATFORMS)
    @pytest.mark.parametrize("tool", ("p4", "express"))
    def test_global_sum_cost_grows_with_vector_length(self, platform, tool):
        assert (global_sum_time(tool, platform, 10000)
                < global_sum_time(tool, platform, 100000))
