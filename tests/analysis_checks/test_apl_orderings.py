"""scripts/apl_check.py, promoted from printout to assertions.

The paper's application-level (APL) shape claims: serial execution is
tool-independent, the embarrassingly parallel Monte Carlo app scales
near-linearly with p4 <= express <= pvm, communication-heavy apps
still rank p4 first, and a faster interconnect (FDDI vs Ethernet)
dominates at every point.  Workloads are scaled down from the
scripts' defaults — the orderings are qualitative, not magnitude-
dependent, and tier-1 must stay fast.
"""

from functools import lru_cache

import pytest

from repro.apps import create_application
from repro.hardware import build_platform
from repro.tools import create_tool

TOOLS = ("p4", "pvm", "express")
PROCESSORS = (1, 2, 4)
SMALL = {"montecarlo": {"samples": 100000}, "fft2d": {"size": 128}}


@lru_cache(maxsize=None)
def elapsed(app_name, tool_name, platform_name, processors):
    app = create_application(app_name, **SMALL[app_name])
    platform = build_platform(platform_name, processors=max(processors, 1))
    tool = create_tool(tool_name, platform)
    result = app.run(tool, processors=processors, check=False)
    return result.elapsed_seconds


class TestSerialBaseline:
    @pytest.mark.parametrize("app_name", sorted(SMALL))
    @pytest.mark.parametrize("platform", ("sun-ethernet", "alpha-fddi"))
    def test_serial_time_is_tool_independent(self, app_name, platform):
        times = {t: elapsed(app_name, t, platform, 1) for t in TOOLS}
        assert times["p4"] == times["pvm"] == times["express"]


class TestMonteCarloScaling:
    @pytest.mark.parametrize("platform", ("sun-ethernet", "alpha-fddi"))
    @pytest.mark.parametrize("tool", TOOLS)
    def test_near_linear_speedup(self, platform, tool):
        times = [elapsed("montecarlo", tool, platform, p) for p in PROCESSORS]
        assert times[0] > times[1] > times[2]

    @pytest.mark.parametrize("platform", ("sun-ethernet", "alpha-fddi"))
    @pytest.mark.parametrize("processors", (2, 4))
    def test_tool_overhead_ordering(self, platform, processors):
        times = {t: elapsed("montecarlo", t, platform, processors)
                 for t in TOOLS}
        assert times["p4"] <= times["express"] <= times["pvm"]


class TestCommunicationHeavyOrdering:
    @pytest.mark.parametrize("platform", ("sun-ethernet", "alpha-fddi"))
    @pytest.mark.parametrize("processors", (2, 4))
    def test_p4_leads_on_fft2d(self, platform, processors):
        times = {t: elapsed("fft2d", t, platform, processors) for t in TOOLS}
        assert times["p4"] <= times["pvm"]
        assert times["p4"] <= times["express"]


class TestPlatformOrdering:
    @pytest.mark.parametrize("app_name", sorted(SMALL))
    @pytest.mark.parametrize("tool", TOOLS)
    @pytest.mark.parametrize("processors", PROCESSORS)
    def test_fddi_platform_dominates_ethernet(self, app_name, tool, processors):
        assert (elapsed(app_name, tool, "alpha-fddi", processors)
                < elapsed(app_name, tool, "sun-ethernet", processors))
