"""Property-based tests for the network substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import AllnodeSwitch, AtmLan, AtmWan, Ethernet, FddiRing
from repro.sim import Environment

MEDIA = [Ethernet, FddiRing, AtmLan, AtmWan, AllnodeSwitch]

sizes = st.integers(min_value=0, max_value=256 * 1024)


class TestTransferProperties:
    @pytest.mark.parametrize("factory", MEDIA)
    @given(nbytes=sizes)
    @settings(max_examples=25, deadline=None)
    def test_duration_positive_and_finite(self, factory, nbytes):
        env = Environment()
        network = factory(env, 2)
        process = env.process(network.transfer(0, 1, nbytes))
        duration = env.run(until=process)
        assert 0 < duration < 60.0

    @pytest.mark.parametrize("factory", MEDIA)
    @given(a=sizes, b=sizes)
    @settings(max_examples=25, deadline=None)
    def test_duration_monotone_in_size(self, factory, a, b):
        small, large = sorted((a, b))

        def duration(nbytes):
            env = Environment()
            network = factory(env, 2)
            process = env.process(network.transfer(0, 1, nbytes))
            return env.run(until=process)

        assert duration(small) <= duration(large) + 1e-12

    @pytest.mark.parametrize("factory", MEDIA)
    @given(nbytes=sizes)
    @settings(max_examples=20, deadline=None)
    def test_payload_accounting_conserved(self, factory, nbytes):
        env = Environment()
        network = factory(env, 2)
        process = env.process(network.transfer(0, 1, nbytes))
        env.run(until=process)
        assert network.stats.payload_bytes == nbytes
        assert network.stats.wire_bytes >= nbytes
        assert network.stats.messages == 1

    @pytest.mark.parametrize("factory", MEDIA)
    @given(nbytes=st.integers(min_value=1, max_value=64 * 1024))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, factory, nbytes):
        def run():
            env = Environment()
            network = factory(env, 4)
            process = env.process(network.transfer(0, 3, nbytes))
            return env.run(until=process)

        assert run() == run()

    @pytest.mark.parametrize("factory", MEDIA)
    @given(
        messages=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=1, max_value=32 * 1024),
            ).filter(lambda m: m[0] != m[1]),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_concurrent_transfers_all_complete(self, factory, messages):
        env = Environment()
        network = factory(env, 4)
        done = []

        def sender(env, src, dst, nbytes):
            yield from network.transfer(src, dst, nbytes)
            done.append((src, dst, nbytes))

        for src, dst, nbytes in messages:
            env.process(sender(env, src, dst, nbytes))
        env.run()
        assert len(done) == len(messages)
        assert network.stats.payload_bytes == sum(m[2] for m in messages)

    @given(nbytes=st.integers(min_value=1, max_value=64 * 1024))
    @settings(max_examples=15, deadline=None)
    def test_shared_ethernet_never_faster_than_solo(self, nbytes):
        def run(concurrent):
            env = Environment()
            network = Ethernet(env, 4)
            finish = []

            def sender(env, src, dst):
                yield from network.transfer(src, dst, nbytes)
                finish.append(env.now)

            env.process(sender(env, 0, 1))
            if concurrent:
                env.process(sender(env, 2, 3))
            env.run()
            return min(finish)

        assert run(concurrent=True) >= run(concurrent=False) - 1e-12
