"""Unit tests for the concrete media models."""

import pytest

from repro.errors import NetworkError
from repro.net import AllnodeSwitch, AtmLan, AtmWan, Ethernet, FddiRing
from repro.sim import Environment


def run_transfer(network, src, dst, nbytes):
    """Run a single transfer to completion; return (duration, env)."""
    env = network.env
    process = env.process(network.transfer(src, dst, nbytes))
    duration = env.run(until=process)
    return duration, env


@pytest.fixture
def env():
    return Environment()


class TestEndpointValidation:
    @pytest.mark.parametrize("factory", [Ethernet, FddiRing, AtmLan, AtmWan, AllnodeSwitch])
    def test_out_of_range_endpoint(self, env, factory):
        network = factory(env, 4)
        with pytest.raises(NetworkError):
            list(network.transfer(0, 4, 100))
        with pytest.raises(NetworkError):
            list(network.transfer(-1, 1, 100))

    @pytest.mark.parametrize("factory", [Ethernet, FddiRing, AtmLan, AtmWan, AllnodeSwitch])
    def test_self_transfer_rejected(self, env, factory):
        network = factory(env, 4)
        with pytest.raises(NetworkError):
            list(network.transfer(2, 2, 100))

    def test_single_host_network_allowed_but_cannot_send(self, env):
        network = Ethernet(env, 1)
        with pytest.raises(NetworkError):
            list(network.transfer(0, 0, 1))

    def test_zero_host_network_rejected(self, env):
        with pytest.raises(NetworkError):
            Ethernet(env, 0)


class TestEthernet:
    def test_single_frame_time(self, env):
        network = Ethernet(env, 2)
        duration, _ = run_transfer(network, 0, 1, 1000)
        # (1000 + 78) bytes at 10 Mb/s + propagation.
        expected = 1078 * 8 / 10e6 + network.propagation_seconds
        assert duration == pytest.approx(expected)

    def test_multi_frame_time(self, env):
        network = Ethernet(env, 2)
        duration, _ = run_transfer(network, 0, 1, 4096)
        wire = network.frame_format.total_wire_bytes(4096)
        assert duration == pytest.approx(wire * 8 / 10e6 + network.propagation_seconds)

    def test_zero_byte_message_is_min_frame(self, env):
        network = Ethernet(env, 2)
        duration, _ = run_transfer(network, 0, 1, 0)
        assert duration == pytest.approx(84 * 8 / 10e6 + network.propagation_seconds)

    def test_shared_medium_serializes_senders(self, env):
        """Two simultaneous 8 KB sends take twice as long as one."""
        network = Ethernet(env, 4)

        solo_env = Environment()
        solo = Ethernet(solo_env, 4)
        solo_duration, _ = run_transfer(solo, 0, 1, 8192)

        done = []

        def sender(env, src, dst):
            yield from network.transfer(src, dst, 8192)
            done.append(env.now)

        env.process(sender(env, 0, 1))
        env.process(sender(env, 2, 3))
        env.run()
        assert max(done) == pytest.approx(2 * solo_duration, rel=0.02)

    def test_interleaving_is_per_frame(self, env):
        """Frames from concurrent messages interleave, so both finish
        close together rather than strictly one after the other."""
        network = Ethernet(env, 4)
        done = []

        def sender(env, src, dst):
            yield from network.transfer(src, dst, 8192)
            done.append(env.now)

        env.process(sender(env, 0, 1))
        env.process(sender(env, 2, 3))
        env.run()
        spread = max(done) - min(done)
        frame_time = network.frame_seconds(1460)
        assert spread <= 2 * frame_time

    def test_stats_account_traffic(self, env):
        network = Ethernet(env, 2)
        run_transfer(network, 0, 1, 3000)
        assert network.stats.messages == 1
        assert network.stats.payload_bytes == 3000
        assert network.stats.wire_bytes == network.frame_format.total_wire_bytes(3000)


class TestFddi:
    def test_faster_than_ethernet_for_bulk(self, env):
        fddi = FddiRing(env, 2)
        duration_fddi, _ = run_transfer(fddi, 0, 1, 65536)
        eth = Ethernet(Environment(), 2)
        duration_eth, _ = run_transfer(eth, 0, 1, 65536)
        assert duration_fddi < duration_eth / 5

    def test_token_serializes_ring(self):
        env = Environment()
        network = FddiRing(env, 4)
        done = []

        def sender(env, src, dst):
            yield from network.transfer(src, dst, 65536)
            done.append(env.now)

        env.process(sender(env, 0, 1))
        env.process(sender(env, 2, 3))
        env.run()
        solo_env = Environment()
        solo = FddiRing(solo_env, 4)
        solo_duration, _ = run_transfer(solo, 0, 1, 65536)
        assert max(done) == pytest.approx(2 * solo_duration, rel=0.05)

    def test_token_latency_charged_once_per_message(self, env):
        network = FddiRing(env, 2)
        duration, _ = run_transfer(network, 0, 1, 65536)
        wire = network.frame_format.total_wire_bytes(65536)
        expected = (
            network.token_latency_seconds
            + wire * 8 / network.rate_bps
            + network.propagation_seconds
        )
        assert duration == pytest.approx(expected)


class TestAtm:
    def test_lan_cell_tax(self, env):
        network = AtmLan(env, 2)
        duration, _ = run_transfer(network, 0, 1, 4800)
        # 4800 B + 8 trailer -> ceil(4808/48) = 101 cells of 53 B.
        expected = (
            101 * 53 * 8 / network.line_rate_bps
            + network.switch_latency_seconds
            + network.propagation_seconds
        )
        assert duration == pytest.approx(expected)

    def test_dedicated_links_allow_parallel_transfers(self):
        env = Environment()
        network = AtmLan(env, 4)
        done = []

        def sender(env, src, dst):
            yield from network.transfer(src, dst, 65536)
            done.append(env.now)

        env.process(sender(env, 0, 1))
        env.process(sender(env, 2, 3))
        env.run()
        solo_env = Environment()
        solo = AtmLan(solo_env, 4)
        solo_duration, _ = run_transfer(solo, 0, 1, 65536)
        # Disjoint pairs do not contend: both finish in ~solo time.
        assert max(done) == pytest.approx(solo_duration, rel=0.01)

    def test_same_destination_contends(self):
        env = Environment()
        network = AtmLan(env, 4)
        done = []

        def sender(env, src):
            yield from network.transfer(src, 3, 65536)
            done.append(env.now)

        env.process(sender(env, 0))
        env.process(sender(env, 1))
        env.run()
        solo_env = Environment()
        solo = AtmLan(solo_env, 4)
        solo_duration, _ = run_transfer(solo, 0, 3, 65536)
        assert max(done) == pytest.approx(2 * solo_duration, rel=0.05)

    def test_wan_close_to_lan_for_bulk(self):
        """The paper's headline NYNET result: WAN ~ LAN for send/recv."""
        lan_duration, _ = run_transfer(AtmLan(Environment(), 2), 0, 1, 65536)
        wan_duration, _ = run_transfer(AtmWan(Environment(), 2), 0, 1, 65536)
        assert wan_duration < 1.25 * lan_duration

    def test_wan_latency_penalty_visible_for_tiny_messages(self):
        lan_duration, _ = run_transfer(AtmLan(Environment(), 2), 0, 1, 0)
        wan_duration, _ = run_transfer(AtmWan(Environment(), 2), 0, 1, 0)
        assert wan_duration > lan_duration + 300e-6


class TestAllnode:
    def test_fastest_medium(self):
        allnode_duration, _ = run_transfer(AllnodeSwitch(Environment(), 2), 0, 1, 65536)
        for other in [Ethernet, FddiRing, AtmLan]:
            other_duration, _ = run_transfer(other(Environment(), 2), 0, 1, 65536)
            assert allnode_duration < other_duration

    def test_low_latency(self):
        duration, _ = run_transfer(AllnodeSwitch(Environment(), 2), 0, 1, 0)
        assert duration < 100e-6

    def test_parallel_disjoint_transfers(self):
        env = Environment()
        network = AllnodeSwitch(env, 4)
        done = []

        def sender(env, src, dst):
            yield from network.transfer(src, dst, 65536)
            done.append(env.now)

        env.process(sender(env, 0, 1))
        env.process(sender(env, 2, 3))
        env.run()
        solo_duration, _ = run_transfer(AllnodeSwitch(Environment(), 4), 0, 1, 65536)
        assert max(done) == pytest.approx(solo_duration, rel=0.01)
